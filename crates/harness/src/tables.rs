//! Table I and Table II reproduction.

use crate::workload::Workload;
use cds_cpu::CpuPerfModel;
use cds_engine::multi::MultiEngine;
use cds_engine::prelude::*;
use cds_power::{options_per_watt, CpuPowerModel, FpgaPowerModel};

/// One row of the Table I reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Row label, matching the paper.
    pub description: String,
    /// Our measured/simulated options per second.
    pub measured: f64,
    /// The paper's published options per second.
    pub paper: f64,
}

/// Full Table I data.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1 {
    /// Rows in the paper's order.
    pub rows: Vec<Table1Row>,
}

impl Table1 {
    /// Ratio of a row's measured rate to the baseline engine's. `NaN`
    /// when either row is absent, so a renamed row shows up as a bad
    /// number in the table rather than a crash.
    pub fn speedup_over_baseline(&self, description: &str) -> f64 {
        let find = |needle: &str| self.rows.iter().find(|r| r.description.contains(needle));
        match (find("Xilinx"), find(description)) {
            (Some(base), Some(row)) => row.measured / base.measured,
            _ => f64::NAN,
        }
    }
}

/// Reproduce Table I: CPU single core, Xilinx library engine and the
/// three optimised engines, in options/second.
pub fn table1(workload: &Workload) -> Table1 {
    let cpu = CpuPerfModel::xeon_8260m();
    let mut rows = vec![Table1Row {
        description: "Xeon Platinum CPU core".to_string(),
        measured: cpu.options_per_second(1),
        paper: 8738.92,
    }];
    for variant in EngineVariant::ALL {
        let engine = FpgaCdsEngine::new(workload.market.clone(), variant.config());
        let report = engine.price_batch(&workload.options);
        rows.push(Table1Row {
            description: variant.paper_label().to_string(),
            measured: report.options_per_second,
            paper: variant.paper_options_per_second(),
        });
    }
    Table1 { rows }
}

/// One row of the Table II reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Row label, matching the paper.
    pub description: String,
    /// Measured/simulated options per second.
    pub measured_rate: f64,
    /// Modelled power draw in Watts.
    pub watts: f64,
    /// Power efficiency in options/Watt.
    pub options_per_watt: f64,
    /// The paper's published (rate, watts, options/Watt).
    pub paper: (f64, f64, f64),
}

/// Full Table II data.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2 {
    /// Rows in the paper's order: 24-core CPU then 1/2/5 engines.
    pub rows: Vec<Table2Row>,
}

impl Table2 {
    /// FPGA(5 engines) / CPU(24 cores) performance ratio (paper ≈1.55×).
    /// `NaN` on an empty table.
    pub fn fpga_vs_cpu_performance(&self) -> f64 {
        self.rows.last().map_or(f64::NAN, |last| last.measured_rate / self.rows[0].measured_rate)
    }

    /// CPU / FPGA(5) power ratio (paper ≈4.7×). `NaN` on an empty table.
    pub fn power_ratio(&self) -> f64 {
        self.rows.last().map_or(f64::NAN, |last| self.rows[0].watts / last.watts)
    }

    /// FPGA(5) / CPU efficiency ratio (paper ≈7×). `NaN` on an empty
    /// table.
    pub fn efficiency_ratio(&self) -> f64 {
        self.rows
            .last()
            .map_or(f64::NAN, |last| last.options_per_watt / self.rows[0].options_per_watt)
    }
}

/// Reproduce Table II: 24-core CPU versus one, two and five FPGA engines,
/// with power and efficiency columns.
pub fn table2(workload: &Workload) -> Table2 {
    let cpu_perf = CpuPerfModel::xeon_8260m();
    let cpu_power = CpuPowerModel::xeon_8260m();
    let fpga_power = FpgaPowerModel::alveo_u280_cds();

    let cpu_rate = cpu_perf.options_per_second(24);
    let cpu_watts = cpu_power.watts(24);
    let mut rows = vec![Table2Row {
        description: "24 core Xeon CPU".to_string(),
        measured_rate: cpu_rate,
        watts: cpu_watts,
        options_per_watt: options_per_watt(cpu_rate, cpu_watts),
        paper: (75823.77, 175.39, 432.31),
    }];
    let paper_fpga = [
        (1usize, 27675.67, 35.86, 771.77),
        (2, 53763.86, 35.79, 1502.20),
        (5, 114115.92, 37.38, 3052.86),
    ];
    for (n, p_rate, p_watts, p_eff) in paper_fpga {
        let multi = match MultiEngine::new(workload.market.clone(), n) {
            Ok(m) => m,
            Err(e) => panic!("paper-validated engine count {n} must fit the U280: {e}"),
        };
        // All N engines instantiated concurrently in one discrete-event
        // simulation; the makespan emerges from the simulator.
        let report = multi.price_batch_simulated(&workload.options);
        let watts = fpga_power.watts(n as u32);
        rows.push(Table2Row {
            description: format!("{n} FPGA engine{}", if n == 1 { "" } else { "s" }),
            measured_rate: report.options_per_second,
            watts,
            options_per_watt: options_per_watt(report.options_per_second, watts),
            paper: (p_rate, p_watts, p_eff),
        });
    }
    Table2 { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_workload() -> Workload {
        Workload::paper(7, 96)
    }

    #[test]
    fn table1_shape_and_ordering() {
        let t = table1(&small_workload());
        assert_eq!(t.rows.len(), 5);
        // Paper ordering of wins: baseline < CPU core < optimised <
        // inter-option < vectorised.
        let rate =
            |needle: &str| t.rows.iter().find(|r| r.description.contains(needle)).unwrap().measured;
        assert!(rate("Xilinx") < rate("CPU core"));
        assert!(rate("CPU core") > rate("Optimised"));
        assert!(rate("Optimised") < rate("inter-options"));
        assert!(rate("inter-options") < rate("Vectorisation"));
        assert!(rate("Vectorisation") > rate("CPU core"));
    }

    #[test]
    fn table1_within_paper_bands() {
        // DESIGN.md §4 acceptance bands for the speedup ladder.
        let t = table1(&small_workload());
        let s_opt = t.speedup_over_baseline("Optimised");
        let s_inter = t.speedup_over_baseline("inter-options");
        let s_vec = t.speedup_over_baseline("Vectorisation");
        assert!((1.7..2.7).contains(&s_opt), "optimised/xilinx {s_opt}");
        assert!((1.4..2.2).contains(&(s_inter / s_opt)), "inter/opt {}", s_inter / s_opt);
        assert!((1.6..2.5).contains(&(s_vec / s_inter)), "vec/inter {}", s_vec / s_inter);
        assert!((6.0..10.0).contains(&s_vec), "vec/xilinx {s_vec}");
    }

    #[test]
    fn table2_headline_ratios() {
        let t = table2(&small_workload());
        assert_eq!(t.rows.len(), 4);
        assert!(
            (1.2..1.8).contains(&t.fpga_vs_cpu_performance()),
            "{}",
            t.fpga_vs_cpu_performance()
        );
        assert!((4.2..5.2).contains(&t.power_ratio()), "{}", t.power_ratio());
        assert!((5.5..8.5).contains(&t.efficiency_ratio()), "{}", t.efficiency_ratio());
    }

    #[test]
    fn table2_power_column_matches_paper_closely() {
        let t = table2(&small_workload());
        for row in &t.rows {
            let (_, p_watts, _) = row.paper;
            assert!(
                (row.watts - p_watts).abs() / p_watts < 0.02,
                "{}: {} vs {}",
                row.description,
                row.watts,
                p_watts
            );
        }
    }
}
