//! # cds-harness — regenerates every table and figure of the paper
//!
//! Library behind the `cds-harness` binary. Each experiment of the
//! CLUSTER 2021 CDS paper has a function here producing a structured
//! result that the binary renders as an aligned table (and optionally
//! CSV), side by side with the paper's published numbers:
//!
//! | function | paper artefact |
//! |---|---|
//! | [`tables::table1`] | Table I — engine-variant throughput |
//! | [`tables::table2`] | Table II — multi-engine scaling, power, efficiency |
//! | [`figures::fig1_dot`] / [`figures::fig2_dot`] / [`figures::fig3_dot`] | Figures 1–3 as Graphviz DOT |
//! | [`ablations::listing1`] | Listing 1 — accumulator kernels (measured on the host) |
//! | [`ablations::vector_sweep`] | replication-factor sweep behind Fig 3 |
//! | [`ablations::ii_sweep`] | hazard-II ablation (§III) |
//! | [`ablations::depth_sweep`] | stream-depth sensitivity |
//! | [`ablations::precision`] | reduced-precision exploration (§V further work) |
//! | [`hostcpu::host_report`] | real host-CPU engine measurement |
//!
//! The [`mod@bench`] module flattens the whole ladder into one
//! machine-readable report ([`metrics::RunMetrics`] records serialised by
//! the hand-rolled [`json`] module) for CI regression gating, the
//! [`chaos`] module drives the engine's fault-injection framework through
//! a deterministic failure matrix whose survival report is gated the same
//! way, the [`journal`] module records runs as replayable journals
//! whose re-execution must be bit-identical, and the [`throughput`]
//! module measures real wall-clock options/second on the host CPU
//! engines and gates them against a committed floor (the only gate that
//! would notice a hot-path regression). The [`tick_storm`] module storms
//! the incremental tick-repricing engine with single-point curve ticks
//! against a ≥1M-option resident book and gates the incremental-vs-full
//! speedup ratio (and bitwise cleanliness) against its committed
//! baseline. The [`loadgen`] module drives
//! the `cds-server` serving front-end with open-loop zipf traffic and
//! gates its latency quantiles against committed SLO ceilings, and the
//! [`server_chaos`] module replays serving failure modes (shard death
//! mid-burst, drain-deadline checkpoints, slow consumers, sustained
//! overload) against a boolean survival baseline.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod ablations;
pub mod bench;
pub mod chaos;
pub mod conformance;
pub mod figures;
pub mod format;
pub mod hostcpu;
pub mod journal;
pub mod json;
pub mod loadgen;
pub mod metrics;
pub mod server_chaos;
pub mod storage_chaos;
pub mod tables;
pub mod throughput;
pub mod tick_storm;
pub mod validate;
pub mod workload;

/// Default option-batch size for throughput experiments (large enough to
/// amortise fills/overheads, as in the paper's batch runs).
pub const DEFAULT_BATCH: usize = 1024;

/// Default RNG seed, for reproducible workloads.
pub const DEFAULT_SEED: u64 = 42;
