//! Chaos scenarios for the serving front-end, with a baseline gate.
//!
//! Where [`crate::chaos`] attacks the simulated dataflow engines with
//! cycle-accurate fault plans, this module attacks the **real serving
//! stack** — `cds-server` over TCP, threads and wall clock included —
//! with the failure modes a quote-serving deployment actually meets:
//!
//! - `server/engine-death-midburst` — a shard dies while a burst is in
//!   flight; retries, hedging and the CPU fallback must price every
//!   accepted quote bit-identically to the healthy run,
//! - `server/kill-during-drain-resume` — a drain deadline expires with
//!   quotes still stuck on a stalled shard; the write-ahead journal
//!   must checkpoint them and [`resume_journal`] must finish the run
//!   bit-identically to an uninterrupted one,
//! - `server/slow-consumer-backpressure` — a client that stops reading
//!   replies while pipelining requests; the in-flight bound must hold
//!   and every request must still be answered,
//! - `server/overload-shed` — sustained ~2x overload of a deliberately
//!   tiny deployment; the ladder must shed rather than queue without
//!   bound, and what *is* priced must stay bit-exact.
//!
//! A second matrix ([`run_isolation`], `server-chaos --isolation`)
//! attacks the tenant bulkheads instead of the failure-recovery path:
//! `server/noisy-neighbor-flood` (a quota'd tenant floods at ~10x its
//! rate; the victim tenant must keep its latency and never be
//! throttled), `server/slowloris-reaper` (idle trickle connections
//! must be reaped while a clean client prices bit-exactly), and
//! `server/protocol-fuzz` (seeded garbage and torn lines must each
//! earn exactly one typed `ERR`, never a wedge). Its baseline is
//! `results/tenant_isolation_baseline.json`.
//!
//! Wall-clock runs are not cycle-reproducible, so unlike the engine
//! chaos gate the committed baselines pin only the **stable booleans**
//! of each scenario — survived, degraded, shed-occurred,
//! spreads-match — never counts or latencies.

use crate::json::Json;
use crate::loadgen::{compliant_trip, flood_as_tenant, quantile, slowloris_probe, LineClient};
use cds_cpu::engine::CpuCdsEngine;
use cds_quant::option::{CdsOption, MarketData, PaymentFrequency};
use cds_server::fuzz::{fuzz_lines, torn_lines};
use cds_server::ladder::LadderConfig;
use cds_server::proto::{f64_to_wire, parse_response, Response};
use cds_server::server::{resume_journal, serve, ServerConfig, ServerHandle};
use cds_server::tenant::TenantLimits;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Version of the server-chaos JSON schema.
pub const SCHEMA_VERSION: u64 = 1;

/// Outcome of one serving chaos scenario. Only the boolean verdicts are
/// baseline-gated; the counts are informational (wall clock varies).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerChaosCase {
    /// Stable scenario slug, e.g. `server/engine-death-midburst`.
    pub name: String,
    /// The deployment ran impaired (dead shard, expired drain, …).
    pub degraded: bool,
    /// Admission control or the ladder shed load.
    pub shed_occurred: bool,
    /// Every priced/resumed spread is bit-identical to the reference.
    pub spreads_match_clean: bool,
    /// The scenario's overall pass verdict.
    pub survived: bool,
    /// Informational: requests sent (not gated).
    pub sent: u64,
    /// Informational: requests priced (not gated).
    pub priced: u64,
    /// Informational: requests shed or rejected (not gated).
    pub shed: u64,
}

impl ServerChaosCase {
    fn to_json(&self) -> Json {
        Json::object(vec![
            ("name", Json::Str(self.name.clone())),
            ("degraded", Json::Bool(self.degraded)),
            ("shed_occurred", Json::Bool(self.shed_occurred)),
            ("spreads_match_clean", Json::Bool(self.spreads_match_clean)),
            ("survived", Json::Bool(self.survived)),
        ])
    }

    fn from_json(value: &Json) -> Result<Self, String> {
        let flag = |key: &str| -> Result<bool, String> {
            match value.get(key) {
                Some(Json::Bool(b)) => Ok(*b),
                _ => Err(format!("server-chaos case missing boolean field '{key}'")),
            }
        };
        Ok(ServerChaosCase {
            name: value
                .get("name")
                .and_then(Json::as_str)
                .ok_or("server-chaos case missing 'name'")?
                .to_string(),
            degraded: flag("degraded")?,
            shed_occurred: flag("shed_occurred")?,
            spreads_match_clean: flag("spreads_match_clean")?,
            survived: flag("survived")?,
            sent: 0,
            priced: 0,
            shed: 0,
        })
    }

    /// The gated projection: everything except the volatile counts.
    fn verdicts(&self) -> (bool, bool, bool, bool) {
        (self.degraded, self.shed_occurred, self.spreads_match_clean, self.survived)
    }
}

/// A full serving chaos run.
#[derive(Debug, Clone)]
pub struct ServerChaosReport {
    /// Schema version of the serialised form ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Seed the workloads derive from.
    pub seed: u64,
    /// All scenarios, in matrix order.
    pub cases: Vec<ServerChaosCase>,
}

impl ServerChaosReport {
    /// Look a scenario up by its stable name.
    pub fn find(&self, name: &str) -> Option<&ServerChaosCase> {
        self.cases.iter().find(|c| c.name == name)
    }

    /// True when every scenario survived.
    pub fn all_survived(&self) -> bool {
        self.cases.iter().all(|c| c.survived)
    }

    /// Serialise to the versioned JSON schema (booleans only).
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("schema_version", Json::Number(self.schema_version as f64)),
            ("seed", Json::Number(self.seed as f64)),
            ("cases", Json::Array(self.cases.iter().map(ServerChaosCase::to_json).collect())),
        ])
    }

    /// Pretty-printed JSON document.
    pub fn pretty(&self) -> String {
        self.to_json().pretty()
    }

    /// Parse a serialised report, validating the schema version.
    pub fn parse(text: &str) -> Result<Self, String> {
        let value = crate::json::parse(text)?;
        let num = |key: &str| -> Result<f64, String> {
            value
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("server-chaos report missing numeric field '{key}'"))
        };
        let schema_version = num("schema_version")? as u64;
        if schema_version != SCHEMA_VERSION {
            return Err(format!(
                "server-chaos schema version {schema_version} != supported {SCHEMA_VERSION} — regenerate the baseline"
            ));
        }
        let cases = value
            .get("cases")
            .and_then(Json::as_array)
            .ok_or_else(|| "server-chaos report missing 'cases' array".to_string())?
            .iter()
            .map(ServerChaosCase::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ServerChaosReport { schema_version, seed: num("seed")? as u64, cases })
    }
}

/// Gate `current` against `baseline`: every baseline scenario must be
/// present with identical boolean verdicts, and no scenario may appear
/// or vanish silently. Counts are *not* compared (wall clock varies).
pub fn compare(baseline: &ServerChaosReport, current: &ServerChaosReport) -> Vec<String> {
    let mut problems = Vec::new();
    if baseline.schema_version != current.schema_version {
        problems.push(format!(
            "schema version mismatch: baseline {} vs current {}",
            baseline.schema_version, current.schema_version
        ));
    }
    for base in &baseline.cases {
        match current.find(&base.name) {
            None => problems.push(format!("scenario '{}' missing from current run", base.name)),
            Some(cur) if cur.verdicts() != base.verdicts() => {
                problems.push(format!(
                    "scenario '{}' changed: baseline (degraded={}, shed={}, match={}, survived={}) vs current (degraded={}, shed={}, match={}, survived={})",
                    base.name,
                    base.degraded,
                    base.shed_occurred,
                    base.spreads_match_clean,
                    base.survived,
                    cur.degraded,
                    cur.shed_occurred,
                    cur.spreads_match_clean,
                    cur.survived,
                ));
            }
            Some(_) => {}
        }
    }
    for cur in &current.cases {
        if baseline.find(&cur.name).is_none() {
            problems.push(format!(
                "scenario '{}' not in baseline — regenerate results/server_chaos_baseline.json",
                cur.name
            ));
        }
    }
    problems
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(handle: &ServerHandle) -> std::io::Result<Client> {
        let stream = TcpStream::connect(handle.addr())?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer })
    }

    fn roundtrip(&mut self, line: &str) -> Result<Response, String> {
        writeln!(self.writer, "{line}").map_err(|e| e.to_string())?;
        self.recv()
    }

    fn recv(&mut self) -> Result<Response, String> {
        let mut reply = String::new();
        self.reader.read_line(&mut reply).map_err(|e| e.to_string())?;
        if reply.is_empty() {
            return Err("connection closed".to_string());
        }
        parse_response(reply.trim()).map_err(|e| format!("bad reply `{reply}`: {e}"))
    }
}

fn reference_bits(seed: u64, maturity: f64, recovery: f64) -> u64 {
    let engine = CpuCdsEngine::new(&MarketData::paper_workload(seed));
    engine
        .price(&CdsOption::new(maturity, PaymentFrequency::Quarterly, recovery))
        .spread_bps
        .to_bits()
}

fn quote_line(id: u64, maturity: f64, recovery: f64, low_priority: bool) -> String {
    let tail = if low_priority { " LO" } else { "" };
    format!("QUOTE {id} {} Q {}{tail}", f64_to_wire(maturity), f64_to_wire(recovery))
}

/// A shard dies while a closed-loop burst is in flight; retries and the
/// hedger must keep every quote priced bit-identically.
fn scenario_engine_death(seed: u64) -> Result<ServerChaosCase, String> {
    let handle =
        serve(ServerConfig { shards: 2, seed, ..Default::default() }).map_err(|e| e.to_string())?;
    let mut client = Client::connect(&handle).map_err(|e| e.to_string())?;
    let total = 24u64;
    let mut priced = 0u64;
    let mut matched = true;
    for id in 0..total {
        if id == total / 3 {
            client.roundtrip("FAULT KILL 0")?;
        }
        let maturity = 2.0 + (id % 5) as f64;
        let recovery = 0.2 + (id % 3) as f64 * 0.1;
        match client.roundtrip(&quote_line(id, maturity, recovery, false))? {
            Response::Quote(q) => {
                priced += 1;
                matched &= q.spread_bps.to_bits() == reference_bits(seed, maturity, recovery);
            }
            other => return Err(format!("unexpected reply to quote {id}: {other:?}")),
        }
    }
    let stats = match client.roundtrip("STATS")? {
        Response::Stats(s) => s,
        other => return Err(format!("expected stats, got {other:?}")),
    };
    client.roundtrip("DRAIN")?;
    let summary = handle.wait();
    Ok(ServerChaosCase {
        name: "server/engine-death-midburst".to_string(),
        degraded: stats.dead_shards > 0,
        shed_occurred: false,
        spreads_match_clean: matched,
        survived: priced == total && matched && summary.pending == 0,
        sent: total,
        priced,
        shed: 0,
    })
}

/// A drain deadline expires with quotes stuck behind a stalled shard;
/// the journal checkpoints them and resume finishes bit-identically.
fn scenario_kill_during_drain(seed: u64) -> Result<ServerChaosCase, String> {
    let journal: PathBuf = std::env::temp_dir()
        .join(format!("cds-server-chaos-drain-{}-{seed}.wal", std::process::id()));
    let _ = std::fs::remove_file(&journal);
    let _ = std::fs::remove_file(cds_server::wal::sidecar_path(&journal));
    let handle = serve(ServerConfig {
        shards: 1,
        seed,
        journal: Some(journal.clone()),
        cadence: 2,
        drain_deadline: Duration::from_millis(100),
        ..Default::default()
    })
    .map_err(|e| e.to_string())?;
    let mut client = Client::connect(&handle).map_err(|e| e.to_string())?;
    client.roundtrip("FAULT STALL 0 300")?;
    // Pipeline a small burst (under the admission bound) and wait for
    // the WAL to accept it; the 300ms stall keeps it pending.
    let total = 4u64;
    for id in 0..total {
        writeln!(client.writer, "{}", quote_line(id, 5.0, 0.4, false))
            .map_err(|e| e.to_string())?;
    }
    client.writer.flush().map_err(|e| e.to_string())?;
    let t0 = Instant::now();
    while handle.stats().accepted < total {
        if t0.elapsed() > Duration::from_secs(5) {
            return Err("burst was never accepted".to_string());
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    handle.drain();
    let summary = handle.wait();
    let report = resume_journal(&journal).map_err(|e| e.to_string())?;
    let want = reference_bits(seed, 5.0, 0.4);
    let matched = report.spreads.len() == total as usize
        && report.spreads.iter().all(|(_, _, spread, _)| spread.to_bits() == want);
    let _ = std::fs::remove_file(&journal);
    let _ = std::fs::remove_file(cds_server::wal::sidecar_path(&journal));
    Ok(ServerChaosCase {
        name: "server/kill-during-drain-resume".to_string(),
        degraded: true,
        shed_occurred: false,
        spreads_match_clean: matched,
        survived: summary.accepted == total
            && summary.pending > 0
            && report.drained
            && report.repriced > 0
            && matched,
        sent: total,
        priced: summary.completed,
        shed: 0,
    })
}

/// A client pipelines a burst and stops reading; the in-flight bound
/// must hold and every request must still get an answer.
fn scenario_slow_consumer(seed: u64) -> Result<ServerChaosCase, String> {
    let capacity = 8u64;
    let handle = serve(ServerConfig {
        shards: 1,
        seed,
        capacity,
        ladder: LadderConfig {
            shed_watermark: 0.5,
            reject_watermark: 0.95,
            recovery_observations: 32,
        },
        ..Default::default()
    })
    .map_err(|e| e.to_string())?;
    let mut client = Client::connect(&handle).map_err(|e| e.to_string())?;
    client.roundtrip("FAULT STALL 0 20")?;
    let total = 64u64;
    for id in 0..total {
        writeln!(client.writer, "{}", quote_line(id, 5.0, 0.4, true)).map_err(|e| e.to_string())?;
    }
    client.writer.flush().map_err(|e| e.to_string())?;
    // The consumer goes slow: no reads while the burst queues. The
    // server must bound its in-flight set rather than buffer our lag.
    let mut bound_held = true;
    for _ in 0..20 {
        std::thread::sleep(Duration::from_millis(10));
        bound_held &= handle.stats().inflight <= capacity;
    }
    let want = reference_bits(seed, 5.0, 0.4);
    let (mut priced, mut shed) = (0u64, 0u64);
    let mut matched = true;
    for _ in 0..total {
        match client.recv()? {
            Response::Quote(q) => {
                matched &= q.spread_bps.to_bits() == want;
                priced += 1;
            }
            Response::Shed { .. } | Response::Reject { .. } => shed += 1,
            other => return Err(format!("unexpected reply {other:?}")),
        }
    }
    client.roundtrip("DRAIN")?;
    let summary = handle.wait();
    Ok(ServerChaosCase {
        name: "server/slow-consumer-backpressure".to_string(),
        degraded: false,
        shed_occurred: shed > 0,
        spreads_match_clean: matched,
        survived: bound_held
            && priced + shed == total
            && priced > 0
            && shed > 0
            && matched
            && summary.pending == 0,
        sent: total,
        priced,
        shed,
    })
}

/// Sustained ~2x overload of a tiny deployment: the ladder must shed
/// rather than queue without bound, and priced quotes stay bit-exact.
fn scenario_overload_shed(seed: u64) -> Result<ServerChaosCase, String> {
    let capacity = 4u64;
    let handle = serve(ServerConfig { shards: 1, seed, capacity, ..Default::default() })
        .map_err(|e| e.to_string())?;
    let mut client = Client::connect(&handle).map_err(|e| e.to_string())?;
    // 30ms of service per quote caps the deployment at ~33 quotes/s;
    // offering one every 15ms is a sustained 2x overload.
    client.roundtrip("FAULT STALL 0 30")?;
    let total = 40u64;
    for id in 0..total {
        writeln!(client.writer, "{}", quote_line(id, 5.0, 0.4, true)).map_err(|e| e.to_string())?;
        client.writer.flush().map_err(|e| e.to_string())?;
        std::thread::sleep(Duration::from_millis(15));
    }
    let want = reference_bits(seed, 5.0, 0.4);
    let (mut priced, mut shed) = (0u64, 0u64);
    let mut matched = true;
    let mut bound_held = true;
    for _ in 0..total {
        match client.recv()? {
            Response::Quote(q) => {
                matched &= q.spread_bps.to_bits() == want;
                priced += 1;
            }
            Response::Shed { .. } | Response::Reject { .. } => shed += 1,
            other => return Err(format!("unexpected reply {other:?}")),
        }
        bound_held &= handle.stats().inflight <= capacity;
    }
    client.roundtrip("DRAIN")?;
    let summary = handle.wait();
    Ok(ServerChaosCase {
        name: "server/overload-shed".to_string(),
        degraded: false,
        shed_occurred: shed > 0,
        spreads_match_clean: matched,
        survived: bound_held
            && priced + shed == total
            && priced > 0
            && shed > 0
            && matched
            && summary.pending == 0,
        sent: total,
        priced,
        shed,
    })
}

/// Execute the serving chaos matrix against in-process servers.
pub fn run(seed: u64) -> Result<ServerChaosReport, String> {
    let cases = vec![
        scenario_engine_death(seed)?,
        scenario_kill_during_drain(seed)?,
        scenario_slow_consumer(seed)?,
        scenario_overload_shed(seed)?,
    ];
    Ok(ServerChaosReport { schema_version: SCHEMA_VERSION, seed, cases })
}

// ---------------------------------------------------------------------
// Tenant-isolation matrix (`cds-harness server-chaos --isolation`)
// ---------------------------------------------------------------------

/// Quota rate for the abuser tenant in the noisy-neighbor scenario.
const ISOLATION_ABUSER_RATE: f64 = 100.0;

/// Bucket capacity for the abuser tenant.
const ISOLATION_ABUSER_BURST: f64 = 8.0;

/// Victim p99 under flood may be at most this factor of its solo p99…
const ISOLATION_P99_FACTOR: f64 = 50.0;

/// …with an absolute floor so microsecond-scale solo p99s don't turn
/// scheduler jitter into a verdict flip.
const ISOLATION_P99_FLOOR_MICROS: u64 = 10_000;

/// A quota'd abuser tenant floods a pipelined connection at far above
/// its rate while a compliant default-tenant victim keeps pricing; the
/// abuser must be throttled (with a positive retry hint) and held to
/// its quota, and the victim must stay un-throttled, bit-exact, and
/// within a fixed latency factor of its solo p99.
fn scenario_noisy_neighbor(seed: u64) -> Result<ServerChaosCase, String> {
    let abuser_limits = TenantLimits {
        rate_per_s: ISOLATION_ABUSER_RATE,
        burst: ISOLATION_ABUSER_BURST,
        max_inflight: 8,
        weight: 1,
    };
    let handle = serve(ServerConfig {
        shards: 2,
        seed,
        tenant_overrides: vec![("abuser".to_string(), abuser_limits)],
        ..Default::default()
    })
    .map_err(|e| e.to_string())?;
    let addr = handle.addr();
    let want = reference_bits(seed, 5.0, 0.4);
    let trips = 120u64;
    let flood_n = 3_000u64;

    let mut victim = LineClient::connect(addr)?;
    let (mut victim_throttles, mut mismatches) = (0u64, 0u64);
    let mut solo = Vec::with_capacity(trips as usize);
    for id in 0..trips {
        let trip = compliant_trip(&mut victim, id)?;
        victim_throttles += trip.throttles;
        mismatches += u64::from(trip.bits != want);
        solo.push(trip.micros);
    }
    solo.sort_unstable();
    let p99_solo = quantile(&solo, 0.99);

    let flooder = std::thread::spawn(move || flood_as_tenant(addr, "abuser", flood_n));
    std::thread::sleep(Duration::from_millis(5));
    let mut under_flood = Vec::with_capacity(trips as usize);
    for id in 0..trips {
        let trip = compliant_trip(&mut victim, 10_000 + id)?;
        victim_throttles += trip.throttles;
        mismatches += u64::from(trip.bits != want);
        under_flood.push(trip.micros);
    }
    under_flood.sort_unstable();
    let p99_flood = quantile(&under_flood, 0.99);
    let flood = flooder.join().map_err(|_| "abuser flood thread panicked".to_string())??;

    victim.roundtrip("DRAIN")?;
    let summary = handle.wait();

    let dur_s = flood.duration.as_secs_f64().max(1e-9);
    let quota_ceiling = 2.0 * (ISOLATION_ABUSER_BURST + ISOLATION_ABUSER_RATE * dur_s) + 16.0;
    let p99_ceiling =
        ((p99_solo as f64 * ISOLATION_P99_FACTOR) as u64).max(ISOLATION_P99_FLOOR_MICROS);
    let matched = mismatches == 0;
    Ok(ServerChaosCase {
        name: "server/noisy-neighbor-flood".to_string(),
        degraded: false,
        shed_occurred: flood.throttled > 0,
        spreads_match_clean: matched,
        survived: flood.throttled > 0
            && flood.retry_hint_positive
            && (flood.priced as f64) <= quota_ceiling
            && victim_throttles == 0
            && matched
            && p99_flood <= p99_ceiling
            && summary.pending == 0,
        sent: 2 * trips + flood_n,
        priced: 2 * trips + flood.priced,
        shed: flood.throttled + flood.shed,
    })
}

/// Trickled connections that never complete a request line must be
/// closed by the idle reaper while a clean client keeps pricing.
fn scenario_slowloris_reaper(seed: u64) -> Result<ServerChaosCase, String> {
    let handle = serve(ServerConfig {
        shards: 1,
        seed,
        read_timeout: Duration::from_millis(20),
        idle_timeout: Duration::from_millis(250),
        ..Default::default()
    })
    .map_err(|e| e.to_string())?;
    let addr = handle.addr();
    let opened = 3usize;
    let trickles: Vec<_> = (0..opened)
        .map(|_| std::thread::spawn(move || slowloris_probe(addr, Duration::from_secs(3))))
        .collect();

    let want = reference_bits(seed, 5.0, 0.4);
    let mut client = LineClient::connect(addr)?;
    let trips = 10u64;
    let mut mismatches = 0u64;
    for id in 0..trips {
        let trip = compliant_trip(&mut client, id)?;
        mismatches += u64::from(trip.bits != want);
        std::thread::sleep(Duration::from_millis(30));
    }
    let reaped =
        trickles.into_iter().map(|t| t.join().unwrap_or(false)).filter(|&reaped| reaped).count();

    client.roundtrip("DRAIN")?;
    let summary = handle.wait();
    let matched = mismatches == 0;
    Ok(ServerChaosCase {
        name: "server/slowloris-reaper".to_string(),
        degraded: false,
        shed_occurred: false,
        spreads_match_clean: matched,
        survived: reaped == opened && matched && summary.pending == 0,
        sent: trips,
        priced: trips,
        shed: 0,
    })
}

/// Torn one-shot connections and a seeded garbage corpus: every
/// reply-owing fuzz line gets exactly one typed `ERR`, nothing else
/// leaks through, and the connection still prices bit-identically.
fn scenario_protocol_fuzz(seed: u64) -> Result<ServerChaosCase, String> {
    let max_line = 256usize;
    let handle =
        serve(ServerConfig { shards: 1, seed, max_line_bytes: max_line, ..Default::default() })
            .map_err(|e| e.to_string())?;
    let addr = handle.addr();

    // Torn prefixes on one-shot connections, dropped unterminated.
    for torn in torn_lines(seed, 12) {
        let mut stream = TcpStream::connect(addr).map_err(|e| e.to_string())?;
        let _ = stream.write_all(&torn);
        drop(stream);
    }

    let mut client = LineClient::connect(addr)?;
    let corpus = fuzz_lines(seed, 250, max_line);
    let expected = corpus.iter().filter(|l| l.expect_reply).count() as u64;
    for line in &corpus {
        client.writer.write_all(&line.bytes).map_err(|e| e.to_string())?;
    }
    writeln!(client.writer, "PING").map_err(|e| e.to_string())?;
    client.writer.flush().map_err(|e| e.to_string())?;
    let (mut errs, mut strays) = (0u64, 0u64);
    loop {
        match client.recv()? {
            Response::Pong => break,
            Response::Error { .. } => errs += 1,
            _ => strays += 1,
        }
    }
    // A torn prefix can legitimately complete as a valid command (e.g.
    // `TICK 99` cut to `TICK 9`) and republish the curve; re-publish
    // the boot epoch so the bit-exactness check has a fixed reference.
    match client.roundtrip(&format!("TICK {seed}"))? {
        Response::TickAck { .. } => {}
        other => return Err(format!("epoch republish failed: {other:?}")),
    }
    let trip = compliant_trip(&mut client, 9_000)?;
    let matched = trip.bits == reference_bits(seed, 5.0, 0.4);

    client.roundtrip("DRAIN")?;
    let summary = handle.wait();
    Ok(ServerChaosCase {
        name: "server/protocol-fuzz".to_string(),
        degraded: false,
        shed_occurred: false,
        spreads_match_clean: matched,
        survived: errs == expected && strays == 0 && matched && summary.pending == 0,
        sent: corpus.len() as u64 + 1,
        priced: 1,
        shed: 0,
    })
}

/// Execute the tenant-isolation matrix against in-process servers. The
/// committed baseline lives in `results/tenant_isolation_baseline.json`
/// and is gated with the same verdict-only [`compare`] as the chaos
/// matrix.
pub fn run_isolation(seed: u64) -> Result<ServerChaosReport, String> {
    let cases = vec![
        scenario_noisy_neighbor(seed)?,
        scenario_slowloris_reaper(seed)?,
        scenario_protocol_fuzz(seed)?,
    ];
    Ok(ServerChaosReport { schema_version: SCHEMA_VERSION, seed, cases })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn case(name: &str, survived: bool) -> ServerChaosCase {
        ServerChaosCase {
            name: name.to_string(),
            degraded: false,
            shed_occurred: true,
            spreads_match_clean: true,
            survived,
            sent: 10,
            priced: 5,
            shed: 5,
        }
    }

    #[test]
    fn report_round_trips_and_gates_on_verdicts_only() {
        let report = ServerChaosReport {
            schema_version: SCHEMA_VERSION,
            seed: 42,
            cases: vec![case("server/a", true), case("server/b", true)],
        };
        let parsed = ServerChaosReport::parse(&report.pretty()).expect("parse");
        // Counts are not serialised; verdict comparison still passes.
        assert!(compare(&parsed, &report).is_empty());
        let mut flipped = report.clone();
        flipped.cases[1].survived = false;
        let problems = compare(&parsed, &flipped);
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("server/b"), "{problems:?}");
    }

    #[test]
    fn compare_flags_missing_and_new_scenarios() {
        let baseline = ServerChaosReport {
            schema_version: SCHEMA_VERSION,
            seed: 42,
            cases: vec![case("server/a", true)],
        };
        let current = ServerChaosReport {
            schema_version: SCHEMA_VERSION,
            seed: 42,
            cases: vec![case("server/new", true)],
        };
        let problems = compare(&baseline, &current);
        assert_eq!(problems.len(), 2, "{problems:?}");
    }

    #[test]
    fn schema_version_is_enforced() {
        let report = ServerChaosReport { schema_version: SCHEMA_VERSION, seed: 1, cases: vec![] };
        let bumped = report.pretty().replace("\"schema_version\": 1", "\"schema_version\": 9");
        assert!(ServerChaosReport::parse(&bumped).expect_err("gate").contains("regenerate"));
    }
}
