//! Ablation experiments: Listing 1, vectorisation factor, hazard II,
//! stream depth, and reduced precision.

use crate::workload::Workload;
use cds_engine::prelude::*;
use cds_quant::accumulate::{sum_kahan, sum_lanes7, sum_sequential};
use cds_quant::cds::price_cds_generic;
use cds_quant::option::MarketData;
use dataflow_sim::pipeline::PipelinedLoop;
use std::rc::Rc;
use std::time::Instant;

/// Result of the Listing-1 accumulator comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Listing1Row {
    /// Input length.
    pub length: usize,
    /// Host nanoseconds per element, naive dependency-chained sum.
    pub naive_ns_per_elem: f64,
    /// Host nanoseconds per element, 7-lane partial sums.
    pub lanes_ns_per_elem: f64,
    /// Host speedup of the lane kernel (dependency chain broken).
    pub host_speedup: f64,
    /// Modelled FPGA cycles, II=7 loop.
    pub fpga_cycles_ii7: u64,
    /// Modelled FPGA cycles, Listing-1 loop (II=1 plus 7-element tail).
    pub fpga_cycles_listing1: u64,
    /// Absolute result difference versus Kahan (numerical check).
    pub max_error: f64,
}

/// Compare the naive and Listing-1 accumulation kernels on the host and
/// under the FPGA timing model, across input lengths (including lengths
/// not divisible by seven).
pub fn listing1(lengths: &[usize]) -> Vec<Listing1Row> {
    let mut rows = Vec::new();
    for &n in lengths {
        let values: Vec<f64> = (0..n).map(|i| ((i * 37 % 1000) as f64) * 1e-3 - 0.3).collect();
        let reps = (2_000_000 / n.max(1)).max(1);

        let t0 = Instant::now();
        let mut acc_naive = 0.0;
        for _ in 0..reps {
            acc_naive += sum_sequential(&values);
        }
        let naive_ns = t0.elapsed().as_nanos() as f64 / (reps * n.max(1)) as f64;

        let t1 = Instant::now();
        let mut acc_lanes = 0.0;
        for _ in 0..reps {
            acc_lanes += sum_lanes7(&values);
        }
        let lanes_ns = t1.elapsed().as_nanos() as f64 / (reps * n.max(1)) as f64;

        let reference = sum_kahan(&values) * reps as f64;
        let max_error =
            (acc_naive - reference).abs().max((acc_lanes - reference).abs()) / reps as f64;

        // FPGA cycle model. Naive: II=7 per element. Listing 1: the outer
        // loop has II=7 but completes seven unrolled independent adds per
        // iteration (one element per cycle on average), plus the
        // 7-element dependency-chained tail reduction.
        let ii7 = PipelinedLoop::dependency_chained_add().cycles(n as u64);
        let listing = PipelinedLoop::new(7, 7).cycles(n.div_ceil(7) as u64)
            + PipelinedLoop::dependency_chained_add().cycles(7);

        rows.push(Listing1Row {
            length: n,
            naive_ns_per_elem: naive_ns,
            lanes_ns_per_elem: lanes_ns,
            host_speedup: naive_ns / lanes_ns,
            fpga_cycles_ii7: ii7,
            fpga_cycles_listing1: listing,
            max_error,
        });
    }
    rows
}

/// One point of the vectorisation-factor sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct VectorSweepRow {
    /// Replication factor V.
    pub factor: usize,
    /// Simulated options/second.
    pub options_per_second: f64,
    /// Speedup over V = 1 (the inter-option engine).
    pub speedup: f64,
}

/// Sweep the Figure-3 replication factor. With the dual-ported URAM copy
/// per function, the gain saturates at the port count — the mechanism
/// behind the paper's "replicated … six times, which doubled
/// performance".
pub fn vector_sweep(workload: &Workload, factors: &[usize]) -> Vec<VectorSweepRow> {
    let mut rows = Vec::new();
    let mut base = None;
    for &v in factors {
        let mut config = EngineVariant::Vectorised.config();
        config.vector_factor = v;
        let engine = FpgaCdsEngine::new(workload.market.clone(), config);
        let rate = engine.price_batch(&workload.options).options_per_second;
        let base_rate = *base.get_or_insert(rate);
        rows.push(VectorSweepRow {
            factor: v,
            options_per_second: rate,
            speedup: rate / base_rate,
        });
    }
    rows
}

/// One point of the hazard-II ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct IiSweepRow {
    /// Engine description.
    pub description: String,
    /// Simulated options/second.
    pub options_per_second: f64,
}

/// Isolate the Listing-1 II fix: run the baseline and the inter-option
/// dataflow engine under both accumulation regimes.
pub fn ii_sweep(workload: &Workload) -> Vec<IiSweepRow> {
    let mut rows = Vec::new();
    for (variant, label) in [
        (EngineVariant::XilinxBaseline, "baseline"),
        (EngineVariant::InterOption, "inter-option dataflow"),
    ] {
        for (mode, mode_label) in [
            (HazardIiMode::DependencyChained, "II=7"),
            (HazardIiMode::PartialSums, "II=1 (Listing 1)"),
        ] {
            let mut config = variant.config();
            config.hazard_ii = mode;
            let engine = FpgaCdsEngine::new(workload.market.clone(), config);
            let rate = engine.price_batch(&workload.options).options_per_second;
            rows.push(IiSweepRow {
                description: format!("{label}, {mode_label}"),
                options_per_second: rate,
            });
        }
    }
    rows
}

/// One point of the stream-depth sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct DepthSweepRow {
    /// Configured FIFO depth.
    pub depth: usize,
    /// Simulated options/second (vectorised engine).
    pub options_per_second: f64,
}

/// Sensitivity of the vectorised engine to inter-stage FIFO depth.
pub fn depth_sweep(workload: &Workload, depths: &[usize]) -> Vec<DepthSweepRow> {
    depths
        .iter()
        .map(|&depth| {
            let mut config = EngineVariant::Vectorised.config();
            config.stream_depth = depth;
            let engine = FpgaCdsEngine::new(workload.market.clone(), config);
            DepthSweepRow {
                depth,
                options_per_second: engine.price_batch(&workload.options).options_per_second,
            }
        })
        .collect()
}

/// Result of the reduced-precision exploration (paper §V further work).
#[derive(Debug, Clone, PartialEq)]
pub struct PrecisionReport {
    /// Options priced.
    pub options: usize,
    /// Maximum absolute spread error of f32 vs f64, in basis points.
    pub max_error_bps: f64,
    /// Mean absolute spread error in basis points.
    pub mean_error_bps: f64,
    /// Worst relative error.
    pub max_relative_error: f64,
}

/// Price the workload in both f64 and f32 and quantify the accuracy cost
/// of moving to single precision (the Versal-oriented further work of
/// the paper's conclusions).
pub fn precision(workload: &Workload) -> PrecisionReport {
    let market64: &MarketData<f64> = &workload.market;
    let market32 = market64.to_f32();
    let mut max_err = 0.0f64;
    let mut sum_err = 0.0f64;
    let mut max_rel = 0.0f64;
    for o in &workload.options {
        let s64 = price_cds_generic(market64, o.maturity, o.frequency.per_year(), o.recovery_rate);
        let s32 = price_cds_generic(
            &market32,
            o.maturity as f32,
            o.frequency.per_year(),
            o.recovery_rate as f32,
        ) as f64;
        let err = (s64 - s32).abs();
        max_err = max_err.max(err);
        sum_err += err;
        max_rel = max_rel.max(err / s64.abs().max(1e-12));
    }
    PrecisionReport {
        options: workload.options.len(),
        max_error_bps: max_err,
        mean_error_bps: sum_err / workload.options.len().max(1) as f64,
        max_relative_error: max_rel,
    }
}

/// One row of the further-work projection (paper §V): double- vs
/// single-precision engines on one U280.
#[derive(Debug, Clone, PartialEq)]
pub struct FutureWorkRow {
    /// Configuration description.
    pub description: String,
    /// Engines that fit on the U280.
    pub engines: usize,
    /// Aggregate throughput, options/second.
    pub options_per_second: f64,
    /// Power efficiency, options/Watt.
    pub options_per_watt: f64,
    /// Worst spread error versus the f64 reference, basis points.
    pub max_error_bps: f64,
}

/// Project the paper's §V further work: run the vectorised engine in both
/// precisions, fit as many engines as the U280 takes in each, and compare
/// throughput, efficiency and accuracy.
pub fn futurework(workload: &Workload) -> Vec<FutureWorkRow> {
    use cds_engine::config::EnginePrecision;
    use cds_engine::multi::MultiEngine;
    use cds_quant::cds::CdsPricer;
    use dataflow_sim::resource::Device;

    let device = Device::alveo_u280();
    let power = cds_power::FpgaPowerModel::alveo_u280_cds();
    let pricer = CdsPricer::new(workload.market.clone());
    let reference: Vec<f64> = workload.options.iter().map(|o| pricer.price(o).spread_bps).collect();

    let mut rows = Vec::new();
    for (precision, label) in [
        (EnginePrecision::Double, "f64 vectorised engines (paper)"),
        (EnginePrecision::Single, "f32 vectorised engines (further work)"),
    ] {
        let mut config = EngineVariant::Vectorised.config();
        config.precision = precision;
        let engines = MultiEngine::max_engines(&workload.market, &config, &device);
        let multi = match MultiEngine::with_config(workload.market.clone(), config, device, engines)
        {
            Ok(m) => m,
            Err(e) => panic!("max_engines count must fit by construction: {e}"),
        };
        let report = multi.price_batch(&workload.options);
        let watts = power.watts(engines as u32);
        let max_error = report
            .spreads
            .iter()
            .zip(&reference)
            .map(|(s, r)| (s - r).abs())
            .fold(0.0f64, f64::max);
        rows.push(FutureWorkRow {
            description: label.to_string(),
            engines,
            options_per_second: report.options_per_second,
            options_per_watt: cds_power::options_per_watt(report.options_per_second, watts),
            max_error_bps: max_error,
        });
    }
    rows
}

/// The resource-driven engine-count table behind §IV ("being able to fit
/// five onto the Alveo U280").
#[derive(Debug, Clone, PartialEq)]
pub struct FitReport {
    /// Resource usage of one vectorised engine.
    pub per_engine: dataflow_sim::resource::ResourceUsage,
    /// Device budget after platform reservation.
    pub usable: dataflow_sim::resource::ResourceUsage,
    /// Maximum engines that fit.
    pub max_engines: usize,
}

/// Compute the U280 fit of the vectorised engine.
pub fn fit_report(market: &MarketData<f64>) -> FitReport {
    let config = EngineVariant::Vectorised.config();
    let device = dataflow_sim::resource::Device::alveo_u280();
    let per_engine = cds_engine::multi::engine_resource_usage(&config, market.hazard.len());
    FitReport {
        per_engine,
        usable: device.usable(),
        max_engines: MultiEngine::max_engines(market, &config, &device),
    }
}

/// One point of the region-restart-overhead sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct RestartSweepRow {
    /// Restart overhead in cycles.
    pub restart_cycles: u64,
    /// Per-option (optimised dataflow) engine throughput.
    pub options_per_second: f64,
}

/// Sensitivity to the one calibrated timing scalar: sweep the region
/// restart overhead of the per-option dataflow engine. At zero restart
/// the engine approaches the inter-option variant; at the calibrated
/// 18.2k cycles it reproduces the paper's optimised row. This makes the
/// calibration's influence explicit and bounded.
pub fn restart_sweep(workload: &Workload, overheads: &[u64]) -> Vec<RestartSweepRow> {
    overheads
        .iter()
        .map(|&restart| {
            let mut config = EngineVariant::OptimisedDataflow.config();
            config.region_cost = dataflow_sim::region::RegionCost::new(restart, 6);
            let engine = FpgaCdsEngine::new(workload.market.clone(), config);
            RestartSweepRow {
                restart_cycles: restart,
                options_per_second: engine.price_batch(&workload.options).options_per_second,
            }
        })
        .collect()
}

/// One point of the streaming latency-vs-load experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingRow {
    /// Offered load, options/second.
    pub offered_rate: f64,
    /// Median latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: f64,
    /// Achieved throughput, options/second.
    pub achieved_rate: f64,
}

/// Streaming latency vs offered load on the vectorised engine (the AAT
/// further-work direction): Poisson arrivals at each rate, latency from
/// arrival to spread-out.
pub fn streaming_sweep(workload: &Workload, rates: &[f64], n_options: usize) -> Vec<StreamingRow> {
    use cds_engine::streaming::{poisson_arrivals, run_streaming};
    let market = Rc::new(workload.market.clone());
    let config = EngineVariant::Vectorised.config();
    let options = &workload.options[..n_options.min(workload.options.len())];
    rates
        .iter()
        .map(|&rate| {
            let arrivals = poisson_arrivals(&config, rate, options.len(), workload.seed);
            let report = run_streaming(market.clone(), &config, options, &arrivals);
            StreamingRow {
                offered_rate: rate,
                p50_us: report.p50_us(&config),
                p99_us: report.p99_us(&config),
                achieved_rate: report.options_per_second,
            }
        })
        .collect()
}

/// One point of the constant-data size sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct CurveSizeRow {
    /// Knots per curve.
    pub knots: usize,
    /// Inter-option engine throughput, options/second.
    pub options_per_second: f64,
}

/// Sweep the curve size (the paper fixes 1024 knots): the dataflow
/// engines' steady state is one full scan per time point, so throughput
/// is inversely proportional to the table size.
pub fn curve_size_sweep(seed: u64, n_options: usize, sizes: &[usize]) -> Vec<CurveSizeRow> {
    use cds_quant::option::PortfolioGenerator;
    sizes
        .iter()
        .map(|&knots| {
            let market = MarketData::paper_workload_sized(seed, knots);
            let options = PortfolioGenerator::uniform(
                n_options,
                5.5,
                cds_quant::option::PaymentFrequency::Quarterly,
                0.40,
            );
            let engine = FpgaCdsEngine::new(market, EngineVariant::InterOption.config());
            CurveSizeRow {
                knots,
                options_per_second: engine.price_batch(&options).options_per_second,
            }
        })
        .collect()
}

/// Build a `Rc`-wrapped market for graph construction helpers.
pub fn market_rc(workload: &Workload) -> Rc<MarketData<f64>> {
    Rc::new(workload.market.clone())
}

/// Occupancy analysis of the vectorised engine: run a small batch with
/// tracing enabled and return the per-stage utilisations plus a textual
/// Gantt chart — the paper's "stalls frequently occurred" diagnosis, made
/// visible.
pub struct OccupancyReport {
    /// `(stage name, busy fraction)`, sorted by name.
    pub utilisations: Vec<(String, f64)>,
    /// Fixed-width Gantt rendering.
    pub gantt: String,
    /// Total kernel cycles of the traced run.
    pub total_cycles: u64,
}

/// Trace the vectorised engine over a small batch.
pub fn occupancy(workload: &Workload, options: usize) -> OccupancyReport {
    let recorder = dataflow_sim::trace::TraceRecorder::new();
    let mut config = EngineVariant::Vectorised.config();
    config.trace = Some(recorder.clone());
    let engine = FpgaCdsEngine::new(workload.market.clone(), config);
    let report = engine.price_batch(&workload.options[..options.min(workload.options.len())]);
    let total = report.kernel_cycles;
    let utilisations = recorder
        .stages()
        .into_iter()
        .map(|s| {
            let u = recorder.utilisation(&s, total);
            (s, u)
        })
        .collect();
    OccupancyReport { utilisations, gantt: recorder.gantt(total, 64), total_cycles: total }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wl() -> Workload {
        Workload::paper(7, 24)
    }

    #[test]
    fn listing1_lane_kernel_numerically_sound() {
        for row in listing1(&[100, 1024, 1000]) {
            assert!(row.max_error < 1e-6, "len {}: error {}", row.length, row.max_error);
            // FPGA model: Listing 1 ≈ 7× fewer cycles at scale.
            let model_speedup = row.fpga_cycles_ii7 as f64 / row.fpga_cycles_listing1 as f64;
            assert!(model_speedup > 4.0, "model speedup {model_speedup}");
        }
    }

    #[test]
    fn vector_sweep_saturates_at_port_bandwidth() {
        let rows = vector_sweep(&wl(), &[1, 2, 6]);
        assert!(rows[1].speedup > 1.6, "V=2 speedup {}", rows[1].speedup);
        // Beyond the two URAM ports, more replicas add nothing.
        let extra = rows[2].options_per_second / rows[1].options_per_second;
        assert!(extra < 1.15, "V=6 over V=2 gave {extra}");
    }

    #[test]
    fn ii_sweep_shows_listing1_benefit() {
        let rows = ii_sweep(&wl());
        assert_eq!(rows.len(), 4);
        let rate = |needle: &str| {
            rows.iter().find(|r| r.description.contains(needle)).unwrap().options_per_second
        };
        assert!(rate("baseline, II=1") > rate("baseline, II=7") * 1.5);
        assert!(rate("inter-option dataflow, II=1") > rate("inter-option dataflow, II=7") * 3.0);
    }

    #[test]
    fn depth_sweep_monotone_then_flat() {
        let rows = depth_sweep(&wl(), &[1, 4, 16]);
        assert!(rows[1].options_per_second >= rows[0].options_per_second * 0.99);
        // Deep FIFOs should not dramatically beat the default.
        assert!(rows[2].options_per_second < rows[1].options_per_second * 1.3);
    }

    #[test]
    fn precision_error_small_but_nonzero() {
        let report = precision(&Workload::mixed(3, 64));
        assert!(report.max_error_bps > 0.0);
        assert!(report.max_error_bps < 1.0, "f32 error {} bps", report.max_error_bps);
        assert!(report.mean_error_bps <= report.max_error_bps);
        assert!(report.max_relative_error < 5e-3);
    }

    #[test]
    fn restart_sweep_spans_interoption_to_paper_row() {
        let rows = restart_sweep(&wl(), &[0, 18_200, 36_400]);
        // Monotone decreasing in overhead.
        assert!(rows[0].options_per_second > rows[1].options_per_second);
        assert!(rows[1].options_per_second > rows[2].options_per_second);
        // Zero restart approaches the inter-option engine (fills remain).
        let inter = FpgaCdsEngine::new(wl().market.clone(), EngineVariant::InterOption.config())
            .price_batch(&wl().options)
            .options_per_second;
        assert!(
            rows[0].options_per_second > 0.80 * inter,
            "{} vs {inter}",
            rows[0].options_per_second
        );
    }

    #[test]
    fn streaming_latency_grows_with_load() {
        let rows = streaming_sweep(&wl(), &[2_000.0, 100_000.0], 16);
        assert_eq!(rows.len(), 2);
        assert!(
            rows[1].p99_us > rows[0].p99_us * 1.5,
            "light p99 {} vs heavy p99 {}",
            rows[0].p99_us,
            rows[1].p99_us
        );
    }

    #[test]
    fn curve_size_inverse_to_throughput() {
        let rows = curve_size_sweep(7, 12, &[512, 2048]);
        let ratio = rows[0].options_per_second / rows[1].options_per_second;
        assert!((3.0..5.0).contains(&ratio), "512 vs 2048 knots ratio {ratio}");
    }

    #[test]
    fn futurework_f32_fits_more_engines_and_goes_faster() {
        // Batch large enough that per-engine fills/overheads amortise
        // even at the higher f32 engine count.
        let rows = futurework(&Workload::paper(7, 240));
        assert_eq!(rows.len(), 2);
        let (f64_row, f32_row) = (&rows[0], &rows[1]);
        assert_eq!(f64_row.engines, 5);
        assert!(f32_row.engines > f64_row.engines, "f32 fits {} engines", f32_row.engines);
        // Throughput: more engines x faster scans.
        assert!(
            f32_row.options_per_second > 2.0 * f64_row.options_per_second,
            "f32 {} vs f64 {}",
            f32_row.options_per_second,
            f64_row.options_per_second
        );
        // Accuracy: f64 engines exact, f32 within a hundredth of a bp.
        assert!(f64_row.max_error_bps < 1e-6);
        assert!(f32_row.max_error_bps > 0.0 && f32_row.max_error_bps < 0.01);
    }

    #[test]
    fn occupancy_trace_shows_busy_replicas() {
        let r = occupancy(&wl(), 4);
        assert!(r.total_cycles > 0);
        // All 18 replicas (3 functions x V=6) appear.
        assert_eq!(r.utilisations.len(), 18);
        for (stage, u) in &r.utilisations {
            assert!(*u > 0.3 && *u <= 1.0, "{stage}: utilisation {u}");
        }
        assert!(r.gantt.contains("hazard-rep0"));
        assert!(r.gantt.lines().count() == 18);
    }

    #[test]
    fn fit_report_is_five_engines() {
        let report = fit_report(&wl().market);
        assert_eq!(report.max_engines, 5);
        assert!(report.per_engine.luts > 0);
    }
}
