//! Figures 1–3 as Graphviz DOT, regenerated from the actual engine
//! structures (not hand-drawn).

use cds_quant::option::MarketData;
use std::rc::Rc;

/// Figure 1: the sequential Xilinx engine flowchart.
pub fn fig1_dot() -> String {
    cds_engine::variants::xilinx::fig1_dot()
}

/// Figure 2: the dataflow architecture (stages and streams of the
/// inter-option engine graph).
pub fn fig2_dot(market: &MarketData<f64>) -> String {
    cds_engine::variants::dataflow::fig2_dot(&Rc::new(market.clone()))
}

/// Figure 3: the vectorised architecture with round-robin schedulers and
/// replicated hazard/interpolation functions.
pub fn fig3_dot(market: &MarketData<f64>) -> String {
    cds_engine::variants::dataflow::fig3_dot(&Rc::new(market.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_figures_are_valid_dot() {
        let market = MarketData::paper_workload(1);
        for dot in [fig1_dot(), fig2_dot(&market), fig3_dot(&market)] {
            assert!(dot.starts_with("digraph"));
            assert_eq!(dot.matches('{').count(), dot.matches('}').count());
            assert!(dot.contains("->"));
        }
    }

    #[test]
    fn fig3_shows_replication_fig2_does_not() {
        let market = MarketData::paper_workload(1);
        assert!(!fig2_dot(&market).contains("rep0"));
        assert!(fig3_dot(&market).contains("rep0"));
        assert!(fig3_dot(&market).contains("rep5"));
    }
}
