//! `cds-harness validate` — one-shot artifact validation.
//!
//! Runs the repository's independent cross-checks and prints a verdict
//! per check, so an artifact evaluator can confirm the system's
//! correctness story without reading the test suite:
//!
//! 1. every engine variant vs the golden pricer,
//! 2. the golden pricer vs an independent Monte Carlo simulation,
//! 3. the event-driven vs cycle-stepped schedulers on the real graph,
//! 4. a bootstrap round trip through the FPGA engine,
//! 5. the streaming simulator vs M/D/1 queueing theory.

use crate::workload::Workload;
use cds_engine::prelude::*;
use cds_engine::streaming::{md1_mean_sojourn_cycles, poisson_arrivals, run_streaming};
use cds_engine::variants::dataflow::build_graph;
use cds_quant::bootstrap::{bootstrap_hazard, CdsQuote};
use cds_quant::montecarlo::mc_price_cds;
use cds_quant::prelude::*;
use dataflow_sim::cycle_sim::CycleSim;
use dataflow_sim::event_sim::EventSim;
use std::rc::Rc;

/// Outcome of one validation check.
#[derive(Debug, Clone, PartialEq)]
pub struct Check {
    /// Short name.
    pub name: String,
    /// Whether it passed.
    pub passed: bool,
    /// Human-readable evidence (the measured discrepancy).
    pub detail: String,
}

/// Run all validation checks.
pub fn validate_all(workload: &Workload) -> Vec<Check> {
    vec![
        engines_vs_reference(workload),
        analytic_vs_montecarlo(workload),
        schedulers_agree(workload),
        bootstrap_round_trip(),
        des_vs_queueing_theory(workload),
    ]
}

fn engines_vs_reference(workload: &Workload) -> Check {
    // Shared cross-engine agreement budget (see `cds_quant::ulp`): the
    // same 128-ULP + 1e-9-floor comparator the conformance suite gates
    // on, replacing this check's former ad-hoc 1e-7 relative bound.
    let cmp = UlpComparator::ENGINE_F64;
    let pricer = CdsPricer::new(workload.market.clone());
    let options = &workload.options[..workload.options.len().min(16)];
    let mut worst_ulps = 0u64;
    let mut failure = None;
    for variant in EngineVariant::ALL {
        let engine = FpgaCdsEngine::new(workload.market.clone(), variant.config());
        let report = engine.price_batch(options);
        for (o, s) in options.iter().zip(&report.spreads) {
            let golden = pricer.price(o).spread_bps;
            worst_ulps = worst_ulps.max(ulp_diff(*s, golden));
            if let Err(m) = cmp.check(*s, golden) {
                failure.get_or_insert_with(|| format!("{} {m}", variant.paper_label()));
            }
        }
    }
    Check {
        name: "4 engine variants ≡ golden pricer".into(),
        passed: failure.is_none(),
        detail: failure.unwrap_or_else(|| {
            format!("worst divergence {worst_ulps} ULPs (budget {} ULPs)", cmp.max_ulps)
        }),
    }
}

fn analytic_vs_montecarlo(workload: &Workload) -> Check {
    let option = CdsOption::new(5.5, PaymentFrequency::Quarterly, 0.40);
    let analytic = price_cds(&workload.market, &option).spread_bps;
    let mc = mc_price_cds(&workload.market, &option, 150_000, workload.seed);
    let sigmas = (mc.spread_bps - analytic).abs() / mc.std_error_bps;
    Check {
        name: "analytic pricer ≡ Monte Carlo".into(),
        passed: sigmas < 4.0 || (mc.spread_bps - analytic).abs() / analytic < 0.005,
        detail: format!(
            "MC {:.3} ± {:.3} bps vs analytic {analytic:.3} bps ({sigmas:.1}σ)",
            mc.spread_bps, mc.std_error_bps
        ),
    }
}

fn schedulers_agree(workload: &Workload) -> Check {
    let market = Rc::new(workload.market.clone());
    let config = EngineVariant::InterOption.config();
    let options = PortfolioGenerator::uniform(2, 2.0, PaymentFrequency::Quarterly, 0.4);
    let (g1, s1) = build_graph(market.clone(), &config, &options, 0);
    let (g2, s2) = build_graph(market, &config, &options, 0);
    let (r1, r2) = match (EventSim::new(g1).run(), CycleSim::new(g2).run()) {
        (Ok(a), Ok(b)) => (a, b),
        (a, b) => {
            return Check {
                name: "event-driven ≡ cycle-stepped scheduler".into(),
                passed: false,
                detail: format!("a scheduler failed to run: event {a:?}, cycle {b:?}"),
            }
        }
    };
    let agree = r1.total_cycles == r2.total_cycles
        && r1.streams == r2.streams
        && s1.collected() == s2.collected();
    Check {
        name: "event-driven ≡ cycle-stepped scheduler".into(),
        passed: agree,
        detail: format!(
            "completion {} vs {} cycles; stream stats {}",
            r1.total_cycles,
            r2.total_cycles,
            if r1.streams == r2.streams { "identical" } else { "DIVERGED" }
        ),
    }
}

fn bootstrap_round_trip() -> Check {
    let interest = Curve::flat(0.02, 64, 30.0);
    let quotes: Vec<CdsQuote> = [(1.0, 60.0), (3.0, 95.0), (5.0, 130.0)]
        .into_iter()
        .map(|(maturity, spread_bps)| CdsQuote {
            maturity,
            spread_bps,
            frequency: PaymentFrequency::Quarterly,
            recovery: 0.40,
        })
        .collect();
    match bootstrap_hazard(&interest, &quotes) {
        Err(e) => Check {
            name: "bootstrap round trip".into(),
            passed: false,
            detail: format!("bootstrap failed: {e}"),
        },
        Ok(result) => {
            let market = MarketData { interest, hazard: result.hazard };
            let engine = FpgaCdsEngine::new(market, EngineVariant::Vectorised.config());
            let options: Vec<CdsOption> = quotes
                .iter()
                .map(|q| CdsOption::new(q.maturity, q.frequency, q.recovery))
                .collect();
            let report = engine.price_batch(&options);
            let worst = quotes
                .iter()
                .zip(&report.spreads)
                .map(|(q, s)| (s - q.spread_bps).abs())
                .fold(0.0f64, f64::max);
            Check {
                name: "bootstrap round trip through FPGA engine".into(),
                passed: worst < 1e-5,
                detail: format!("worst repricing error {worst:.2e} bps (bound 1e-5)"),
            }
        }
    }
}

fn des_vs_queueing_theory(workload: &Workload) -> Check {
    let config = EngineVariant::Vectorised.config();
    let market = Rc::new(workload.market.clone());
    let n = workload.options.len().min(150);
    let options = PortfolioGenerator::uniform(n, 5.5, PaymentFrequency::Quarterly, 0.40);
    let service_ii = 22.0 * 512.0;
    let fill = run_streaming(market.clone(), &config, &options[..1], &[0]).p50_cycles as f64;
    let lambda = 0.6 / service_ii;
    let arrivals = poisson_arrivals(&config, lambda * config.clock.hz, n, workload.seed);
    let report = run_streaming(market, &config, &options, &arrivals);
    let mean_sim = report.spans.iter().map(|&(a, d)| (d - a) as f64).sum::<f64>() / n as f64;
    let Some(theory) = md1_mean_sojourn_cycles(lambda, service_ii, fill) else {
        return Check {
            name: "streaming DES ≡ M/D/1 queueing theory".into(),
            passed: false,
            detail: format!("offered load {lambda:.2e} saturates the M/D/1 model"),
        };
    };
    let err = (mean_sim - theory).abs() / theory;
    Check {
        name: "streaming DES ≡ M/D/1 queueing theory".into(),
        passed: err < 0.30,
        detail: format!(
            "mean sojourn {mean_sim:.0} vs P-K formula {theory:.0} cycles ({:.0}% off)",
            err * 100.0
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_checks_pass() {
        let checks = validate_all(&Workload::paper(42, 160));
        assert_eq!(checks.len(), 5);
        for c in &checks {
            assert!(c.passed, "{}: {}", c.name, c.detail);
        }
    }
}
