//! Deterministic run journals for the `replay` subcommand.
//!
//! A [`RunJournal`] is everything needed to re-execute a streaming run
//! and prove it reproduces: the workload recipe (seed, option count,
//! arrival cadence), a **named** fault scenario (fault plans hold
//! closures, so the journal stores the scenario name and rebuilds the
//! plan via [`scenario_plan`]), the checkpoint cadence, every write-ahead
//! [`Checkpoint`] the run emitted (verbatim text form), and the final
//! spreads as **hex-encoded f64 bits** so equality is bit-exact rather
//! than at the mercy of decimal formatting.
//!
//! [`check`] re-executes the journal and demands bit-identical spreads
//! and byte-identical checkpoint streams; for fault-free journals it
//! additionally resumes from a mid-run checkpoint and demands the merged
//! result equals the full run — the CI determinism and recovery gate.

use crate::json::Json;
use cds_engine::checkpoint::Checkpoint;
use cds_engine::config::{EngineConfig, EngineVariant};
use cds_engine::scrub::ScrubPolicy;
use cds_engine::streaming::{
    resume_streaming_from, run_streaming_checkpointed, StreamingPolicy, StreamingReport,
};
use cds_engine::tokens::SpreadTok;
use cds_quant::option::{CdsOption, MarketData, PaymentFrequency, PortfolioGenerator};
use dataflow_sim::fault::FaultPlan;
use dataflow_sim::Cycle;
use std::rc::Rc;

/// Version of the journal JSON schema.
pub const JOURNAL_SCHEMA_VERSION: u64 = 1;

/// The named fault scenarios a journal may reference. Fault plans carry
/// closures and cannot be serialised; replay rebuilds them from these
/// names, which therefore must stay stable.
pub const SCENARIOS: &[&str] = &["none", "corrupt-spread", "stall-hazard", "drop-spread"];

/// Rebuild the fault plan a scenario name denotes. `None` means the run
/// is fault-free. Unknown names are an error (a journal from a newer
/// harness must not silently replay as fault-free).
pub fn scenario_plan(name: &str, seed: u64) -> Result<Option<FaultPlan>, String> {
    match name {
        "none" => Ok(None),
        "corrupt-spread" => Ok(Some(
            FaultPlan::new(seed)
                .corrupt_nth::<SpreadTok>("spreads", 2, |t| SpreadTok {
                    spread_bps: -t.spread_bps,
                    ..t
                })
                .corrupt_nth::<SpreadTok>("spreads", 5, |t| SpreadTok {
                    spread_bps: t.spread_bps + 0.25,
                    ..t
                }),
        )),
        "stall-hazard" => Ok(Some(FaultPlan::new(seed).stall_stage("hazard_out", 5_000, 22))),
        "drop-spread" => Ok(Some(FaultPlan::new(seed).drop_nth("spreads", 2))),
        other => Err(format!("unknown fault scenario '{other}' (known: {SCENARIOS:?})")),
    }
}

/// A recorded streaming run: recipe plus outcome, sufficient for
/// bit-exact replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunJournal {
    /// Schema version of the serialised form ([`JOURNAL_SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Workload seed (market data and fault placement both derive from it).
    pub seed: u64,
    /// Number of options in the portfolio.
    pub options: u64,
    /// Deterministic arrival cadence: option `i` arrives at `i * arrival_step`.
    pub arrival_step: u64,
    /// Named fault scenario (see [`scenario_plan`]).
    pub scenario: String,
    /// Checkpoint cadence the run journalled at.
    pub cadence: u32,
    /// Every checkpoint the run emitted, in emission order, as the
    /// verbatim [`Checkpoint::to_text`] form.
    pub checkpoints: Vec<String>,
    /// Final spreads in original option order, as hex-encoded f64 bits.
    pub spread_bits: Vec<u64>,
}

impl RunJournal {
    /// Serialise to the versioned JSON schema.
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("schema_version", Json::Number(self.schema_version as f64)),
            ("seed", Json::Number(self.seed as f64)),
            ("options", Json::Number(self.options as f64)),
            ("arrival_step", Json::Number(self.arrival_step as f64)),
            ("scenario", Json::Str(self.scenario.clone())),
            ("cadence", Json::Number(f64::from(self.cadence))),
            (
                "checkpoints",
                Json::Array(self.checkpoints.iter().map(|c| Json::Str(c.clone())).collect()),
            ),
            (
                "spread_bits",
                Json::Array(
                    self.spread_bits.iter().map(|b| Json::Str(format!("{b:016x}"))).collect(),
                ),
            ),
        ])
    }

    /// Pretty-printed JSON document (stable: object keys are sorted).
    pub fn pretty(&self) -> String {
        self.to_json().pretty()
    }

    /// Parse a serialised journal, validating the schema version.
    pub fn from_json(value: &Json) -> Result<Self, String> {
        let num = |key: &str| -> Result<f64, String> {
            value
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("journal missing numeric field '{key}'"))
        };
        let schema_version = num("schema_version")? as u64;
        if schema_version != JOURNAL_SCHEMA_VERSION {
            return Err(format!(
                "journal schema version {schema_version} != supported {JOURNAL_SCHEMA_VERSION}"
            ));
        }
        let strings = |key: &str| -> Result<Vec<String>, String> {
            value
                .get(key)
                .and_then(Json::as_array)
                .ok_or_else(|| format!("journal missing '{key}' array"))?
                .iter()
                .map(|e| {
                    e.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| format!("non-string entry in '{key}'"))
                })
                .collect()
        };
        let spread_bits = strings("spread_bits")?
            .iter()
            .map(|h| {
                u64::from_str_radix(h, 16).map_err(|_| format!("bad spread bits '{h}' in journal"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(RunJournal {
            schema_version,
            seed: num("seed")? as u64,
            options: num("options")? as u64,
            arrival_step: num("arrival_step")? as u64,
            scenario: value
                .get("scenario")
                .and_then(Json::as_str)
                .ok_or("journal missing 'scenario'")?
                .to_string(),
            cadence: num("cadence")? as u32,
            checkpoints: strings("checkpoints")?,
            spread_bits,
        })
    }

    /// Parse from JSON text.
    pub fn parse(text: &str) -> Result<Self, String> {
        Self::from_json(&crate::json::parse(text)?)
    }

    /// The recorded spreads, decoded.
    pub fn spreads(&self) -> Vec<f64> {
        self.spread_bits.iter().map(|&b| f64::from_bits(b)).collect()
    }
}

/// The fixed engine recipe journals run under: the scrubber is always on
/// (guards + taint tracking; no sampled cross-check, so fault-free runs
/// never touch the CPU path) and the variant is the paper's fastest.
fn recipe(journal_seed: u64) -> (Rc<MarketData<f64>>, EngineConfig) {
    (Rc::new(MarketData::paper_workload(journal_seed)), EngineVariant::Vectorised.config())
}

fn workload(n: u64, arrival_step: u64) -> (Vec<CdsOption>, Vec<Cycle>) {
    let options = PortfolioGenerator::uniform(n as usize, 5.5, PaymentFrequency::Quarterly, 0.40);
    let arrivals = (0..n).map(|i| i * arrival_step).collect();
    (options, arrivals)
}

fn execute(
    seed: u64,
    n: u64,
    arrival_step: u64,
    scenario: &str,
    cadence: u32,
) -> Result<(StreamingReport, Vec<Checkpoint>), String> {
    let (market, config) = recipe(seed);
    let (options, arrivals) = workload(n, arrival_step);
    let policy = StreamingPolicy {
        fault_plan: scenario_plan(scenario, seed)?,
        scrub: Some(ScrubPolicy { cross_check_every: 0 }),
        scenario: Some(scenario.to_string()),
        ..Default::default()
    };
    let mut checkpoints = Vec::new();
    let report =
        run_streaming_checkpointed(market, &config, &options, &arrivals, &policy, cadence, |c| {
            checkpoints.push(c.clone())
        })
        .map_err(|e| format!("journalled run failed: {e}"))?;
    Ok((report, checkpoints))
}

/// Execute a run under the journal recipe and record it.
pub fn record(
    seed: u64,
    n: u64,
    arrival_step: u64,
    scenario: &str,
    cadence: u32,
) -> Result<RunJournal, String> {
    let (report, checkpoints) = execute(seed, n, arrival_step, scenario, cadence)?;
    Ok(RunJournal {
        schema_version: JOURNAL_SCHEMA_VERSION,
        seed,
        options: n,
        arrival_step,
        scenario: scenario.to_string(),
        cadence,
        checkpoints: checkpoints.iter().map(Checkpoint::to_text).collect(),
        spread_bits: report.spreads.iter().map(|s| s.to_bits()).collect(),
    })
}

/// Re-execute a journal and gate the outcome. Returns the list of
/// determinism violations (empty = the journal replays exactly); `Err`
/// means the journal could not be replayed at all (unknown scenario,
/// engine error) and is an environment problem, not a gate failure.
pub fn check(journal: &RunJournal) -> Result<Vec<String>, String> {
    let mut problems = Vec::new();
    let (report, checkpoints) = execute(
        journal.seed,
        journal.options,
        journal.arrival_step,
        &journal.scenario,
        journal.cadence,
    )?;

    // 1. Final spreads must be bit-identical to the recorded run.
    let bits: Vec<u64> = report.spreads.iter().map(|s| s.to_bits()).collect();
    if bits.len() != journal.spread_bits.len() {
        problems.push(format!(
            "replay completed {} options, journal recorded {}",
            bits.len(),
            journal.spread_bits.len()
        ));
    } else {
        for (i, (a, b)) in bits.iter().zip(&journal.spread_bits).enumerate() {
            if a != b {
                problems.push(format!(
                    "spread {i} diverged: replay {:?} ({a:016x}) vs journal {:?} ({b:016x})",
                    f64::from_bits(*a),
                    f64::from_bits(*b)
                ));
            }
        }
    }

    // 2. The write-ahead checkpoint stream must be byte-identical.
    let texts: Vec<String> = checkpoints.iter().map(Checkpoint::to_text).collect();
    if texts != journal.checkpoints {
        problems.push(format!(
            "checkpoint stream diverged: replay emitted {} records, journal holds {}{}",
            texts.len(),
            journal.checkpoints.len(),
            texts
                .iter()
                .zip(&journal.checkpoints)
                .position(|(a, b)| a != b)
                .map(|i| format!(" (first mismatch at record {i})"))
                .unwrap_or_default()
        ));
    }

    // 3. Fault-free journals additionally prove recovery: resume from a
    // mid-run checkpoint and demand the merged result equals the full
    // run. (Faulty scenarios place faults by absolute token index, which
    // a partial re-run would shift, so recovery there is proven by the
    // chaos matrix's kill-resume scenario instead.)
    if journal.scenario == "none" && checkpoints.len() >= 2 {
        let mid = &checkpoints[checkpoints.len() / 2 - 1];
        let (market, config) = recipe(journal.seed);
        let (options, arrivals) = workload(journal.options, journal.arrival_step);
        let policy = StreamingPolicy {
            scrub: Some(ScrubPolicy { cross_check_every: 0 }),
            // Assert the journal really belongs to the scenario being
            // replayed — a mismatch is a typed error, not a silent
            // wrong-journal resume.
            scenario: Some(journal.scenario.clone()),
            ..Default::default()
        };
        let resumed = resume_streaming_from(market, &config, &options, &arrivals, &policy, mid)
            .map_err(|e| format!("checkpoint resume failed: {e}"))?;
        let resumed_bits: Vec<u64> = resumed.spreads.iter().map(|s| s.to_bits()).collect();
        if resumed_bits != journal.spread_bits {
            problems.push(format!(
                "resume from checkpoint {} of {} did not reproduce the journalled spreads",
                checkpoints.len() / 2 - 1,
                checkpoints.len()
            ));
        }
    }

    Ok(problems)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok<T>(r: Result<T, String>) -> T {
        match r {
            Ok(v) => v,
            Err(e) => panic!("unexpected journal error: {e}"),
        }
    }

    #[test]
    fn journal_round_trips_through_json() {
        let j = ok(record(42, 8, 40_000, "corrupt-spread", 3));
        let back = ok(RunJournal::parse(&j.pretty()));
        assert_eq!(back, j);
        assert_eq!(back.spreads().len(), 8);
    }

    #[test]
    fn recorded_run_replays_bit_identically() {
        for scenario in SCENARIOS {
            let j = ok(record(42, 8, 40_000, scenario, 3));
            let problems = ok(check(&j));
            assert!(problems.is_empty(), "{scenario}: {problems:?}");
        }
    }

    #[test]
    fn fault_free_journal_exercises_checkpoint_resume() {
        let j = ok(record(42, 10, 30_000, "none", 2));
        assert!(j.checkpoints.len() >= 2, "cadence 2 over 10 options must checkpoint");
        assert!(ok(check(&j)).is_empty());
    }

    #[test]
    fn corrupt_scenario_journals_the_scrubbed_spreads() {
        let clean = ok(record(42, 8, 40_000, "none", 3));
        let scrubbed = ok(record(42, 8, 40_000, "corrupt-spread", 3));
        // The journalled spreads are post-scrub: the two corrupted
        // options were quarantined and repriced, so the journal records
        // fault-free values, not the corrupt ones.
        let (report, _) = ok(execute(42, 8, 40_000, "corrupt-spread", 3));
        let scrub = report.scrub.as_ref().map(|s| s.options_quarantined);
        assert_eq!(scrub, Some(2), "both corruptions must be quarantined");
        for (i, (a, b)) in clean.spreads().iter().zip(&scrubbed.spreads()).enumerate() {
            assert!((a - b).abs() <= 1e-6 * (1.0 + b.abs()), "option {i}: {a} vs {b}");
        }
    }

    #[test]
    fn tampered_journal_fails_the_gate() {
        let mut j = ok(record(42, 8, 40_000, "stall-hazard", 3));
        j.spread_bits[4] ^= 1; // flip one mantissa bit
        let problems = ok(check(&j));
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("spread 4 diverged"), "{problems:?}");
    }

    #[test]
    fn unknown_scenario_is_fatal_not_a_gate_failure() {
        let mut j = ok(record(42, 4, 40_000, "none", 2));
        j.scenario = "meteor-strike".to_string();
        let err = match check(&j) {
            Err(e) => e,
            Ok(p) => panic!("unknown scenario must be fatal, got problems {p:?}"),
        };
        assert!(err.contains("unknown fault scenario"), "{err}");
    }

    #[test]
    fn malformed_journal_text_is_rejected() {
        assert!(RunJournal::parse("{}").is_err());
        assert!(RunJournal::parse("{\"schema_version\": 99}").is_err());
        let j = ok(record(42, 4, 40_000, "none", 2));
        let bad = j.pretty().replace("\"scenario\": \"none\"", "\"scenario\": 7");
        assert!(RunJournal::parse(&bad).is_err());
    }
}
