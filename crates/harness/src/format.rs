//! Plain-text table and CSV rendering (hand-rolled to stay within the
//! offline dependency set).

/// Render rows as an aligned plain-text table with a header.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{cell:<w$}"));
        }
        // No trailing whitespace.
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    line(&mut out, &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    line(&mut out, &rule);
    for row in rows {
        line(&mut out, row);
    }
    out
}

/// Render rows as CSV with proper quoting of commas and quotes.
pub fn render_csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let quote = |cell: &str| {
        if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
            format!("\"{}\"", cell.replace('"', "\"\""))
        } else {
            cell.to_string()
        }
    };
    let mut out = String::new();
    out.push_str(&headers.iter().map(|h| quote(h)).collect::<Vec<_>>().join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    out
}

/// Format a rate with two decimals, as the paper's tables do.
pub fn rate(v: f64) -> String {
    format!("{v:.2}")
}

/// Format a ratio with two decimals and a trailing ×.
pub fn ratio(v: f64) -> String {
    format!("{v:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["name", "value"],
            &[vec!["a".into(), "1".into()], vec!["longer-name".into(), "12345".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("----"));
        assert!(lines[3].starts_with("longer-name"));
        assert!(!lines[2].ends_with(' '));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_rows_panic() {
        let _ = render_table(&["a", "b"], &[vec!["only-one".into()]]);
    }

    #[test]
    fn csv_quoting() {
        let c = render_csv(&["a", "b"], &[vec!["x,y".into(), "say \"hi\"".into()]]);
        assert_eq!(c, "a,b\n\"x,y\",\"say \"\"hi\"\"\"\n");
    }

    #[test]
    fn number_formats() {
        assert_eq!(rate(3462.531), "3462.53");
        assert_eq!(ratio(7.994), "7.99x");
    }
}
