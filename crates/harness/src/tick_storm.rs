//! `cds-harness bench --tick-storm` — wall-clock tick-storm measurement
//! of the incremental repricing engine, with a CI regression gate.
//!
//! The scenario is ROADMAP item 1 made measurable: a resident book of
//! ≥1M options, a storm of single-point curve ticks, and the question
//! "how much faster is arrangement-driven invalidation than repricing
//! the whole book?". Three rows are timed after warm-up:
//!
//! * `full/reprice` — from-scratch full-book passes per second (the
//!   pre-incremental behaviour, and the oracle);
//! * `incremental/off-lattice-1pt` — single-point interest ticks at
//!   **lattice-free** knots (windows containing no shared payment-grid
//!   time of any resident frequency, so only per-option maturity and
//!   stub-midpoint reads are invalidated — see
//!   `docs/PERFORMANCE.md`), ticks per second;
//! * `incremental/hazard-mid` — deliberately *hot* ticks at the middle
//!   hazard knot, whose prefix window invalidates most of the book.
//!   Reported and floored, but excluded from the speedup gate: no
//!   arrangement can make a tick that every option reads cheap.
//!
//! [`compare`] gates a run against `results/tick_storm_baseline.json`:
//! absolute per-row floors carry the runner-noise tolerance, while the
//! headline `incremental_speedup` (off-lattice ticks/s over full
//! passes/s) is checked **without tolerance** against
//! [`MIN_TICK_SPEEDUP`] — both sides of the ratio see the same machine.
//! The gate also requires bitwise cleanliness: after the storm the
//! stored spreads must be bit-identical to a full reprice
//! (`bit_mismatches == 0`), no measured tick may have degenerated into
//! a zero-delta no-op, and a zero-delta probe must report an empty
//! affected set.

use crate::json::Json;
use cds_engine::incremental::{CurveKind, CurveTick, IncrementalEngine};
use cds_quant::option::{MarketData, PortfolioGenerator};
use std::time::{Duration, Instant};

/// Version of the tick-storm JSON schema. Bump on any incompatible
/// change so `--check` refuses stale baselines loudly (exit 2).
pub const SCHEMA_VERSION: u64 = 1;

/// Default resident book of a tick-storm run: the ISSUE's ≥1M options.
pub const DEFAULT_TICK_RESIDENTS: usize = 1_048_576;

/// Default relative gate width for the absolute per-row floors (same
/// rationale as the throughput gate: shared CI runners jitter).
pub const DEFAULT_TICK_TOLERANCE: f64 = 0.40;

/// Machine-independent floor on `incremental_speedup`: off-lattice
/// single-point ticks must process at least this many times faster than
/// full-book repricing. Checked without tolerance — the ratio cancels
/// machine speed.
pub const MIN_TICK_SPEEDUP: f64 = 100.0;

/// Minimum timed window per row.
const DEFAULT_MIN_SAMPLE: Duration = Duration::from_millis(300);

/// Minimum timed passes per row.
const MIN_SAMPLE_ITERS: u32 = 3;

/// One measured tick-storm row.
#[derive(Debug, Clone, PartialEq)]
pub struct TickStormRow {
    /// Stable row name (`full/reprice`, `incremental/off-lattice-1pt`,
    /// `incremental/hazard-mid`).
    pub name: String,
    /// Full passes or ticks per second, depending on the row.
    pub per_second: f64,
}

/// One wall-clock tick-storm run.
#[derive(Debug, Clone, PartialEq)]
pub struct TickStormReport {
    /// Schema version of the serialised form ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// RNG seed of the resident book.
    pub seed: u64,
    /// Resident options during the storm; the gate requires baseline
    /// and current to agree, so floors stay comparable.
    pub residents: usize,
    /// Interest-curve knot count (fixed by the market; gated likewise).
    pub knots: usize,
    /// How many interest knots were lattice-free for this book.
    pub free_knots: usize,
    /// Mean affected-set size over the measured off-lattice ticks.
    pub mean_affected: f64,
    /// Off-lattice ticks/s over full reprices/s — the headline ratio.
    pub incremental_speedup: f64,
    /// The speedup floor this report is gated against
    /// ([`MIN_TICK_SPEEDUP`]).
    pub min_tick_speedup: f64,
    /// Stored spreads that differed bitwise from a post-storm full
    /// reprice. Must be zero: the whole point of the arrangement.
    pub bit_mismatches: u64,
    /// True when no measured tick degenerated into a zero-delta no-op,
    /// no tick was rejected, and the explicit zero-delta probe reported
    /// `zero_delta` with an empty affected set and no deltas.
    pub zero_delta_clean: bool,
    /// All measured rows, in a stable order.
    pub rows: Vec<TickStormRow>,
}

impl TickStormReport {
    /// Look a row up by its stable name.
    pub fn find(&self, name: &str) -> Option<&TickStormRow> {
        self.rows.iter().find(|r| r.name == name)
    }

    /// Serialise to the versioned JSON schema.
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("schema_version", Json::Number(self.schema_version as f64)),
            ("seed", Json::Number(self.seed as f64)),
            ("residents", Json::Number(self.residents as f64)),
            ("knots", Json::Number(self.knots as f64)),
            ("free_knots", Json::Number(self.free_knots as f64)),
            ("mean_affected", Json::Number(self.mean_affected)),
            ("incremental_speedup", Json::Number(self.incremental_speedup)),
            ("min_tick_speedup", Json::Number(self.min_tick_speedup)),
            ("bit_mismatches", Json::Number(self.bit_mismatches as f64)),
            ("zero_delta_clean", Json::Bool(self.zero_delta_clean)),
            (
                "rows",
                Json::Array(
                    self.rows
                        .iter()
                        .map(|r| {
                            Json::object(vec![
                                ("name", Json::Str(r.name.clone())),
                                ("per_second", Json::Number(r.per_second)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Pretty-printed JSON document (stable: object keys are sorted).
    pub fn pretty(&self) -> String {
        self.to_json().pretty()
    }

    /// Parse a serialised report, validating the schema version.
    pub fn from_json(value: &Json) -> Result<Self, String> {
        let num = |key: &str| -> Result<f64, String> {
            value
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("tick-storm report missing numeric field '{key}'"))
        };
        let schema_version = num("schema_version")? as u64;
        if schema_version != SCHEMA_VERSION {
            return Err(format!(
                "tick-storm schema version {schema_version} != supported {SCHEMA_VERSION} — regenerate the baseline"
            ));
        }
        let zero_delta_clean = match value.get("zero_delta_clean") {
            Some(Json::Bool(b)) => *b,
            _ => return Err("tick-storm report missing boolean 'zero_delta_clean'".to_string()),
        };
        let rows = value
            .get("rows")
            .and_then(Json::as_array)
            .ok_or_else(|| "tick-storm report missing 'rows' array".to_string())?
            .iter()
            .map(|row| {
                let name = row
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| "tick-storm row missing 'name'".to_string())?;
                let per_second = row
                    .get("per_second")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| "tick-storm row missing 'per_second'".to_string())?;
                Ok(TickStormRow { name: name.to_string(), per_second })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(TickStormReport {
            schema_version,
            seed: num("seed")? as u64,
            residents: num("residents")? as usize,
            knots: num("knots")? as usize,
            free_knots: num("free_knots")? as usize,
            mean_affected: num("mean_affected")?,
            incremental_speedup: num("incremental_speedup")?,
            min_tick_speedup: num("min_tick_speedup")?,
            bit_mismatches: num("bit_mismatches")? as u64,
            zero_delta_clean,
            rows,
        })
    }

    /// Parse from JSON text.
    pub fn parse(text: &str) -> Result<Self, String> {
        Self::from_json(&crate::json::parse(text)?)
    }
}

/// Time repeated passes of `pass` after one untimed warm-up, until at
/// least `min_sample` elapsed *and* [`MIN_SAMPLE_ITERS`] passes ran.
/// Returns passes per second.
fn measure(mut pass: impl FnMut(), min_sample: Duration) -> f64 {
    pass();
    let start = Instant::now();
    let mut iters = 0u32;
    loop {
        pass();
        iters += 1;
        let elapsed = start.elapsed();
        if iters >= MIN_SAMPLE_ITERS && elapsed >= min_sample {
            return f64::from(iters) / elapsed.as_secs_f64().max(f64::MIN_POSITIVE);
        }
    }
}

/// Measure a tick storm with the default sample window.
pub fn run(seed: u64, residents: usize) -> TickStormReport {
    run_with(seed, residents, DEFAULT_MIN_SAMPLE)
}

/// As [`run`], with an explicit minimum sample window (tests use a tiny
/// window; CI uses the default).
pub fn run_with(seed: u64, residents: usize, min_sample: Duration) -> TickStormReport {
    assert!(residents >= 1, "need at least one resident option");
    let market = MarketData::paper_workload(seed);
    let options = PortfolioGenerator::new(seed).portfolio(residents);
    let mut engine = IncrementalEngine::new(market);
    engine.insert_batch(&options);

    let interest_tenors: Vec<f64> = engine.tenors(CurveKind::Interest).to_vec();
    let knots = interest_tenors.len();
    let mut free = engine.portfolio().lattice_free_interest_knots(&interest_tenors);
    let free_knots = free.len();
    if free.is_empty() {
        // Degenerate book (every knot shares a lattice read): fall back
        // to the last knot so the storm still runs; the speedup gate
        // will report the honest (poor) ratio.
        free.push(knots - 1);
    }

    let full_passes = measure(
        || {
            let _ = engine.full_reprice();
        },
        min_sample,
    );

    // Off-lattice single-point interest ticks, cycling the free knots.
    // The value factor grows with a global counter, so no tick ever
    // re-publishes the value already at its knot (which would be a
    // zero-delta no-op and inflate the rate).
    let base: Vec<f64> =
        free.iter().map(|&k| engine.curve_value(CurveKind::Interest, k).unwrap_or(0.0)).collect();
    let mut n = 0u64;
    let mut dirty_ticks = 0u64;
    let mut affected_sum = 0u64;
    let mut measured_ticks = 0u64;
    let off_lattice = measure(
        || {
            let slot = (n % free.len() as u64) as usize;
            let value = base[slot] * (1.0 + 1e-9 * (n + 1) as f64) + 1e-12;
            n += 1;
            match engine.apply_tick(CurveTick {
                curve: CurveKind::Interest,
                knot: free[slot],
                value,
            }) {
                Ok(report) => {
                    if report.zero_delta {
                        dirty_ticks += 1;
                    }
                    affected_sum += report.affected as u64;
                    measured_ticks += 1;
                }
                Err(_) => dirty_ticks += 1,
            }
        },
        min_sample,
    );

    // Hot hazard ticks at the middle knot: the prefix window covers
    // most of the book, the worst case for any invalidation scheme.
    let hazard_mid = engine.tenors(CurveKind::Hazard).len() / 2;
    let hazard_base = engine.curve_value(CurveKind::Hazard, hazard_mid).unwrap_or(0.01);
    let mut hn = 0u64;
    let hazard_rate = measure(
        || {
            let value = hazard_base * (1.0 + 1e-9 * (hn + 1) as f64) + 1e-12;
            hn += 1;
            match engine.apply_tick(CurveTick { curve: CurveKind::Hazard, knot: hazard_mid, value })
            {
                Ok(report) => {
                    if report.zero_delta {
                        dirty_ticks += 1;
                    }
                }
                Err(_) => dirty_ticks += 1,
            }
        },
        min_sample,
    );

    // Bitwise cleanliness after the whole storm: stored spreads vs a
    // fresh full reprice, compared as raw bits.
    let stored = engine.spreads();
    let full = engine.full_reprice();
    let bit_mismatches = stored.iter().zip(&full).filter(|(a, b)| a != b).count() as u64
        + stored.len().abs_diff(full.len()) as u64;

    // Zero-delta probe: re-publishing the current value must advance the
    // epoch without touching anything.
    let probe_value = engine.curve_value(CurveKind::Interest, 0).unwrap_or(0.0);
    let probe_clean = match engine.apply_tick(CurveTick {
        curve: CurveKind::Interest,
        knot: 0,
        value: probe_value,
    }) {
        Ok(report) => report.zero_delta && report.affected == 0 && report.deltas.is_empty(),
        Err(_) => false,
    };

    TickStormReport {
        schema_version: SCHEMA_VERSION,
        seed,
        residents,
        knots,
        free_knots,
        mean_affected: affected_sum as f64 / (measured_ticks as f64).max(1.0),
        incremental_speedup: off_lattice / full_passes,
        min_tick_speedup: MIN_TICK_SPEEDUP,
        bit_mismatches,
        zero_delta_clean: probe_clean && dirty_ticks == 0,
        rows: vec![
            TickStormRow { name: "full/reprice".to_string(), per_second: full_passes },
            TickStormRow {
                name: "incremental/off-lattice-1pt".to_string(),
                per_second: off_lattice,
            },
            TickStormRow { name: "incremental/hazard-mid".to_string(), per_second: hazard_rate },
        ],
    }
}

/// Gate `current` against `baseline`: one message per problem (empty =
/// pass). Per-row rates may not drop below `baseline·(1−tolerance)` and
/// the row set, resident count and knot count may not drift; the
/// headline speedup must clear the baseline's recorded floor and the
/// run must be bitwise clean — all three checked without tolerance.
pub fn compare(
    baseline: &TickStormReport,
    current: &TickStormReport,
    tolerance: f64,
) -> Vec<String> {
    let mut problems = Vec::new();
    if baseline.schema_version != current.schema_version {
        problems.push(format!(
            "schema version mismatch: baseline {} vs current {}",
            baseline.schema_version, current.schema_version
        ));
    }
    if baseline.residents != current.residents {
        problems.push(format!(
            "resident book changed: baseline {} vs current {} options — floors are not comparable",
            baseline.residents, current.residents
        ));
    }
    if baseline.knots != current.knots {
        problems.push(format!(
            "knot count changed: baseline {} vs current {} — floors are not comparable",
            baseline.knots, current.knots
        ));
    }
    for base in &baseline.rows {
        let Some(cur) = current.find(&base.name) else {
            problems.push(format!("row '{}' missing from current run", base.name));
            continue;
        };
        if base.per_second > 0.0 && cur.per_second < base.per_second * (1.0 - tolerance) {
            problems.push(format!(
                "{}: rate regressed {:.1} -> {:.1} per second (tolerance {:.0}%)",
                base.name,
                base.per_second,
                cur.per_second,
                tolerance * 100.0
            ));
        }
    }
    for cur in &current.rows {
        if baseline.find(&cur.name).is_none() {
            problems.push(format!(
                "row '{}' not in baseline — regenerate results/tick_storm_baseline.json",
                cur.name
            ));
        }
    }
    if current.incremental_speedup < baseline.min_tick_speedup {
        problems.push(format!(
            "incremental speedup {:.1}x fell below the required {:.1}x floor",
            current.incremental_speedup, baseline.min_tick_speedup
        ));
    }
    if current.bit_mismatches != 0 {
        problems.push(format!(
            "{} stored spreads differ bitwise from a full reprice — incremental state corrupt",
            current.bit_mismatches
        ));
    }
    if !current.zero_delta_clean {
        problems.push(
            "zero-delta contract violated: a no-op tick invalidated options or a measured \
             tick degenerated"
                .to_string(),
        );
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_run() -> TickStormReport {
        // Tiny book and window: a plumbing test, not a benchmark.
        run_with(11, 512, Duration::from_millis(1))
    }

    #[test]
    fn rows_ratio_and_cleanliness_are_populated() {
        let r = quick_run();
        for name in ["full/reprice", "incremental/off-lattice-1pt", "incremental/hazard-mid"] {
            let row = r.find(name).unwrap_or_else(|| panic!("missing row {name}"));
            assert!(row.per_second > 0.0, "{name} has zero rate");
        }
        assert!(r.incremental_speedup > 0.0);
        assert_eq!(r.min_tick_speedup, MIN_TICK_SPEEDUP);
        assert_eq!(r.bit_mismatches, 0, "storm left bit-divergent spreads");
        assert!(r.zero_delta_clean, "zero-delta contract violated");
        assert!(r.free_knots > 0, "paper curves should have lattice-free knots");
        assert_eq!(r.residents, 512);
        assert_eq!(r.knots, 1024);
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = quick_run();
        let back = match TickStormReport::parse(&r.pretty()) {
            Ok(b) => b,
            Err(e) => panic!("parse own output: {e}"),
        };
        assert_eq!(back, r);
    }

    #[test]
    fn wrong_schema_version_is_rejected() {
        let mut r = quick_run();
        r.schema_version = SCHEMA_VERSION + 1;
        let err = match TickStormReport::parse(&r.pretty()) {
            Ok(_) => panic!("stale schema must be rejected"),
            Err(e) => e,
        };
        assert!(err.contains("regenerate the baseline"), "{err}");
    }

    #[test]
    fn compare_passes_identical_clean_runs_above_the_floor() {
        let mut r = quick_run();
        r.incremental_speedup = MIN_TICK_SPEEDUP + 50.0; // decouple from tiny-run noise
        assert_eq!(compare(&r, &r, DEFAULT_TICK_TOLERANCE), Vec::<String>::new());
    }

    #[test]
    fn compare_flags_every_gate_axis() {
        let mut base = quick_run();
        base.incremental_speedup = MIN_TICK_SPEEDUP + 50.0;
        let mut bad = base.clone();
        bad.rows[1].per_second = base.rows[1].per_second * 0.4;
        bad.rows.push(TickStormRow { name: "incremental/new".to_string(), per_second: 1.0 });
        bad.residents += 1;
        bad.knots += 1;
        bad.incremental_speedup = MIN_TICK_SPEEDUP - 1.0;
        bad.bit_mismatches = 3;
        bad.zero_delta_clean = false;
        let problems = compare(&base, &bad, DEFAULT_TICK_TOLERANCE);
        assert!(problems.iter().any(|p| p.contains("rate regressed")), "{problems:?}");
        assert!(problems.iter().any(|p| p.contains("not in baseline")), "{problems:?}");
        assert!(problems.iter().any(|p| p.contains("resident book changed")), "{problems:?}");
        assert!(problems.iter().any(|p| p.contains("knot count changed")), "{problems:?}");
        assert!(problems.iter().any(|p| p.contains("fell below")), "{problems:?}");
        assert!(problems.iter().any(|p| p.contains("differ bitwise")), "{problems:?}");
        assert!(problems.iter().any(|p| p.contains("zero-delta contract")), "{problems:?}");
    }

    #[test]
    fn compare_flags_missing_row_and_tolerates_noise() {
        let mut base = quick_run();
        base.incremental_speedup = MIN_TICK_SPEEDUP + 50.0;
        let mut cur = base.clone();
        cur.rows.remove(0);
        let problems = compare(&base, &cur, DEFAULT_TICK_TOLERANCE);
        assert!(problems.iter().any(|p| p.contains("missing from current")), "{problems:?}");

        let mut wiggle = base.clone();
        for row in &mut wiggle.rows {
            row.per_second *= 1.0 - DEFAULT_TICK_TOLERANCE + 0.05;
        }
        assert_eq!(compare(&base, &wiggle, DEFAULT_TICK_TOLERANCE), Vec::<String>::new());
    }
}
