//! `RunMetrics` — the one record every backend's run reduces to.
//!
//! The FPGA simulator, the multi-engine deployment, the streaming
//! deployment and the CPU model all report performance in their own
//! shapes ([`cds_engine::report::EngineRunReport`],
//! [`cds_engine::multi::MultiEngineReport`],
//! [`cds_engine::streaming::StreamingReport`], [`cds_cpu::CpuPerfModel`]
//! plus [`cds_cpu::CpuBatchStats`]). The bench harness flattens each into
//! this struct so one schema covers the whole ladder: throughput, cycle
//! counts, latency percentiles, utilisation, telemetry counters and the
//! modelled energy figures.

use crate::json::Json;
use cds_engine::config::EngineConfig;
use cds_engine::multi::MultiEngineReport;
use cds_engine::report::EngineRunReport;
use cds_engine::streaming::StreamingReport;
use cds_power::options_per_watt;

/// Unified metrics of one benchmarked run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMetrics {
    /// Stable identifier, e.g. `table1/vectorised` or `cpu/threads-8`.
    pub name: String,
    /// Which backend produced the run: `fpga-sim`, `streaming-sim` or
    /// `cpu-model`.
    pub backend: String,
    /// Options priced.
    pub options: u64,
    /// Throughput — the paper's headline metric.
    pub options_per_second: f64,
    /// Kernel cycles (0 for the modelled CPU backend, which has no cycle
    /// notion).
    pub kernel_cycles: u64,
    /// Median per-option latency in microseconds (0 for batch runs,
    /// where per-option latency is not observable).
    pub p50_latency_us: f64,
    /// 99th-percentile latency in microseconds.
    pub p99_latency_us: f64,
    /// Worst-case latency in microseconds.
    pub max_latency_us: f64,
    /// Mean busy fraction across traced processes (0 when untraced).
    pub mean_utilisation: f64,
    /// Highest FIFO occupancy observed on any stream.
    pub occupancy_high_water: u64,
    /// Rejected stream pushes (scheduler-effort stall pressure).
    pub backpressure_events: u64,
    /// Dataflow region restarts paid during the run.
    pub region_restarts: u64,
    /// Modelled power draw in Watts.
    pub watts: f64,
    /// Modelled efficiency in options/Watt.
    pub options_per_watt: f64,
}

impl RunMetrics {
    /// Flatten a single-engine FPGA batch run.
    pub fn from_engine_report(name: &str, report: &EngineRunReport, watts: f64) -> Self {
        RunMetrics {
            name: name.to_string(),
            backend: "fpga-sim".to_string(),
            options: report.options() as u64,
            options_per_second: report.options_per_second,
            kernel_cycles: report.kernel_cycles,
            p50_latency_us: 0.0,
            p99_latency_us: 0.0,
            max_latency_us: 0.0,
            mean_utilisation: report.counters.mean_utilisation(),
            occupancy_high_water: report.counters.stream_occupancy_high_water as u64,
            backpressure_events: report.counters.backpressure_events,
            region_restarts: report.counters.region_restarts,
            watts,
            options_per_watt: options_per_watt(report.options_per_second, watts),
        }
    }

    /// Flatten a multi-engine deployment run.
    pub fn from_multi_report(name: &str, report: &MultiEngineReport, watts: f64) -> Self {
        RunMetrics {
            name: name.to_string(),
            backend: "fpga-sim".to_string(),
            options: report.spreads.len() as u64,
            options_per_second: report.options_per_second,
            kernel_cycles: report.counters.total_cycles,
            p50_latency_us: 0.0,
            p99_latency_us: 0.0,
            max_latency_us: 0.0,
            mean_utilisation: report.counters.mean_utilisation(),
            occupancy_high_water: report.counters.stream_occupancy_high_water as u64,
            backpressure_events: report.counters.backpressure_events,
            region_restarts: report.counters.region_restarts,
            watts,
            options_per_watt: options_per_watt(report.options_per_second, watts),
        }
    }

    /// Flatten a streaming run; the latency percentiles convert to
    /// microseconds under the engine clock.
    pub fn from_streaming_report(
        name: &str,
        report: &StreamingReport,
        config: &EngineConfig,
        watts: f64,
    ) -> Self {
        RunMetrics {
            name: name.to_string(),
            backend: "streaming-sim".to_string(),
            options: report.spreads.len() as u64,
            options_per_second: report.options_per_second,
            kernel_cycles: report.counters.total_cycles,
            p50_latency_us: report.p50_us(config),
            p99_latency_us: report.p99_us(config),
            max_latency_us: config.clock.seconds(report.max_cycles) * 1e6,
            mean_utilisation: report.counters.mean_utilisation(),
            occupancy_high_water: report.counters.stream_occupancy_high_water as u64,
            backpressure_events: report.counters.backpressure_events,
            region_restarts: report.counters.region_restarts,
            watts,
            options_per_watt: options_per_watt(report.options_per_second, watts),
        }
    }

    /// Flatten a modelled CPU run: throughput from the calibrated
    /// Cascade Lake model (deterministic — never wall clock), work
    /// accounting from the actual pricing pass.
    pub fn from_cpu_model(
        name: &str,
        options_per_second: f64,
        stats: &cds_cpu::CpuBatchStats,
        watts: f64,
    ) -> Self {
        RunMetrics {
            name: name.to_string(),
            backend: "cpu-model".to_string(),
            options: stats.options,
            options_per_second,
            kernel_cycles: 0,
            p50_latency_us: 0.0,
            p99_latency_us: 0.0,
            max_latency_us: 0.0,
            mean_utilisation: 0.0,
            occupancy_high_water: 0,
            backpressure_events: 0,
            region_restarts: 0,
            watts,
            options_per_watt: options_per_watt(options_per_second, watts),
        }
    }

    /// Serialise to the bench JSON schema.
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("name", Json::Str(self.name.clone())),
            ("backend", Json::Str(self.backend.clone())),
            ("options", Json::Number(self.options as f64)),
            ("options_per_second", Json::Number(self.options_per_second)),
            ("kernel_cycles", Json::Number(self.kernel_cycles as f64)),
            ("p50_latency_us", Json::Number(self.p50_latency_us)),
            ("p99_latency_us", Json::Number(self.p99_latency_us)),
            ("max_latency_us", Json::Number(self.max_latency_us)),
            ("mean_utilisation", Json::Number(self.mean_utilisation)),
            ("occupancy_high_water", Json::Number(self.occupancy_high_water as f64)),
            ("backpressure_events", Json::Number(self.backpressure_events as f64)),
            ("region_restarts", Json::Number(self.region_restarts as f64)),
            ("watts", Json::Number(self.watts)),
            ("options_per_watt", Json::Number(self.options_per_watt)),
        ])
    }

    /// Deserialise from the bench JSON schema.
    pub fn from_json(value: &Json) -> Result<Self, String> {
        let text = |key: &str| -> Result<String, String> {
            value
                .get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("metric missing string field '{key}'"))
        };
        let num = |key: &str| -> Result<f64, String> {
            value
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("metric missing numeric field '{key}'"))
        };
        Ok(RunMetrics {
            name: text("name")?,
            backend: text("backend")?,
            options: num("options")? as u64,
            options_per_second: num("options_per_second")?,
            kernel_cycles: num("kernel_cycles")? as u64,
            p50_latency_us: num("p50_latency_us")?,
            p99_latency_us: num("p99_latency_us")?,
            max_latency_us: num("max_latency_us")?,
            mean_utilisation: num("mean_utilisation")?,
            occupancy_high_water: num("occupancy_high_water")? as u64,
            backpressure_events: num("backpressure_events")? as u64,
            region_restarts: num("region_restarts")? as u64,
            watts: num("watts")?,
            options_per_watt: num("options_per_watt")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_cpu::CpuBatchStats;

    #[test]
    fn cpu_metrics_json_round_trip() {
        let stats = CpuBatchStats {
            options: 96,
            time_points: 96 * 22,
            fused_groups: 12,
            scalar_fallbacks: 0,
            threads: 8,
        };
        let m = RunMetrics::from_cpu_model("cpu/threads-8", 52_000.5, &stats, 87.25);
        let back = RunMetrics::from_json(&m.to_json()).expect("round trip");
        assert_eq!(back, m);
        assert!(m.options_per_watt > 0.0);
        assert_eq!(m.backend, "cpu-model");
    }

    #[test]
    fn from_json_reports_missing_fields() {
        let incomplete = Json::object(vec![("name", Json::Str("x".to_string()))]);
        let err = RunMetrics::from_json(&incomplete).unwrap_err();
        assert!(err.contains("backend"), "{err}");
    }
}
