//! Open-loop load generator for the `cds-server` serving front-end,
//! with an SLO gate.
//!
//! [`run`] boots an in-process [`cds_server`] instance on an ephemeral
//! port and drives it the way a quote consumer would: **open-loop**
//! exponential arrivals (requests are sent on schedule whether or not
//! earlier replies came back, so queueing delay is *measured*, not
//! hidden by coordinated omission), a **zipf-skewed portfolio** of
//! quote shapes (a few hot contracts, a long cold tail), **interleaved
//! curve ticks** republishing the market snapshot mid-run, and optional
//! **fault toggles** that kill and revive an engine shard while the
//! load is applied.
//!
//! Every request is timestamped at send and at reply; the report
//! carries the answered/priced/shed breakdown and the p50/p99/p999
//! latency quantiles. `cds-harness loadgen --check
//! results/server_slo_baseline.json` gates the run against committed
//! SLO ceilings (generous enough for CI-runner noise — the gate is for
//! "the server stopped answering" regressions, not microbenchmarking).

use crate::json::Json;
use cds_server::proto::{f64_to_wire, parse_response, Response};
use cds_server::server::{serve, ServerConfig, ServerError};
use dataflow_sim::fault::splitmix64;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::mpsc::channel;
use std::time::{Duration, Instant};

/// Version of the loadgen/SLO JSON schema.
pub const SCHEMA_VERSION: u64 = 1;

/// Default request count for a loadgen run.
pub const DEFAULT_REQUESTS: usize = 400;

/// Default open-loop arrival rate, requests per second.
pub const DEFAULT_RATE: f64 = 2_000.0;

/// Distinct quote shapes in the zipf portfolio.
const PORTFOLIO_SHAPES: usize = 16;

/// Zipf skew exponent for the portfolio draw.
const ZIPF_S: f64 = 1.1;

/// A curve tick is interleaved every this many requests.
const TICK_EVERY: usize = 97;

/// With faults enabled, shard 0 is killed after this fraction of the
/// run and revived at twice that point.
const KILL_AT_FRACTION: f64 = 1.0 / 3.0;

/// Loadgen run parameters.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// RNG seed (arrivals, portfolio draw, server boot epoch).
    pub seed: u64,
    /// Total requests to send.
    pub requests: usize,
    /// Open-loop arrival rate, requests/second.
    pub rate_per_s: f64,
    /// Engine shards to serve with.
    pub shards: usize,
    /// Kill/revive a shard mid-run.
    pub faults: bool,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            seed: crate::DEFAULT_SEED,
            requests: DEFAULT_REQUESTS,
            rate_per_s: DEFAULT_RATE,
            shards: 2,
            faults: true,
        }
    }
}

/// Latency quantiles of the priced replies, microseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyQuantiles {
    /// Median.
    pub p50_micros: u64,
    /// 99th percentile.
    pub p99_micros: u64,
    /// 99.9th percentile.
    pub p999_micros: u64,
}

/// Outcome of one loadgen run.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Schema version of the serialised form ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Seed the run derived from.
    pub seed: u64,
    /// Requests sent (excluding ticks and fault commands).
    pub sent: u64,
    /// Requests that came back priced.
    pub priced: u64,
    /// Requests shed by the ladder or admission control.
    pub shed: u64,
    /// Requests rejected (draining / reject rung).
    pub rejected: u64,
    /// Requests that came back as typed errors or deadline misses.
    pub errored: u64,
    /// Curve ticks interleaved.
    pub ticks: u64,
    /// Fault commands interleaved (kill + revive).
    pub faults: u64,
    /// Latency quantiles over priced replies.
    pub quantiles: LatencyQuantiles,
    /// Achieved send rate, requests/second.
    pub achieved_rate_per_s: f64,
    /// Worst degradation-ladder rung observed (0 = healthy).
    pub worst_rung: u64,
}

impl LoadgenReport {
    /// Every request got *some* reply (priced, shed, rejected or a
    /// typed error) — the server never went silent.
    pub fn answered(&self) -> u64 {
        self.priced + self.shed + self.rejected + self.errored
    }

    /// Serialise to the versioned JSON schema.
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("schema_version", Json::Number(self.schema_version as f64)),
            ("seed", Json::Number(self.seed as f64)),
            ("sent", Json::Number(self.sent as f64)),
            ("priced", Json::Number(self.priced as f64)),
            ("shed", Json::Number(self.shed as f64)),
            ("rejected", Json::Number(self.rejected as f64)),
            ("errored", Json::Number(self.errored as f64)),
            ("ticks", Json::Number(self.ticks as f64)),
            ("faults", Json::Number(self.faults as f64)),
            ("p50_micros", Json::Number(self.quantiles.p50_micros as f64)),
            ("p99_micros", Json::Number(self.quantiles.p99_micros as f64)),
            ("p999_micros", Json::Number(self.quantiles.p999_micros as f64)),
            ("achieved_rate_per_s", Json::Number(self.achieved_rate_per_s)),
            ("worst_rung", Json::Number(self.worst_rung as f64)),
        ])
    }

    /// Pretty-printed JSON document.
    pub fn pretty(&self) -> String {
        self.to_json().pretty()
    }
}

/// Committed SLO ceilings (`results/server_slo_baseline.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct SloBaseline {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Ceiling on the p50 of priced replies, microseconds.
    pub p50_micros_max: u64,
    /// Ceiling on the p99 of priced replies, microseconds.
    pub p99_micros_max: u64,
    /// Ceiling on the p999 of priced replies, microseconds.
    pub p999_micros_max: u64,
    /// Every sent request must be answered at least this fraction.
    pub min_answer_fraction: f64,
    /// At least this fraction of sent requests must come back priced.
    pub min_priced_fraction: f64,
}

impl SloBaseline {
    /// Parse from JSON text, validating the schema version.
    pub fn parse(text: &str) -> Result<Self, String> {
        let value = crate::json::parse(text)?;
        let num = |key: &str| -> Result<f64, String> {
            value
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("SLO baseline missing numeric field '{key}'"))
        };
        let schema_version = num("schema_version")? as u64;
        if schema_version != SCHEMA_VERSION {
            return Err(format!(
                "SLO schema version {schema_version} != supported {SCHEMA_VERSION} — regenerate the baseline"
            ));
        }
        Ok(SloBaseline {
            schema_version,
            p50_micros_max: num("p50_micros_max")? as u64,
            p99_micros_max: num("p99_micros_max")? as u64,
            p999_micros_max: num("p999_micros_max")? as u64,
            min_answer_fraction: num("min_answer_fraction")?,
            min_priced_fraction: num("min_priced_fraction")?,
        })
    }
}

/// Gate a run against the committed SLO ceilings. Returns the violated
/// SLOs; empty means the gate passes.
pub fn check_slo(baseline: &SloBaseline, report: &LoadgenReport) -> Vec<String> {
    let mut problems = Vec::new();
    let mut ceiling = |name: &str, got: u64, max: u64| {
        if got > max {
            problems.push(format!("{name} = {got}us exceeds the SLO ceiling of {max}us"));
        }
    };
    ceiling("p50", report.quantiles.p50_micros, baseline.p50_micros_max);
    ceiling("p99", report.quantiles.p99_micros, baseline.p99_micros_max);
    ceiling("p999", report.quantiles.p999_micros, baseline.p999_micros_max);
    let sent = report.sent.max(1) as f64;
    let answered = report.answered() as f64 / sent;
    if answered < baseline.min_answer_fraction {
        problems.push(format!(
            "answered fraction {answered:.4} below the SLO floor of {:.4} — the server went silent on {} request(s)",
            baseline.min_answer_fraction,
            report.sent - report.answered()
        ));
    }
    let priced = report.priced as f64 / sent;
    if priced < baseline.min_priced_fraction {
        problems.push(format!(
            "priced fraction {priced:.4} below the SLO floor of {:.4}",
            baseline.min_priced_fraction
        ));
    }
    problems
}

/// One zipf draw over `PORTFOLIO_SHAPES` ranks: inverse-CDF over the
/// truncated zeta weights, uniform input from [`splitmix64`].
fn zipf_rank(state: &mut u64) -> usize {
    *state = splitmix64(*state);
    let u = (*state >> 11) as f64 / (1u64 << 53) as f64;
    let weights: Vec<f64> = (1..=PORTFOLIO_SHAPES).map(|k| 1.0 / (k as f64).powf(ZIPF_S)).collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    for (i, w) in weights.iter().enumerate() {
        acc += w / total;
        if u < acc {
            return i;
        }
    }
    PORTFOLIO_SHAPES - 1
}

/// One exponential inter-arrival draw (seconds) at `rate_per_s`.
fn exp_interval(state: &mut u64, rate_per_s: f64) -> f64 {
    *state = splitmix64(*state);
    let u = ((*state >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
    -u.ln() / rate_per_s
}

fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Drive one open-loop run. Arrivals and the portfolio are seeded, but
/// latencies are wall-clock: two runs agree on *what* was sent, not on
/// how long the answers took.
pub fn run(config: &LoadgenConfig) -> Result<LoadgenReport, ServerError> {
    let handle =
        serve(ServerConfig { shards: config.shards, seed: config.seed, ..Default::default() })?;
    let stream = TcpStream::connect(handle.addr())?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);

    // Reply collector: timestamps every answer as it arrives so the
    // sender never blocks on the server (open loop).
    let (reply_tx, reply_rx) = channel::<(String, Instant)>();
    let collector = std::thread::spawn(move || {
        let mut reader = reader;
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => break,
                Ok(_) => {
                    if reply_tx.send((line.trim().to_string(), Instant::now())).is_err() {
                        break;
                    }
                }
            }
        }
    });

    let mut arrivals = config.seed ^ 0x9e37_79b9_7f4a_7c15;
    let mut portfolio = config.seed.rotate_left(17) ^ 0xbf58_476d_1ce4_e5b9;
    let kill_at = ((config.requests as f64) * KILL_AT_FRACTION) as usize;
    let revive_at = 2 * kill_at;
    let mut sent_at: HashMap<u64, Instant> = HashMap::new();
    let mut ticks = 0u64;
    let mut faults = 0u64;
    let started = Instant::now();
    let mut next_arrival = started;
    for id in 0..config.requests {
        next_arrival += Duration::from_secs_f64(exp_interval(&mut arrivals, config.rate_per_s));
        let now = Instant::now();
        if next_arrival > now {
            std::thread::sleep(next_arrival - now);
        }
        if config.faults && id == kill_at {
            writeln!(writer, "FAULT KILL 0")?;
            faults += 1;
        }
        if config.faults && id == revive_at {
            writeln!(writer, "FAULT REVIVE 0")?;
            faults += 1;
        }
        if id > 0 && id % TICK_EVERY == 0 {
            writeln!(writer, "TICK {}", config.seed + ticks + 1)?;
            ticks += 1;
        }
        let rank = zipf_rank(&mut portfolio);
        let maturity = 1.0 + rank as f64 * 0.5;
        let recovery = 0.15 + (rank % 5) as f64 * 0.1;
        let priority = if rank < 4 { "" } else { " LO" };
        sent_at.insert(id as u64, Instant::now());
        writeln!(
            writer,
            "QUOTE {id} {} Q {}{priority}",
            f64_to_wire(maturity),
            f64_to_wire(recovery)
        )?;
        writer.flush()?;
    }
    let elapsed = started.elapsed();

    // Collect until every request is answered or the server goes quiet.
    let mut latencies: Vec<u64> = Vec::with_capacity(config.requests);
    let (mut priced, mut shed, mut rejected, mut errored) = (0u64, 0u64, 0u64, 0u64);
    let mut worst_rung = 0u64;
    let mut answered = 0usize;
    while answered < config.requests {
        let Ok((line, at)) = reply_rx.recv_timeout(Duration::from_secs(5)) else {
            break; // silent server: the answered-fraction SLO will flag it
        };
        let Ok(resp) = parse_response(&line) else {
            errored += 1;
            answered += 1;
            continue;
        };
        match resp {
            Response::Quote(q) => {
                if let Some(t0) = sent_at.get(&q.id) {
                    latencies.push((at - *t0).as_micros() as u64);
                }
                priced += 1;
                answered += 1;
            }
            Response::Shed { rung, .. } => {
                worst_rung = worst_rung.max(rung.index() as u64);
                shed += 1;
                answered += 1;
            }
            Response::Reject { rung, .. } => {
                worst_rung = worst_rung.max(rung.index() as u64);
                rejected += 1;
                answered += 1;
            }
            Response::Error { .. } => {
                errored += 1;
                answered += 1;
            }
            // Acks for the interleaved ticks and fault toggles.
            Response::TickAck { .. } | Response::FaultAck { .. } => {}
            _ => {}
        }
    }
    handle.drain();
    let _ = handle.wait();
    drop(reply_rx);
    let _ = collector.join();

    latencies.sort_unstable();
    Ok(LoadgenReport {
        schema_version: SCHEMA_VERSION,
        seed: config.seed,
        sent: config.requests as u64,
        priced,
        shed,
        rejected,
        errored,
        ticks,
        faults,
        quantiles: LatencyQuantiles {
            p50_micros: quantile(&latencies, 0.50),
            p99_micros: quantile(&latencies, 0.99),
            p999_micros: quantile(&latencies, 0.999),
        },
        achieved_rate_per_s: config.requests as f64 / elapsed.as_secs_f64().max(1e-9),
        worst_rung,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let mut state = 7;
        let mut counts = [0usize; PORTFOLIO_SHAPES];
        for _ in 0..4000 {
            counts[zipf_rank(&mut state)] += 1;
        }
        assert!(counts[0] > counts[PORTFOLIO_SHAPES - 1] * 4, "{counts:?}");
    }

    #[test]
    fn small_run_answers_every_request() {
        let report =
            run(&LoadgenConfig { requests: 60, rate_per_s: 4_000.0, ..Default::default() })
                .expect("loadgen run");
        assert_eq!(report.answered(), report.sent, "{report:?}");
        assert!(report.priced > 0, "{report:?}");
        assert!(report.faults == 2, "{report:?}");
    }

    #[test]
    fn slo_gate_flags_each_ceiling() {
        let report = LoadgenReport {
            schema_version: SCHEMA_VERSION,
            seed: 1,
            sent: 100,
            priced: 40,
            shed: 10,
            rejected: 0,
            errored: 0,
            ticks: 0,
            faults: 0,
            quantiles: LatencyQuantiles { p50_micros: 10, p99_micros: 5_000, p999_micros: 9_000 },
            achieved_rate_per_s: 100.0,
            worst_rung: 1,
        };
        let baseline = SloBaseline {
            schema_version: SCHEMA_VERSION,
            p50_micros_max: 100,
            p99_micros_max: 1_000,
            p999_micros_max: 10_000,
            min_answer_fraction: 0.9,
            min_priced_fraction: 0.3,
        };
        let problems = check_slo(&baseline, &report);
        assert_eq!(problems.len(), 2, "{problems:?}");
        assert!(problems[0].contains("p99"), "{problems:?}");
        assert!(problems[1].contains("answered fraction"), "{problems:?}");
    }

    #[test]
    fn baseline_parse_round_trips() {
        let text = r#"{
            "schema_version": 1,
            "p50_micros_max": 50000,
            "p99_micros_max": 500000,
            "p999_micros_max": 2000000,
            "min_answer_fraction": 1.0,
            "min_priced_fraction": 0.5
        }"#;
        let parsed = SloBaseline::parse(text).expect("parse");
        assert_eq!(parsed.p99_micros_max, 500_000);
        let bad = text.replace("\"schema_version\": 1", "\"schema_version\": 99");
        assert!(SloBaseline::parse(&bad).expect_err("version gate").contains("regenerate"));
    }
}
