//! Open-loop load generator for the `cds-server` serving front-end,
//! with an SLO gate.
//!
//! [`run`] boots an in-process [`cds_server`] instance on an ephemeral
//! port and drives it the way a quote consumer would: **open-loop**
//! exponential arrivals (requests are sent on schedule whether or not
//! earlier replies came back, so queueing delay is *measured*, not
//! hidden by coordinated omission), a **zipf-skewed portfolio** of
//! quote shapes (a few hot contracts, a long cold tail), **interleaved
//! curve ticks** republishing the market snapshot mid-run, and optional
//! **fault toggles** that kill and revive an engine shard while the
//! load is applied.
//!
//! Every request is timestamped at send and at reply; the report
//! carries the answered/priced/shed breakdown and the p50/p99/p999
//! latency quantiles. `cds-harness loadgen --check
//! results/server_slo_baseline.json` gates the run against committed
//! SLO ceilings (generous enough for CI-runner noise — the gate is for
//! "the server stopped answering" regressions, not microbenchmarking).

use crate::json::Json;
use cds_cpu::engine::CpuCdsEngine;
use cds_quant::option::{CdsOption, MarketData, PaymentFrequency};
use cds_server::fuzz::fuzz_lines;
use cds_server::proto::{f64_to_wire, parse_response, Response};
use cds_server::server::{serve, ServerConfig, ServerError};
use cds_server::tenant::TenantLimits;
use dataflow_sim::fault::splitmix64;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::mpsc::channel;
use std::time::{Duration, Instant};

/// Version of the loadgen/SLO JSON schema.
pub const SCHEMA_VERSION: u64 = 1;

/// Default request count for a loadgen run.
pub const DEFAULT_REQUESTS: usize = 400;

/// Default open-loop arrival rate, requests per second.
pub const DEFAULT_RATE: f64 = 2_000.0;

/// Distinct quote shapes in the zipf portfolio.
const PORTFOLIO_SHAPES: usize = 16;

/// Zipf skew exponent for the portfolio draw.
const ZIPF_S: f64 = 1.1;

/// A curve tick is interleaved every this many requests.
const TICK_EVERY: usize = 97;

/// With faults enabled, shard 0 is killed after this fraction of the
/// run and revived at twice that point.
const KILL_AT_FRACTION: f64 = 1.0 / 3.0;

/// Loadgen run parameters.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// RNG seed (arrivals, portfolio draw, server boot epoch).
    pub seed: u64,
    /// Total requests to send.
    pub requests: usize,
    /// Open-loop arrival rate, requests/second.
    pub rate_per_s: f64,
    /// Engine shards to serve with.
    pub shards: usize,
    /// Kill/revive a shard mid-run.
    pub faults: bool,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            seed: crate::DEFAULT_SEED,
            requests: DEFAULT_REQUESTS,
            rate_per_s: DEFAULT_RATE,
            shards: 2,
            faults: true,
        }
    }
}

/// Latency quantiles of the priced replies, microseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyQuantiles {
    /// Median.
    pub p50_micros: u64,
    /// 99th percentile.
    pub p99_micros: u64,
    /// 99.9th percentile.
    pub p999_micros: u64,
}

/// Outcome of one loadgen run.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Schema version of the serialised form ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Seed the run derived from.
    pub seed: u64,
    /// Requests sent (excluding ticks and fault commands).
    pub sent: u64,
    /// Requests that came back priced.
    pub priced: u64,
    /// Requests shed by the ladder or admission control.
    pub shed: u64,
    /// Requests rejected (draining / reject rung).
    pub rejected: u64,
    /// Requests that came back as typed errors or deadline misses.
    pub errored: u64,
    /// Curve ticks interleaved.
    pub ticks: u64,
    /// Fault commands interleaved (kill + revive).
    pub faults: u64,
    /// Latency quantiles over priced replies.
    pub quantiles: LatencyQuantiles,
    /// Achieved send rate, requests/second.
    pub achieved_rate_per_s: f64,
    /// Worst degradation-ladder rung observed (0 = healthy).
    pub worst_rung: u64,
}

impl LoadgenReport {
    /// Every request got *some* reply (priced, shed, rejected or a
    /// typed error) — the server never went silent.
    pub fn answered(&self) -> u64 {
        self.priced + self.shed + self.rejected + self.errored
    }

    /// Serialise to the versioned JSON schema.
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("schema_version", Json::Number(self.schema_version as f64)),
            ("seed", Json::Number(self.seed as f64)),
            ("sent", Json::Number(self.sent as f64)),
            ("priced", Json::Number(self.priced as f64)),
            ("shed", Json::Number(self.shed as f64)),
            ("rejected", Json::Number(self.rejected as f64)),
            ("errored", Json::Number(self.errored as f64)),
            ("ticks", Json::Number(self.ticks as f64)),
            ("faults", Json::Number(self.faults as f64)),
            ("p50_micros", Json::Number(self.quantiles.p50_micros as f64)),
            ("p99_micros", Json::Number(self.quantiles.p99_micros as f64)),
            ("p999_micros", Json::Number(self.quantiles.p999_micros as f64)),
            ("achieved_rate_per_s", Json::Number(self.achieved_rate_per_s)),
            ("worst_rung", Json::Number(self.worst_rung as f64)),
        ])
    }

    /// Pretty-printed JSON document.
    pub fn pretty(&self) -> String {
        self.to_json().pretty()
    }
}

/// Committed SLO ceilings (`results/server_slo_baseline.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct SloBaseline {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Ceiling on the p50 of priced replies, microseconds.
    pub p50_micros_max: u64,
    /// Ceiling on the p99 of priced replies, microseconds.
    pub p99_micros_max: u64,
    /// Ceiling on the p999 of priced replies, microseconds.
    pub p999_micros_max: u64,
    /// Every sent request must be answered at least this fraction.
    pub min_answer_fraction: f64,
    /// At least this fraction of sent requests must come back priced.
    pub min_priced_fraction: f64,
}

impl SloBaseline {
    /// Parse from JSON text, validating the schema version.
    pub fn parse(text: &str) -> Result<Self, String> {
        let value = crate::json::parse(text)?;
        let num = |key: &str| -> Result<f64, String> {
            value
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("SLO baseline missing numeric field '{key}'"))
        };
        let schema_version = num("schema_version")? as u64;
        if schema_version != SCHEMA_VERSION {
            return Err(format!(
                "SLO schema version {schema_version} != supported {SCHEMA_VERSION} — regenerate the baseline"
            ));
        }
        Ok(SloBaseline {
            schema_version,
            p50_micros_max: num("p50_micros_max")? as u64,
            p99_micros_max: num("p99_micros_max")? as u64,
            p999_micros_max: num("p999_micros_max")? as u64,
            min_answer_fraction: num("min_answer_fraction")?,
            min_priced_fraction: num("min_priced_fraction")?,
        })
    }
}

/// Gate a run against the committed SLO ceilings. Returns the violated
/// SLOs; empty means the gate passes.
pub fn check_slo(baseline: &SloBaseline, report: &LoadgenReport) -> Vec<String> {
    let mut problems = Vec::new();
    let mut ceiling = |name: &str, got: u64, max: u64| {
        if got > max {
            problems.push(format!("{name} = {got}us exceeds the SLO ceiling of {max}us"));
        }
    };
    ceiling("p50", report.quantiles.p50_micros, baseline.p50_micros_max);
    ceiling("p99", report.quantiles.p99_micros, baseline.p99_micros_max);
    ceiling("p999", report.quantiles.p999_micros, baseline.p999_micros_max);
    let sent = report.sent.max(1) as f64;
    let answered = report.answered() as f64 / sent;
    if answered < baseline.min_answer_fraction {
        problems.push(format!(
            "answered fraction {answered:.4} below the SLO floor of {:.4} — the server went silent on {} request(s)",
            baseline.min_answer_fraction,
            report.sent - report.answered()
        ));
    }
    let priced = report.priced as f64 / sent;
    if priced < baseline.min_priced_fraction {
        problems.push(format!(
            "priced fraction {priced:.4} below the SLO floor of {:.4}",
            baseline.min_priced_fraction
        ));
    }
    problems
}

/// One zipf draw over `PORTFOLIO_SHAPES` ranks: inverse-CDF over the
/// truncated zeta weights, uniform input from [`splitmix64`].
fn zipf_rank(state: &mut u64) -> usize {
    *state = splitmix64(*state);
    let u = (*state >> 11) as f64 / (1u64 << 53) as f64;
    let weights: Vec<f64> = (1..=PORTFOLIO_SHAPES).map(|k| 1.0 / (k as f64).powf(ZIPF_S)).collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    for (i, w) in weights.iter().enumerate() {
        acc += w / total;
        if u < acc {
            return i;
        }
    }
    PORTFOLIO_SHAPES - 1
}

/// One exponential inter-arrival draw (seconds) at `rate_per_s`.
fn exp_interval(state: &mut u64, rate_per_s: f64) -> f64 {
    *state = splitmix64(*state);
    let u = ((*state >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
    -u.ln() / rate_per_s
}

pub(crate) fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Drive one open-loop run. Arrivals and the portfolio are seeded, but
/// latencies are wall-clock: two runs agree on *what* was sent, not on
/// how long the answers took.
pub fn run(config: &LoadgenConfig) -> Result<LoadgenReport, ServerError> {
    let handle =
        serve(ServerConfig { shards: config.shards, seed: config.seed, ..Default::default() })?;
    let stream = TcpStream::connect(handle.addr())?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);

    // Reply collector: timestamps every answer as it arrives so the
    // sender never blocks on the server (open loop).
    let (reply_tx, reply_rx) = channel::<(String, Instant)>();
    let collector = std::thread::spawn(move || {
        let mut reader = reader;
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => break,
                Ok(_) => {
                    if reply_tx.send((line.trim().to_string(), Instant::now())).is_err() {
                        break;
                    }
                }
            }
        }
    });

    let mut arrivals = config.seed ^ 0x9e37_79b9_7f4a_7c15;
    let mut portfolio = config.seed.rotate_left(17) ^ 0xbf58_476d_1ce4_e5b9;
    let kill_at = ((config.requests as f64) * KILL_AT_FRACTION) as usize;
    let revive_at = 2 * kill_at;
    let mut sent_at: HashMap<u64, Instant> = HashMap::new();
    let mut ticks = 0u64;
    let mut faults = 0u64;
    let started = Instant::now();
    let mut next_arrival = started;
    for id in 0..config.requests {
        next_arrival += Duration::from_secs_f64(exp_interval(&mut arrivals, config.rate_per_s));
        let now = Instant::now();
        if next_arrival > now {
            std::thread::sleep(next_arrival - now);
        }
        if config.faults && id == kill_at {
            writeln!(writer, "FAULT KILL 0")?;
            faults += 1;
        }
        if config.faults && id == revive_at {
            writeln!(writer, "FAULT REVIVE 0")?;
            faults += 1;
        }
        if id > 0 && id % TICK_EVERY == 0 {
            writeln!(writer, "TICK {}", config.seed + ticks + 1)?;
            ticks += 1;
        }
        let rank = zipf_rank(&mut portfolio);
        let maturity = 1.0 + rank as f64 * 0.5;
        let recovery = 0.15 + (rank % 5) as f64 * 0.1;
        let priority = if rank < 4 { "" } else { " LO" };
        sent_at.insert(id as u64, Instant::now());
        writeln!(
            writer,
            "QUOTE {id} {} Q {}{priority}",
            f64_to_wire(maturity),
            f64_to_wire(recovery)
        )?;
        writer.flush()?;
    }
    let elapsed = started.elapsed();

    // Collect until every request is answered or the server goes quiet.
    let mut latencies: Vec<u64> = Vec::with_capacity(config.requests);
    let (mut priced, mut shed, mut rejected, mut errored) = (0u64, 0u64, 0u64, 0u64);
    let mut worst_rung = 0u64;
    let mut answered = 0usize;
    while answered < config.requests {
        let Ok((line, at)) = reply_rx.recv_timeout(Duration::from_secs(5)) else {
            break; // silent server: the answered-fraction SLO will flag it
        };
        let Ok(resp) = parse_response(&line) else {
            errored += 1;
            answered += 1;
            continue;
        };
        match resp {
            Response::Quote(q) => {
                if let Some(t0) = sent_at.get(&q.id) {
                    latencies.push((at - *t0).as_micros() as u64);
                }
                priced += 1;
                answered += 1;
            }
            Response::Shed { rung, .. } => {
                worst_rung = worst_rung.max(rung.index() as u64);
                shed += 1;
                answered += 1;
            }
            Response::Reject { rung, .. } => {
                worst_rung = worst_rung.max(rung.index() as u64);
                rejected += 1;
                answered += 1;
            }
            Response::Error { .. } => {
                errored += 1;
                answered += 1;
            }
            // Acks for the interleaved ticks and fault toggles.
            Response::TickAck { .. } | Response::FaultAck { .. } => {}
            _ => {}
        }
    }
    handle.drain();
    let _ = handle.wait();
    drop(reply_rx);
    let _ = collector.join();

    latencies.sort_unstable();
    Ok(LoadgenReport {
        schema_version: SCHEMA_VERSION,
        seed: config.seed,
        sent: config.requests as u64,
        priced,
        shed,
        rejected,
        errored,
        ticks,
        faults,
        quantiles: LatencyQuantiles {
            p50_micros: quantile(&latencies, 0.50),
            p99_micros: quantile(&latencies, 0.99),
            p999_micros: quantile(&latencies, 0.999),
        },
        achieved_rate_per_s: config.requests as f64 / elapsed.as_secs_f64().max(1e-9),
        worst_rung,
    })
}

// ---------------------------------------------------------------------
// Abuser mode (`cds-harness loadgen --abuser`)
// ---------------------------------------------------------------------

/// Abuser tenant quota for `--abuser` runs, tokens per second. The flood
/// offers at least [`ABUSE_MIN_OFFERED_FACTOR`] times this.
const ABUSE_QUOTA_RATE: f64 = 100.0;

/// Abuser tenant bucket capacity for `--abuser` runs.
const ABUSE_QUOTA_BURST: f64 = 8.0;

/// Abuser tenant in-flight quota for `--abuser` runs.
const ABUSE_QUOTA_INFLIGHT: u64 = 8;

/// Pipelined quotes the abuser connection floods.
const ABUSE_FLOOD_REQUESTS: u64 = 3_000;

/// The flood must offer at least this multiple of the abuser's quota
/// rate, or the run was too slow to prove anything.
const ABUSE_MIN_OFFERED_FACTOR: f64 = 10.0;

/// Sequential victim round-trips per phase (solo, then under flood).
const ABUSE_VICTIM_TRIPS: usize = 150;

/// Slowloris connections opened against the reaper.
const ABUSE_SLOWLORIS_CONNS: usize = 2;

/// Wire-fuzz corpus size for the post-flood accounting check.
const ABUSE_FUZZ_LINES: usize = 200;

/// Request-line byte cap for `--abuser` runs (small enough that the
/// fuzz corpus exercises the oversize path).
const ABUSE_MAX_LINE: usize = 256;

/// Victim p99 under flood must stay within this factor of its solo p99…
const ABUSE_P99_FACTOR: f64 = 50.0;

/// …with an absolute floor so a microsecond-scale solo p99 doesn't turn
/// scheduler jitter into a gate failure.
const ABUSE_P99_FLOOR_MICROS: u64 = 10_000;

/// Outcome of one `--abuser` hostile-client run. Violations are the
/// gate: an empty list is a pass, anything else exits 1.
#[derive(Debug, Clone)]
pub struct AbuseReport {
    /// Schema version of the serialised form ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Seed the run derived from.
    pub seed: u64,
    /// Quotes the abuser tenant pipelined.
    pub abuser_sent: u64,
    /// Abuser quotes that came back priced (bounded by its quota).
    pub abuser_priced: u64,
    /// Abuser quotes throttled by the tenant bucket or quota.
    pub abuser_throttled: u64,
    /// Abuser quotes shed or rejected by the global ladder.
    pub abuser_shed: u64,
    /// Rate the flood actually offered, requests per second.
    pub abuser_offered_rate_per_s: f64,
    /// The quota rate the abuser tenant was registered with.
    pub abuser_quota_rate_per_s: f64,
    /// Victim round-trips per phase.
    pub victim_trips: u64,
    /// `THROTTLE` replies the victim saw (must be zero).
    pub victim_throttled: u64,
    /// `SHED`/`REJECT` replies the victim retried through.
    pub victim_sheds: u64,
    /// Victim p99 round-trip with the server to itself, microseconds.
    pub victim_solo_p99_micros: u64,
    /// Victim p99 round-trip while the abuser floods, microseconds.
    pub victim_flood_p99_micros: u64,
    /// Slowloris connections opened.
    pub slowloris_opened: u64,
    /// Slowloris connections the idle reaper closed.
    pub slowloris_reaped: u64,
    /// Fuzz lines that owed a reply.
    pub fuzz_errs_expected: u64,
    /// Typed `ERR` replies the fuzz corpus actually got.
    pub fuzz_errs_got: u64,
    /// Gate verdicts; empty means the bulkheads held.
    pub violations: Vec<String>,
}

impl AbuseReport {
    /// The gate: true when no isolation property was violated.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Serialise to the versioned JSON schema.
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("schema_version", Json::Number(self.schema_version as f64)),
            ("seed", Json::Number(self.seed as f64)),
            ("abuser_sent", Json::Number(self.abuser_sent as f64)),
            ("abuser_priced", Json::Number(self.abuser_priced as f64)),
            ("abuser_throttled", Json::Number(self.abuser_throttled as f64)),
            ("abuser_shed", Json::Number(self.abuser_shed as f64)),
            ("abuser_offered_rate_per_s", Json::Number(self.abuser_offered_rate_per_s)),
            ("abuser_quota_rate_per_s", Json::Number(self.abuser_quota_rate_per_s)),
            ("victim_trips", Json::Number(self.victim_trips as f64)),
            ("victim_throttled", Json::Number(self.victim_throttled as f64)),
            ("victim_sheds", Json::Number(self.victim_sheds as f64)),
            ("victim_solo_p99_micros", Json::Number(self.victim_solo_p99_micros as f64)),
            ("victim_flood_p99_micros", Json::Number(self.victim_flood_p99_micros as f64)),
            ("slowloris_opened", Json::Number(self.slowloris_opened as f64)),
            ("slowloris_reaped", Json::Number(self.slowloris_reaped as f64)),
            ("fuzz_errs_expected", Json::Number(self.fuzz_errs_expected as f64)),
            ("fuzz_errs_got", Json::Number(self.fuzz_errs_got as f64)),
            (
                "violations",
                Json::Array(self.violations.iter().map(|v| Json::Str(v.clone())).collect()),
            ),
        ])
    }

    /// Pretty-printed JSON document.
    pub fn pretty(&self) -> String {
        self.to_json().pretty()
    }
}

/// A blocking line-protocol client for the closed-loop phases.
pub(crate) struct LineClient {
    pub(crate) reader: BufReader<TcpStream>,
    pub(crate) writer: TcpStream,
}

impl LineClient {
    pub(crate) fn connect(addr: SocketAddr) -> Result<LineClient, String> {
        let stream = TcpStream::connect(addr).map_err(|e| e.to_string())?;
        stream.set_nodelay(true).map_err(|e| e.to_string())?;
        stream.set_read_timeout(Some(Duration::from_secs(10))).map_err(|e| e.to_string())?;
        let writer = stream.try_clone().map_err(|e| e.to_string())?;
        Ok(LineClient { reader: BufReader::new(stream), writer })
    }

    pub(crate) fn roundtrip(&mut self, line: &str) -> Result<Response, String> {
        writeln!(self.writer, "{line}").map_err(|e| e.to_string())?;
        self.writer.flush().map_err(|e| e.to_string())?;
        self.recv()
    }

    pub(crate) fn recv(&mut self) -> Result<Response, String> {
        let mut reply = String::new();
        self.reader.read_line(&mut reply).map_err(|e| e.to_string())?;
        if reply.is_empty() {
            return Err("connection closed".to_string());
        }
        parse_response(reply.trim()).map_err(|e| format!("bad reply `{reply}`: {e}"))
    }
}

/// One compliant priced round-trip: `SHED`/`THROTTLE` replies are
/// honored by sleeping the advertised hint and retrying, the way the
/// protocol contract asks. Returns the final-attempt latency plus how
/// many of each backoff reply were absorbed along the way.
pub(crate) struct Trip {
    pub(crate) bits: u64,
    pub(crate) micros: u64,
    pub(crate) throttles: u64,
    pub(crate) sheds: u64,
}

pub(crate) fn compliant_trip(client: &mut LineClient, id: u64) -> Result<Trip, String> {
    let line = format!("QUOTE {id} {} Q {}", f64_to_wire(5.0), f64_to_wire(0.4));
    let (mut throttles, mut sheds) = (0u64, 0u64);
    for _ in 0..200 {
        let t0 = Instant::now();
        match client.roundtrip(&line)? {
            Response::Quote(q) => {
                return Ok(Trip {
                    bits: q.spread_bps.to_bits(),
                    micros: t0.elapsed().as_micros() as u64,
                    throttles,
                    sheds,
                })
            }
            Response::Shed { retry_after_ms, .. } | Response::Reject { retry_after_ms, .. } => {
                sheds += 1;
                std::thread::sleep(Duration::from_millis(retry_after_ms.max(1)));
            }
            Response::Throttle { retry_after_ms, .. } => {
                throttles += 1;
                std::thread::sleep(Duration::from_millis(retry_after_ms.max(1)));
            }
            other => return Err(format!("unexpected reply to quote {id}: {other:?}")),
        }
    }
    Err(format!("quote {id} never priced after 200 compliant attempts"))
}

/// What the abuser's pipelined flood observed.
pub(crate) struct FloodOutcome {
    pub(crate) priced: u64,
    pub(crate) throttled: u64,
    pub(crate) shed: u64,
    pub(crate) retry_hint_positive: bool,
    pub(crate) duration: Duration,
}

/// Bind `tenant`, pipeline `requests` quotes without pacing, and drain
/// replies on a second thread until the trailing `PING` sentinel
/// returns. The drainer keeps the socket from exerting backpressure so
/// the flood is as hostile as a single connection can be.
pub(crate) fn flood_as_tenant(
    addr: SocketAddr,
    tenant: &str,
    requests: u64,
) -> Result<FloodOutcome, String> {
    let stream = TcpStream::connect(addr).map_err(|e| e.to_string())?;
    stream.set_nodelay(true).map_err(|e| e.to_string())?;
    stream.set_read_timeout(Some(Duration::from_secs(10))).map_err(|e| e.to_string())?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);

    writeln!(writer, "TENANT {tenant}").map_err(|e| e.to_string())?;
    writer.flush().map_err(|e| e.to_string())?;
    let mut line = String::new();
    reader.read_line(&mut line).map_err(|e| e.to_string())?;
    match parse_response(line.trim()) {
        Ok(Response::TenantAck { .. }) => {}
        other => return Err(format!("tenant bind failed: {other:?}")),
    }

    let started = Instant::now();
    let drainer = std::thread::spawn(move || {
        let (mut priced, mut throttled, mut shed) = (0u64, 0u64, 0u64);
        let mut retry_hint_positive = false;
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => break,
                Ok(_) => match parse_response(line.trim()) {
                    Ok(Response::Pong) => break,
                    Ok(Response::Quote(_)) => priced += 1,
                    Ok(Response::Throttle { retry_after_ms, .. }) => {
                        throttled += 1;
                        retry_hint_positive |= retry_after_ms > 0;
                    }
                    Ok(Response::Shed { .. }) | Ok(Response::Reject { .. }) => shed += 1,
                    _ => {}
                },
            }
        }
        (priced, throttled, shed, retry_hint_positive)
    });
    for id in 0..requests {
        writeln!(writer, "QUOTE {id} {} Q {}", f64_to_wire(5.0), f64_to_wire(0.4))
            .map_err(|e| e.to_string())?;
    }
    writeln!(writer, "PING").map_err(|e| e.to_string())?;
    writer.flush().map_err(|e| e.to_string())?;
    let (priced, throttled, shed, retry_hint_positive) =
        drainer.join().map_err(|_| "abuser reply drainer panicked".to_string())?;
    Ok(FloodOutcome { priced, throttled, shed, retry_hint_positive, duration: started.elapsed() })
}

/// Trickle one byte at a time without ever completing a line; returns
/// true when the server closes the connection (the reaper fired) inside
/// `window`.
pub(crate) fn slowloris_probe(addr: SocketAddr, window: Duration) -> bool {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return false;
    };
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let started = Instant::now();
    while started.elapsed() < window {
        if stream.write_all(b"Q").is_err() {
            return true;
        }
        let mut buf = [0u8; 128];
        if matches!(stream.read(&mut buf), Ok(0)) {
            return true;
        }
        std::thread::sleep(Duration::from_millis(60));
    }
    false
}

/// Drive the hostile-client run: a quota'd abuser tenant flooding at
/// ≥10x its rate, slowloris trickles against the idle reaper, a seeded
/// wire-fuzz corpus with 1:1 reply accounting, and a compliant victim
/// whose p99 must stay within a fixed factor of its solo value.
pub fn run_abuse(seed: u64) -> Result<AbuseReport, ServerError> {
    let io_err = |msg: String| ServerError::from(std::io::Error::other(msg));
    let abuser_limits = TenantLimits {
        rate_per_s: ABUSE_QUOTA_RATE,
        burst: ABUSE_QUOTA_BURST,
        max_inflight: ABUSE_QUOTA_INFLIGHT,
        weight: 1,
    };
    let handle = serve(ServerConfig {
        shards: 2,
        seed,
        read_timeout: Duration::from_millis(20),
        idle_timeout: Duration::from_millis(250),
        max_line_bytes: ABUSE_MAX_LINE,
        tenant_overrides: vec![("abuser".to_string(), abuser_limits)],
        ..Default::default()
    })?;
    let addr = handle.addr();
    let want = CpuCdsEngine::new(&MarketData::paper_workload(seed))
        .price(&CdsOption::new(5.0, PaymentFrequency::Quarterly, 0.4))
        .spread_bps
        .to_bits();
    let mut violations = Vec::new();

    // Slowloris trickles run across the whole scenario.
    let slowloris: Vec<_> = (0..ABUSE_SLOWLORIS_CONNS)
        .map(|_| std::thread::spawn(move || slowloris_probe(addr, Duration::from_secs(3))))
        .collect();

    // Victim solo phase: the latency baseline the flood is judged by.
    let mut victim = LineClient::connect(addr).map_err(io_err)?;
    let (mut victim_throttled, mut victim_sheds) = (0u64, 0u64);
    let mut mismatches = 0u64;
    let mut solo = Vec::with_capacity(ABUSE_VICTIM_TRIPS);
    for id in 0..ABUSE_VICTIM_TRIPS as u64 {
        let trip = compliant_trip(&mut victim, id).map_err(io_err)?;
        victim_throttled += trip.throttles;
        victim_sheds += trip.sheds;
        mismatches += u64::from(trip.bits != want);
        solo.push(trip.micros);
    }
    solo.sort_unstable();
    let victim_solo_p99 = quantile(&solo, 0.99);

    // Flood phase: abuser pipelines at full blast while the victim
    // keeps doing compliant round-trips on its own connection.
    let flooder = std::thread::spawn(move || flood_as_tenant(addr, "abuser", ABUSE_FLOOD_REQUESTS));
    std::thread::sleep(Duration::from_millis(5));
    let mut under_flood = Vec::with_capacity(ABUSE_VICTIM_TRIPS);
    for id in 0..ABUSE_VICTIM_TRIPS as u64 {
        let trip = compliant_trip(&mut victim, 10_000 + id).map_err(io_err)?;
        victim_throttled += trip.throttles;
        victim_sheds += trip.sheds;
        mismatches += u64::from(trip.bits != want);
        under_flood.push(trip.micros);
    }
    under_flood.sort_unstable();
    let victim_flood_p99 = quantile(&under_flood, 0.99);
    let flood = flooder
        .join()
        .map_err(|_| io_err("abuser flood thread panicked".to_string()))?
        .map_err(io_err)?;

    // Wire-fuzz phase on a fresh connection: 1:1 reply accounting.
    let mut fuzzer = LineClient::connect(addr).map_err(io_err)?;
    let corpus = fuzz_lines(seed, ABUSE_FUZZ_LINES, ABUSE_MAX_LINE);
    let fuzz_errs_expected = corpus.iter().filter(|l| l.expect_reply).count() as u64;
    for line in &corpus {
        fuzzer.writer.write_all(&line.bytes).map_err(|e| io_err(e.to_string()))?;
    }
    writeln!(fuzzer.writer, "PING").map_err(|e| io_err(e.to_string()))?;
    fuzzer.writer.flush().map_err(|e| io_err(e.to_string()))?;
    let mut fuzz_errs_got = 0u64;
    loop {
        match fuzzer.recv().map_err(io_err)? {
            Response::Pong => break,
            Response::Error { .. } => fuzz_errs_got += 1,
            other => {
                violations.push(format!("fuzz line produced a non-ERR reply: {other:?}"));
            }
        }
    }
    // The fuzzed connection must still price, bit-identically.
    let post_fuzz = compliant_trip(&mut fuzzer, 50_000).map_err(io_err)?;
    mismatches += u64::from(post_fuzz.bits != want);

    // Join the trickles (each resolves as soon as the reaper closes it
    // or its 3s window lapses), then take the server down.
    let slowloris_reaped =
        slowloris.into_iter().map(|t| t.join().unwrap_or(false)).filter(|&reaped| reaped).count()
            as u64;
    if slowloris_reaped < ABUSE_SLOWLORIS_CONNS as u64 {
        violations.push(format!(
            "only {slowloris_reaped}/{ABUSE_SLOWLORIS_CONNS} slowloris connections were reaped"
        ));
    }
    handle.drain();
    let _ = handle.wait();

    // Assemble the gate.
    let dur_s = flood.duration.as_secs_f64().max(1e-9);
    let offered = ABUSE_FLOOD_REQUESTS as f64 / dur_s;
    let quota_ceiling = 2.0 * (ABUSE_QUOTA_BURST + ABUSE_QUOTA_RATE * dur_s) + 16.0;
    if offered < ABUSE_MIN_OFFERED_FACTOR * ABUSE_QUOTA_RATE {
        violations.push(format!(
            "flood offered only {offered:.0}/s, below {:.0}x the {ABUSE_QUOTA_RATE:.0}/s quota — run proves nothing",
            ABUSE_MIN_OFFERED_FACTOR
        ));
    }
    if flood.throttled == 0 {
        violations.push("abuser flood was never throttled".to_string());
    }
    if !flood.retry_hint_positive {
        violations.push("no THROTTLE carried a positive retry_after_ms hint".to_string());
    }
    if (flood.priced as f64) > quota_ceiling {
        violations.push(format!(
            "abuser had {} quotes priced, above the quota ceiling of {quota_ceiling:.0}",
            flood.priced
        ));
    }
    if victim_throttled > 0 {
        violations.push(format!(
            "victim (default tenant) saw {victim_throttled} THROTTLE replies — bulkhead leaked"
        ));
    }
    if mismatches > 0 {
        violations.push(format!("{mismatches} victim spread(s) diverged from the CPU reference"));
    }
    let p99_ceiling =
        ((victim_solo_p99 as f64 * ABUSE_P99_FACTOR) as u64).max(ABUSE_P99_FLOOR_MICROS);
    if victim_flood_p99 > p99_ceiling {
        violations.push(format!(
            "victim p99 under flood {victim_flood_p99}us exceeds {p99_ceiling}us ({}x solo p99 of {victim_solo_p99}us)",
            ABUSE_P99_FACTOR
        ));
    }
    if fuzz_errs_got != fuzz_errs_expected {
        violations.push(format!(
            "fuzz reply accounting is not 1:1: expected {fuzz_errs_expected} ERRs, got {fuzz_errs_got}"
        ));
    }

    Ok(AbuseReport {
        schema_version: SCHEMA_VERSION,
        seed,
        abuser_sent: ABUSE_FLOOD_REQUESTS,
        abuser_priced: flood.priced,
        abuser_throttled: flood.throttled,
        abuser_shed: flood.shed,
        abuser_offered_rate_per_s: offered,
        abuser_quota_rate_per_s: ABUSE_QUOTA_RATE,
        victim_trips: ABUSE_VICTIM_TRIPS as u64,
        victim_throttled,
        victim_sheds,
        victim_solo_p99_micros: victim_solo_p99,
        victim_flood_p99_micros: victim_flood_p99,
        slowloris_opened: ABUSE_SLOWLORIS_CONNS as u64,
        slowloris_reaped,
        fuzz_errs_expected,
        fuzz_errs_got,
        violations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let mut state = 7;
        let mut counts = [0usize; PORTFOLIO_SHAPES];
        for _ in 0..4000 {
            counts[zipf_rank(&mut state)] += 1;
        }
        assert!(counts[0] > counts[PORTFOLIO_SHAPES - 1] * 4, "{counts:?}");
    }

    #[test]
    fn small_run_answers_every_request() {
        let report =
            run(&LoadgenConfig { requests: 60, rate_per_s: 4_000.0, ..Default::default() })
                .expect("loadgen run");
        assert_eq!(report.answered(), report.sent, "{report:?}");
        assert!(report.priced > 0, "{report:?}");
        assert!(report.faults == 2, "{report:?}");
    }

    #[test]
    fn slo_gate_flags_each_ceiling() {
        let report = LoadgenReport {
            schema_version: SCHEMA_VERSION,
            seed: 1,
            sent: 100,
            priced: 40,
            shed: 10,
            rejected: 0,
            errored: 0,
            ticks: 0,
            faults: 0,
            quantiles: LatencyQuantiles { p50_micros: 10, p99_micros: 5_000, p999_micros: 9_000 },
            achieved_rate_per_s: 100.0,
            worst_rung: 1,
        };
        let baseline = SloBaseline {
            schema_version: SCHEMA_VERSION,
            p50_micros_max: 100,
            p99_micros_max: 1_000,
            p999_micros_max: 10_000,
            min_answer_fraction: 0.9,
            min_priced_fraction: 0.3,
        };
        let problems = check_slo(&baseline, &report);
        assert_eq!(problems.len(), 2, "{problems:?}");
        assert!(problems[0].contains("p99"), "{problems:?}");
        assert!(problems[1].contains("answered fraction"), "{problems:?}");
    }

    #[test]
    fn baseline_parse_round_trips() {
        let text = r#"{
            "schema_version": 1,
            "p50_micros_max": 50000,
            "p99_micros_max": 500000,
            "p999_micros_max": 2000000,
            "min_answer_fraction": 1.0,
            "min_priced_fraction": 0.5
        }"#;
        let parsed = SloBaseline::parse(text).expect("parse");
        assert_eq!(parsed.p99_micros_max, 500_000);
        let bad = text.replace("\"schema_version\": 1", "\"schema_version\": 99");
        assert!(SloBaseline::parse(&bad).expect_err("version gate").contains("regenerate"));
    }
}
