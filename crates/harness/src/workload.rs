//! The paper's experimental workload: "for all experiments, 1024 interest
//! and hazard rates are used", processing a batch of CDS options.

use cds_quant::option::{CdsOption, MarketData, PaymentFrequency, PortfolioGenerator};
use cds_quant::QuantError;

/// A fully specified experiment workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The constant curve inputs (1024 knots each by default).
    pub market: MarketData<f64>,
    /// The option batch.
    pub options: Vec<CdsOption>,
    /// Seed it was generated from.
    pub seed: u64,
}

impl Workload {
    /// The calibration workload: uniform 5.5-year quarterly options (22
    /// time points each — the per-option work level at which the
    /// simulator reproduces the paper's Table I rates; DESIGN.md §5).
    pub fn paper(seed: u64, n_options: usize) -> Self {
        match Self::try_paper(seed, n_options) {
            Ok(w) => w,
            Err(e) => panic!("paper workload parameters are invalid: {e}"),
        }
    }

    /// As [`Workload::paper`], surfacing contract violations as
    /// [`QuantError`] instead of panicking.
    pub fn try_paper(seed: u64, n_options: usize) -> Result<Self, QuantError> {
        Ok(Workload {
            market: MarketData::paper_workload(seed),
            options: PortfolioGenerator::try_uniform(
                n_options,
                5.5,
                PaymentFrequency::Quarterly,
                0.40,
            )?,
            seed,
        })
    }

    /// A realistic mixed portfolio (maturities 1–10y, mostly quarterly).
    pub fn mixed(seed: u64, n_options: usize) -> Self {
        let options = PortfolioGenerator::new(seed).portfolio(n_options);
        debug_assert!(options.iter().all(|o| CdsOption::validated(
            o.maturity,
            o.frequency,
            o.recovery_rate
        )
        .is_ok()));
        Workload { market: MarketData::paper_workload(seed), options, seed }
    }

    /// Number of options in the batch.
    pub fn len(&self) -> usize {
        self.options.len()
    }

    /// True when the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.options.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_workload_shape() {
        let w = Workload::paper(1, 64);
        assert_eq!(w.len(), 64);
        assert_eq!(w.market.hazard.len(), 1024);
        assert!(w.options.iter().all(|o| o.maturity == 5.5));
    }

    #[test]
    fn mixed_workload_varies() {
        let w = Workload::mixed(1, 64);
        let first = w.options[0].maturity;
        assert!(w.options.iter().any(|o| o.maturity != first));
    }

    #[test]
    fn try_paper_matches_paper() {
        let a = Workload::paper(3, 8);
        let b = match Workload::try_paper(3, 8) {
            Ok(w) => w,
            Err(e) => panic!("paper parameters are valid: {e}"),
        };
        assert_eq!(a.options, b.options);
    }

    #[test]
    fn reproducible() {
        assert_eq!(Workload::paper(9, 8).options, Workload::paper(9, 8).options);
    }
}
