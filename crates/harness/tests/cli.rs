//! Black-box tests of the `cds-harness` binary's exit-code contract:
//! usage and IO errors exit 2 with an `error:` message, gate failures
//! exit 1, success exits 0. Uses fast subcommands only.

use std::process::Command;

fn harness() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cds-harness"))
}

#[test]
fn missing_command_exits_2() {
    let out = harness().output().expect("spawn harness");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("error:"));
}

#[test]
fn unknown_command_exits_2() {
    let out = harness().arg("no-such-command").output().expect("spawn harness");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn bad_flag_value_exits_2() {
    let out = harness().args(["fit", "--options", "minus-one"]).output().expect("spawn harness");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--options"));
}

#[test]
fn chaos_with_nonexistent_baseline_exits_2_fast() {
    // The baseline is read before the matrix runs, so a bad path fails
    // immediately instead of after the full fault sweep.
    let out = harness()
        .args(["chaos", "--check", "/nonexistent/dir/chaos_baseline.json"])
        .output()
        .expect("spawn harness");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot read baseline"), "{stderr}");
}

#[test]
fn bench_with_nonexistent_baseline_exits_2_fast() {
    let out = harness()
        .args(["bench", "--check", "/nonexistent/dir/bench_baseline.json"])
        .output()
        .expect("spawn harness");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot read baseline"), "{stderr}");
}

#[test]
fn bench_with_malformed_baseline_exits_2() {
    let dir = std::env::temp_dir().join("cds-harness-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("malformed.json");
    std::fs::write(&path, "{ not json").expect("write malformed baseline");
    let out = harness()
        .args(["bench", "--check", path.to_str().expect("utf8 path")])
        .output()
        .expect("spawn harness");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("malformed baseline"));
}

#[test]
fn throughput_with_nonexistent_baseline_exits_2_fast() {
    let out = harness()
        .args(["bench", "--throughput", "--check", "/nonexistent/dir/throughput_baseline.json"])
        .output()
        .expect("spawn harness");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read baseline"));
}

#[test]
fn throughput_zero_threads_exits_2() {
    let out = harness()
        .args(["bench", "--throughput", "--threads", "0"])
        .output()
        .expect("spawn harness");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--threads"));
}

/// A permissive baseline (floors near zero, no speedup requirement) that
/// any machine passes, and a sabotaged one (absurd floors) that none
/// can: exercises gate exit codes without depending on machine speed.
fn throughput_baseline(ops_floor: f64, min_speedup: f64) -> String {
    format!(
        concat!(
            "{{\"schema_version\": 1, \"seed\": 42, \"batch\": 64, ",
            "\"pinned_threads\": 2, \"lane_speedup_1t\": 5.0, ",
            "\"min_lane_speedup\": {}, \"rows\": [",
            "{{\"name\": \"cpu/scalar-1t\", \"options_per_second\": {}}}, ",
            "{{\"name\": \"cpu/lanes-1t\", \"options_per_second\": {}}}, ",
            "{{\"name\": \"cpu/lanes-mt\", \"options_per_second\": {}}}]}}"
        ),
        min_speedup, ops_floor, ops_floor, ops_floor
    )
}

#[test]
fn throughput_check_against_permissive_baseline_exits_0() {
    let dir = std::env::temp_dir().join("cds-harness-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("throughput-permissive.json");
    std::fs::write(&path, throughput_baseline(1.0, 0.0)).expect("write baseline");
    let out = harness()
        .args([
            "bench",
            "--throughput",
            "--options",
            "64",
            "--threads",
            "2",
            "--check",
            path.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("spawn harness");
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("PASS"));
}

#[test]
fn throughput_check_against_impossible_baseline_exits_1() {
    let dir = std::env::temp_dir().join("cds-harness-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("throughput-impossible.json");
    // No machine reaches 1e15 options/s; the gate must fail with exit 1.
    std::fs::write(&path, throughput_baseline(1.0e15, 0.0)).expect("write baseline");
    let out = harness()
        .args([
            "bench",
            "--throughput",
            "--options",
            "64",
            "--threads",
            "2",
            "--check",
            path.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("spawn harness");
    assert_eq!(out.status.code(), Some(1), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stderr).contains("throughput regressed"));
}

/// A tick-storm baseline with controllable floors: permissive
/// (`min_speedup` 0, rate floors near zero) passes on any machine,
/// impossible (`min_speedup` astronomically high) fails on all of them —
/// the ratio gate is machine-independent, so both verdicts are
/// deterministic.
fn tick_storm_baseline(rate_floor: f64, min_speedup: f64) -> String {
    format!(
        concat!(
            "{{\"schema_version\": 1, \"seed\": 42, \"residents\": 512, ",
            "\"knots\": 1024, \"free_knots\": 1, \"mean_affected\": 1.0, ",
            "\"incremental_speedup\": 1.0, \"min_tick_speedup\": {}, ",
            "\"bit_mismatches\": 0, \"zero_delta_clean\": true, \"rows\": [",
            "{{\"name\": \"full/reprice\", \"per_second\": {}}}, ",
            "{{\"name\": \"incremental/off-lattice-1pt\", \"per_second\": {}}}, ",
            "{{\"name\": \"incremental/hazard-mid\", \"per_second\": {}}}]}}"
        ),
        min_speedup, rate_floor, rate_floor, rate_floor
    )
}

#[test]
fn tick_storm_with_nonexistent_baseline_exits_2_fast() {
    let out = harness()
        .args(["bench", "--tick-storm", "--check", "/nonexistent/dir/tick_storm_baseline.json"])
        .output()
        .expect("spawn harness");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read baseline"));
}

#[test]
fn tick_storm_check_against_permissive_baseline_exits_0() {
    let dir = std::env::temp_dir().join("cds-harness-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("tick-storm-permissive.json");
    std::fs::write(&path, tick_storm_baseline(0.001, 0.0)).expect("write baseline");
    let out = harness()
        .args([
            "bench",
            "--tick-storm",
            "--options",
            "512",
            "--check",
            path.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("spawn harness");
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("PASS"));
}

#[test]
fn tick_storm_check_against_impossible_speedup_floor_exits_1() {
    let dir = std::env::temp_dir().join("cds-harness-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("tick-storm-impossible.json");
    // No machine reprices the book 1e9x slower than it ticks.
    std::fs::write(&path, tick_storm_baseline(0.001, 1.0e9)).expect("write baseline");
    let out = harness()
        .args([
            "bench",
            "--tick-storm",
            "--options",
            "512",
            "--check",
            path.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("spawn harness");
    assert_eq!(out.status.code(), Some(1), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stderr).contains("fell below"));
}

#[test]
fn fit_succeeds_with_exit_0() {
    let out = harness().args(["fit", "--options", "4"]).output().expect("spawn harness");
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("maximum engines"));
}

#[test]
fn replay_without_flags_exits_2() {
    // `replay` is meaningless with nothing to record and nothing to
    // check; that is a usage error, not a gate failure.
    let out = harness().arg("replay").output().expect("spawn harness");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--json") && stderr.contains("--check"), "{stderr}");
}

#[test]
fn replay_with_nonexistent_journal_exits_2() {
    let out = harness()
        .args(["replay", "--check", "/nonexistent/dir/replay.json"])
        .output()
        .expect("spawn harness");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read baseline"));
}

#[test]
fn replay_record_then_check_round_trips_with_exit_0() {
    let dir = std::env::temp_dir().join("cds-harness-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("replay-roundtrip.json");
    let rec = harness()
        .args(["replay", "--json", path.to_str().expect("utf8 path"), "--options", "6"])
        .output()
        .expect("spawn harness");
    assert_eq!(rec.status.code(), Some(0), "{}", String::from_utf8_lossy(&rec.stderr));
    let chk = harness()
        .args(["replay", "--check", path.to_str().expect("utf8 path")])
        .output()
        .expect("spawn harness");
    assert_eq!(chk.status.code(), Some(0), "{}", String::from_utf8_lossy(&chk.stderr));
    assert!(String::from_utf8_lossy(&chk.stdout).contains("PASS"));
}

#[test]
fn replay_check_of_tampered_journal_exits_1() {
    let dir = std::env::temp_dir().join("cds-harness-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("replay-tampered.json");
    let rec = harness()
        .args(["replay", "--json", path.to_str().expect("utf8 path"), "--options", "6"])
        .output()
        .expect("spawn harness");
    assert_eq!(rec.status.code(), Some(0), "{}", String::from_utf8_lossy(&rec.stderr));
    // Flip the low mantissa bit of the first journalled spread: the
    // determinism gate must catch a single-ulp divergence.
    let text = std::fs::read_to_string(&path).expect("read journal");
    let list = text.find("\"spread_bits\"").expect("journal has spread bits");
    let open = list + text[list..].find('[').expect("spread bits array");
    let at = open + text[open..].find('"').expect("first spread entry") + 1;
    let bits = u64::from_str_radix(&text[at..at + 16], 16).expect("hex bits");
    let tampered = text.replacen(&text[at..at + 16], &format!("{:016x}", bits ^ 1), 1);
    std::fs::write(&path, tampered).expect("write tampered journal");
    let chk = harness()
        .args(["replay", "--check", path.to_str().expect("utf8 path")])
        .output()
        .expect("spawn harness");
    assert_eq!(chk.status.code(), Some(1), "{}", String::from_utf8_lossy(&chk.stderr));
    assert!(String::from_utf8_lossy(&chk.stderr).contains("diverged"));
}

#[test]
fn csv_write_to_unwritable_dir_exits_2() {
    let out = harness()
        .args(["listing1", "--csv", "/proc/no-such-dir/csv"])
        .output()
        .expect("spawn harness");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("error:"));
}

#[test]
fn loadgen_with_nonexistent_baseline_exits_2_fast() {
    let out = harness()
        .args(["loadgen", "--check", "/nonexistent/dir/server_slo_baseline.json"])
        .output()
        .expect("spawn harness");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read baseline"));
}

#[test]
fn loadgen_bad_rate_exits_2() {
    let out = harness().args(["loadgen", "--rate", "-5"]).output().expect("spawn harness");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--rate"));
}

#[test]
fn loadgen_small_run_exits_0() {
    let out = harness()
        .args(["loadgen", "--options", "40", "--rate", "4000", "--no-faults"])
        .output()
        .expect("spawn harness");
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("priced"));
}

#[test]
fn loadgen_check_against_impossible_slo_exits_1() {
    let dir = std::env::temp_dir().join("cds-harness-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("slo-impossible.json");
    // A 0us p99 ceiling is unreachable; the SLO gate must exit 1.
    std::fs::write(
        &path,
        concat!(
            "{\"schema_version\": 1, \"p50_micros_max\": 0, \"p99_micros_max\": 0, ",
            "\"p999_micros_max\": 0, \"min_answer_fraction\": 1.0, ",
            "\"min_priced_fraction\": 0.0}"
        ),
    )
    .expect("write baseline");
    let out = harness()
        .args([
            "loadgen",
            "--options",
            "40",
            "--rate",
            "4000",
            "--no-faults",
            "--check",
            path.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("spawn harness");
    assert_eq!(out.status.code(), Some(1), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stderr).contains("SLO"));
}

#[test]
fn loadgen_malformed_baseline_exits_2() {
    let dir = std::env::temp_dir().join("cds-harness-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("slo-malformed.json");
    std::fs::write(&path, "{ not json").expect("write malformed baseline");
    let out = harness()
        .args(["loadgen", "--check", path.to_str().expect("utf8 path")])
        .output()
        .expect("spawn harness");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("malformed baseline"));
}

#[test]
fn server_chaos_with_nonexistent_baseline_exits_2_fast() {
    let out = harness()
        .args(["server-chaos", "--check", "/nonexistent/dir/server_chaos_baseline.json"])
        .output()
        .expect("spawn harness");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read baseline"));
}

#[test]
fn server_chaos_check_against_foreign_baseline_exits_1() {
    let dir = std::env::temp_dir().join("cds-harness-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("server-chaos-foreign.json");
    // A baseline naming a scenario the matrix does not run: the exact
    // verdict comparison must flag both directions and exit 1.
    std::fs::write(
        &path,
        concat!(
            "{\"schema_version\": 1, \"seed\": 42, \"cases\": [",
            "{\"name\": \"server/no-such-scenario\", \"degraded\": false, ",
            "\"shed_occurred\": false, \"spreads_match_clean\": true, ",
            "\"survived\": true}]}"
        ),
    )
    .expect("write baseline");
    let out = harness()
        .args(["server-chaos", "--check", path.to_str().expect("utf8 path")])
        .output()
        .expect("spawn harness");
    assert_eq!(out.status.code(), Some(1), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("no-such-scenario"), "{stderr}");
}

#[test]
fn loadgen_abuser_run_exits_0_with_bulkheads_held() {
    let out = harness().args(["loadgen", "--abuser"]).output().expect("spawn harness");
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("bulkheads held"), "{stdout}");
    assert!(stdout.contains("abuser throttled"), "{stdout}");
}

#[test]
fn isolation_with_nonexistent_baseline_exits_2_fast() {
    let out = harness()
        .args(["server-chaos", "--isolation", "--check", "/nonexistent/dir/tenant_isolation.json"])
        .output()
        .expect("spawn harness");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read baseline"));
}

#[test]
fn isolation_check_against_foreign_baseline_exits_1() {
    let dir = std::env::temp_dir().join("cds-harness-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("tenant-isolation-foreign.json");
    std::fs::write(
        &path,
        concat!(
            "{\"schema_version\": 1, \"seed\": 42, \"cases\": [",
            "{\"name\": \"server/no-such-isolation-scenario\", \"degraded\": false, ",
            "\"shed_occurred\": false, \"spreads_match_clean\": true, ",
            "\"survived\": true}]}"
        ),
    )
    .expect("write baseline");
    let out = harness()
        .args(["server-chaos", "--isolation", "--check", path.to_str().expect("utf8 path")])
        .output()
        .expect("spawn harness");
    assert_eq!(out.status.code(), Some(1), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("no-such-isolation-scenario"), "{stderr}");
}

#[test]
fn isolation_against_committed_baseline_exits_0() {
    let baseline =
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/tenant_isolation_baseline.json");
    let out = harness()
        .args(["server-chaos", "--isolation", "--check", baseline])
        .output()
        .expect("spawn harness");
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("PASS"));
}

#[test]
fn server_chaos_against_committed_baseline_exits_0() {
    let baseline = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/server_chaos_baseline.json");
    let out =
        harness().args(["server-chaos", "--check", baseline]).output().expect("spawn harness");
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("PASS"));
}

#[test]
fn storage_chaos_with_nonexistent_baseline_exits_2_fast() {
    let out = harness()
        .args(["storage-chaos", "--check", "/nonexistent/dir/storage_chaos_baseline.json"])
        .output()
        .expect("spawn harness");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read baseline"));
}

#[test]
fn storage_chaos_check_against_foreign_baseline_exits_1() {
    let dir = std::env::temp_dir().join("cds-harness-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("storage-chaos-foreign.json");
    // A baseline naming a scenario the matrix does not run: the exact
    // verdict comparison must flag both directions and exit 1.
    std::fs::write(
        &path,
        concat!(
            "{\"schema_version\": 1, \"seed\": 42, \"cases\": [",
            "{\"name\": \"storage/no-such-scenario\", ",
            "\"zero_silent_corruption\": true, \"ordering_held\": true, ",
            "\"survived\": true}]}"
        ),
    )
    .expect("write baseline");
    let out = harness()
        .args(["storage-chaos", "--check", path.to_str().expect("utf8 path")])
        .output()
        .expect("spawn harness");
    assert_eq!(out.status.code(), Some(1), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("no-such-scenario"), "{stderr}");
}

#[test]
fn storage_chaos_against_committed_baseline_exits_0() {
    let baseline =
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/storage_chaos_baseline.json");
    let out =
        harness().args(["storage-chaos", "--check", baseline]).output().expect("spawn harness");
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("PASS"));
}
