//! Black-box tests of the `cds-harness` binary's exit-code contract:
//! usage and IO errors exit 2 with an `error:` message, gate failures
//! exit 1, success exits 0. Uses fast subcommands only.

use std::process::Command;

fn harness() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cds-harness"))
}

#[test]
fn missing_command_exits_2() {
    let out = harness().output().expect("spawn harness");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("error:"));
}

#[test]
fn unknown_command_exits_2() {
    let out = harness().arg("no-such-command").output().expect("spawn harness");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn bad_flag_value_exits_2() {
    let out = harness().args(["fit", "--options", "minus-one"]).output().expect("spawn harness");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--options"));
}

#[test]
fn chaos_with_nonexistent_baseline_exits_2_fast() {
    // The baseline is read before the matrix runs, so a bad path fails
    // immediately instead of after the full fault sweep.
    let out = harness()
        .args(["chaos", "--check", "/nonexistent/dir/chaos_baseline.json"])
        .output()
        .expect("spawn harness");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot read baseline"), "{stderr}");
}

#[test]
fn bench_with_nonexistent_baseline_exits_2_fast() {
    let out = harness()
        .args(["bench", "--check", "/nonexistent/dir/bench_baseline.json"])
        .output()
        .expect("spawn harness");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot read baseline"), "{stderr}");
}

#[test]
fn bench_with_malformed_baseline_exits_2() {
    let dir = std::env::temp_dir().join("cds-harness-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("malformed.json");
    std::fs::write(&path, "{ not json").expect("write malformed baseline");
    let out = harness()
        .args(["bench", "--check", path.to_str().expect("utf8 path")])
        .output()
        .expect("spawn harness");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("malformed baseline"));
}

#[test]
fn fit_succeeds_with_exit_0() {
    let out = harness().args(["fit", "--options", "4"]).output().expect("spawn harness");
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("maximum engines"));
}

#[test]
fn csv_write_to_unwritable_dir_exits_2() {
    let out = harness()
        .args(["listing1", "--csv", "/proc/no-such-dir/csv"])
        .output()
        .expect("spawn harness");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("error:"));
}
