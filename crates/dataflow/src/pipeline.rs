//! Pipelined-loop timing algebra.
//!
//! HLS compiles a loop into a pipeline characterised by its **iteration
//! latency** `L` (cycles from an iteration entering to its result) and its
//! **initiation interval** `II` (cycles between consecutive iterations
//! entering). A loop with trip count `N` therefore takes
//! `L + (N − 1) · II` cycles — the formula Vitis HLS reports and the one
//! this module encodes, together with helpers for the nested and
//! sequential compositions the CDS engines are built from. These closed
//! forms double as the analytic cross-check for the discrete-event
//! simulator.

use crate::Cycle;

/// Timing description of one pipelined loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelinedLoop {
    /// Iteration latency in cycles (>= 1).
    pub latency: Cycle,
    /// Initiation interval in cycles (>= 1).
    pub ii: Cycle,
}

impl PipelinedLoop {
    /// Construct, clamping both parameters to at least one cycle.
    pub const fn new(ii: Cycle, latency: Cycle) -> Self {
        PipelinedLoop {
            ii: if ii == 0 { 1 } else { ii },
            latency: if latency == 0 { 1 } else { latency },
        }
    }

    /// A fully-pipelined loop (`II = 1`) with the given latency.
    pub const fn fully_pipelined(latency: Cycle) -> Self {
        PipelinedLoop::new(1, latency)
    }

    /// The paper's dependency-chained double-add accumulation: `II =
    /// latency = 7`, "only generating a value for one of every seven
    /// cycles".
    pub const fn dependency_chained_add() -> Self {
        PipelinedLoop::new(7, 7)
    }

    /// Total cycles to execute `trip_count` iterations:
    /// `L + (N − 1) · II`, or 0 for an empty loop.
    pub fn cycles(&self, trip_count: u64) -> Cycle {
        if trip_count == 0 {
            0
        } else {
            self.latency + (trip_count - 1) * self.ii
        }
    }

    /// Steady-state throughput in results per cycle.
    pub fn throughput(&self) -> f64 {
        1.0 / self.ii as f64
    }

    /// Cycles for a loop nest where this loop is the inner body executed
    /// once per outer iteration and the pipeline drains between outer
    /// iterations (the un-flattened nested loops of the baseline Xilinx
    /// engine: "the hazard calculation and linear interpolations involve
    /// nested loops \[and\] require many cycles to produce a result").
    pub fn nested_cycles(
        &self,
        outer_trips: u64,
        inner_trips_per_outer: impl Fn(u64) -> u64,
    ) -> Cycle {
        (0..outer_trips).map(|i| self.cycles(inner_trips_per_outer(i))).sum()
    }
}

/// Total cycles of a sequence of loops executed back-to-back (no
/// dataflow overlap) — the structure of the baseline engine's option
/// processing, where "the components making up the overall flowchart run
/// sequentially".
pub fn sequential(loops: &[(PipelinedLoop, u64)]) -> Cycle {
    loops.iter().map(|(l, n)| l.cycles(*n)).sum()
}

/// Steady-state cycles per item of a set of dataflow stages running
/// concurrently: the slowest stage dominates.
pub fn dataflow_bottleneck(per_item_cycles: &[Cycle]) -> Cycle {
    per_item_cycles.iter().copied().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_iteration_costs_latency() {
        let l = PipelinedLoop::new(1, 9);
        assert_eq!(l.cycles(1), 9);
    }

    #[test]
    fn empty_loop_is_free() {
        assert_eq!(PipelinedLoop::new(3, 8).cycles(0), 0);
    }

    #[test]
    fn fully_pipelined_is_latency_plus_n_minus_one() {
        let l = PipelinedLoop::fully_pipelined(7);
        assert_eq!(l.cycles(100), 7 + 99);
    }

    #[test]
    fn dependency_chained_add_matches_paper() {
        // "the pipelined loop had an II of seven": one value per 7 cycles.
        let l = PipelinedLoop::dependency_chained_add();
        assert_eq!(l.cycles(1024), 7 + 1023 * 7);
        assert!((l.throughput() - 1.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn listing1_speedup_is_about_seven() {
        // Breaking the dependency (II 7 → 1) speeds the long accumulation
        // by ~7× — the basis of the paper's optimised hazard stage.
        let naive = PipelinedLoop::dependency_chained_add();
        let fixed = PipelinedLoop::fully_pipelined(7);
        let n = 1024;
        let speedup = naive.cycles(n) as f64 / fixed.cycles(n) as f64;
        assert!(speedup > 6.5 && speedup <= 7.0, "speedup {speedup}");
    }

    #[test]
    fn clamping() {
        let l = PipelinedLoop::new(0, 0);
        assert_eq!(l.ii, 1);
        assert_eq!(l.latency, 1);
    }

    #[test]
    fn nested_loop_sums_inner_invocations() {
        let inner = PipelinedLoop::fully_pipelined(4);
        // Outer trip i has i+1 inner iterations: Σ (4 + i) for i in 0..3.
        let total = inner.nested_cycles(3, |i| i + 1);
        assert_eq!(total, (4) + (4 + 1) + (4 + 2));
    }

    #[test]
    fn sequential_composition_adds() {
        let a = PipelinedLoop::fully_pipelined(3);
        let b = PipelinedLoop::new(2, 5);
        assert_eq!(sequential(&[(a, 10), (b, 10)]), (3 + 9) + (5 + 9 * 2));
    }

    #[test]
    fn bottleneck_is_max() {
        assert_eq!(dataflow_bottleneck(&[5, 100, 7]), 100);
        assert_eq!(dataflow_bottleneck(&[]), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn cycles_monotone_in_trip_count(ii in 1u64..16, lat in 1u64..32, n in 0u64..1000) {
            let l = PipelinedLoop::new(ii, lat);
            prop_assert!(l.cycles(n + 1) > l.cycles(n) || n == 0 && l.cycles(1) >= l.cycles(0));
        }

        #[test]
        fn lower_ii_never_slower(ii in 2u64..16, lat in 1u64..32, n in 1u64..1000) {
            let slow = PipelinedLoop::new(ii, lat);
            let fast = PipelinedLoop::new(ii - 1, lat);
            prop_assert!(fast.cycles(n) <= slow.cycles(n));
        }

        #[test]
        fn sequential_equals_manual_sum(
            specs in proptest::collection::vec((1u64..8, 1u64..16, 0u64..50), 0..6)
        ) {
            let loops: Vec<(PipelinedLoop, u64)> =
                specs.iter().map(|&(ii, lat, n)| (PipelinedLoop::new(ii, lat), n)).collect();
            let manual: u64 = loops.iter().map(|(l, n)| l.cycles(*n)).sum();
            prop_assert_eq!(sequential(&loops), manual);
        }
    }
}
