//! Deterministic fault injection for dataflow simulations.
//!
//! A [`FaultPlan`] describes, up front and reproducibly, what should go
//! wrong during a run: stage stalls (modelled as extra latency on the
//! first N tokens of the stage's output stream), dropped or corrupted
//! stream tokens, and whole-region death at a given cycle (every process
//! whose name starts with a prefix halts, as when one engine of a
//! multi-engine deployment dies). Install a plan with
//! [`crate::graph::GraphBuilder::set_fault_plan`] *before* creating
//! streams; both schedulers consult it and count every injected fault in
//! [`FaultCounters`], which surfaces through
//! [`crate::graph::SimReport::faults`] and [`crate::trace::Counters`].
//!
//! Faults are one-shot: token indices are absolute positions in the
//! stream's push sequence and death cycles are absolute simulation
//! cycles, so the same plan against the same graph injects exactly the
//! same faults every run. When a plan is installed, a run that ends with
//! starved processes or undrained streams (work lost to injected faults)
//! terminates gracefully with a report instead of reporting a deadlock.

use crate::Cycle;
use std::any::Any;
use std::cell::RefCell;
use std::rc::Rc;

/// SplitMix64: the tiny, high-quality mixer used to derive deterministic
/// fault placements (token indices, death cycles) from a plan seed
/// without pulling in an RNG dependency.
#[must_use]
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Tally of faults injected (or, for region deaths, applied) during a
/// run. All zeros on a fault-free run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultCounters {
    /// Tokens delayed by an injected stage stall.
    pub stage_stalls: u64,
    /// Tokens silently discarded at a stream ingress.
    pub dropped_tokens: u64,
    /// Tokens mutated in flight.
    pub corrupted_tokens: u64,
    /// Dataflow regions killed mid-run.
    pub region_deaths: u64,
}

impl FaultCounters {
    /// Total faults of all kinds.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.stage_stalls + self.dropped_tokens + self.corrupted_tokens + self.region_deaths
    }

    /// True when at least one fault was injected.
    #[must_use]
    pub fn any(&self) -> bool {
        self.total() > 0
    }

    /// Fold another tally into this one (all fields add).
    pub fn absorb(&mut self, other: &FaultCounters) {
        self.stage_stalls += other.stage_stalls;
        self.dropped_tokens += other.dropped_tokens;
        self.corrupted_tokens += other.corrupted_tokens;
        self.region_deaths += other.region_deaths;
    }
}

/// Kind of an injected per-token fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Token delayed by a stage stall.
    Stall,
    /// Token silently discarded.
    Drop,
    /// Token mutated in flight.
    Corrupt,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::Stall => write!(f, "stall"),
            FaultKind::Drop => write!(f, "drop"),
            FaultKind::Corrupt => write!(f, "corrupt"),
        }
    }
}

/// One injected per-token fault, recorded with the stream and absolute
/// push index it hit — so survival reports can say *what* was damaged,
/// not just how much, and the engine layer can quarantine exactly the
/// affected options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// Name of the stream the fault fired on.
    pub stream: String,
    /// 0-based absolute push index of the affected token.
    pub token: u64,
    /// What was done to the token.
    pub kind: FaultKind,
    /// Identity of the option the token belonged to, when the plan has a
    /// registered extractor (see [`FaultPlan::identify`]) for the
    /// stream's payload type.
    pub opt_idx: Option<u32>,
}

impl std::fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}[{}]", self.kind, self.stream, self.token)?;
        if let Some(opt) = self.opt_idx {
            write!(f, " opt {opt}")?;
        }
        Ok(())
    }
}

#[derive(Debug, Clone)]
struct StallSpec {
    stream: String,
    extra_cycles: Cycle,
    tokens: u64,
}

#[derive(Debug, Clone)]
struct DropSpec {
    stream: String,
    nth: u64,
}

#[derive(Clone)]
struct CorruptSpec {
    stream: String,
    nth: u64,
    /// Type-erased `Rc<dyn Fn(T) -> T>`, downcast when the stream of
    /// matching payload type is created.
    mutator: Rc<dyn Any>,
}

#[derive(Debug, Clone)]
struct DeathSpec {
    prefix: String,
    at_cycle: Cycle,
}

/// A reproducible script of faults to inject into one simulation run.
///
/// Built with the fluent methods below; the `seed` is carried for
/// reporting and for callers deriving fault placements via
/// [`splitmix64`].
#[derive(Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    stalls: Vec<StallSpec>,
    drops: Vec<DropSpec>,
    corrupts: Vec<CorruptSpec>,
    deaths: Vec<DeathSpec>,
    /// Type-erased `Rc<dyn Fn(&T) -> Option<u32>>` identity extractors,
    /// tried in order when a stream of payload type `T` is created.
    idents: Vec<Rc<dyn Any>>,
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("seed", &self.seed)
            .field("stalls", &self.stalls)
            .field("drops", &self.drops)
            .field("corrupts", &self.corrupts.len())
            .field("deaths", &self.deaths)
            .field("idents", &self.idents.len())
            .finish()
    }
}

impl FaultPlan {
    /// Empty plan carrying a seed for deterministic fault placement.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, ..Default::default() }
    }

    /// The seed this plan was built with.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// True when the plan injects nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.stalls.is_empty()
            && self.drops.is_empty()
            && self.corrupts.is_empty()
            && self.deaths.is_empty()
    }

    /// Stall the producer of `stream` for its first `tokens` firings:
    /// each affected token becomes visible `extra_cycles` later than it
    /// would have. Models a stage transiently missing its initiation
    /// interval (e.g. a memory-port conflict burst).
    #[must_use]
    pub fn stall_stage(
        mut self,
        stream: impl Into<String>,
        extra_cycles: Cycle,
        tokens: u64,
    ) -> Self {
        self.stalls.push(StallSpec { stream: stream.into(), extra_cycles, tokens });
        self
    }

    /// Silently discard the `nth` token (0-based push index) pushed onto
    /// `stream`. Models a lossy link or a flushed FIFO.
    #[must_use]
    pub fn drop_nth(mut self, stream: impl Into<String>, nth: u64) -> Self {
        self.drops.push(DropSpec { stream: stream.into(), nth });
        self
    }

    /// Mutate the `nth` token pushed onto `stream` with `f`. The payload
    /// type must match the stream's payload type exactly, or the fault
    /// never attaches.
    #[must_use]
    pub fn corrupt_nth<T: 'static>(
        mut self,
        stream: impl Into<String>,
        nth: u64,
        f: impl Fn(T) -> T + 'static,
    ) -> Self {
        let mutator: Rc<dyn Fn(T) -> T> = Rc::new(f);
        self.corrupts.push(CorruptSpec { stream: stream.into(), nth, mutator: Rc::new(mutator) });
        self
    }

    /// Register an option-identity extractor for payload type `T`: when
    /// a stall/drop/corrupt fault fires on a stream carrying `T`, the
    /// recorded [`FaultEvent`] is tagged with the option the token
    /// belonged to. Identity is extracted *before* any corruption is
    /// applied, so a mutator that damages the identity field itself
    /// still yields the true owner.
    #[must_use]
    pub fn identify<T: 'static>(mut self, f: impl Fn(&T) -> Option<u32> + 'static) -> Self {
        let extractor: IdentFn<T> = Rc::new(f);
        self.idents.push(Rc::new(extractor));
        self
    }

    /// Kill every process whose name starts with `prefix` at `at_cycle`.
    /// Models a whole dataflow region (one engine of a multi-engine
    /// deployment) dying mid-run.
    #[must_use]
    pub fn kill_region(mut self, prefix: impl Into<String>, at_cycle: Cycle) -> Self {
        self.deaths.push(DeathSpec { prefix: prefix.into(), at_cycle });
        self
    }

    /// Instantiate the shared runtime state the schedulers and streams
    /// update during a run.
    pub(crate) fn runtime(&self) -> SharedFaults {
        Rc::new(RefCell::new(FaultState {
            counters: FaultCounters::default(),
            events: Vec::new(),
            deaths: self
                .deaths
                .iter()
                .map(|d| DeathState { prefix: d.prefix.clone(), at_cycle: d.at_cycle })
                .collect(),
        }))
    }

    /// Extract the push-time hooks for a stream named `name` carrying
    /// payload type `T`. Returns `None` when the plan does not touch
    /// that stream.
    pub(crate) fn hooks_for<T: 'static>(
        &self,
        name: &str,
        shared: &SharedFaults,
    ) -> Option<StreamFaultHooks<T>> {
        let stalls: Vec<(u64, Cycle)> = self
            .stalls
            .iter()
            .filter(|s| s.stream == name)
            .map(|s| (s.tokens, s.extra_cycles))
            .collect();
        let drops: Vec<u64> =
            self.drops.iter().filter(|d| d.stream == name).map(|d| d.nth).collect();
        let corrupts: CorruptHooks<T> = self
            .corrupts
            .iter()
            .filter(|c| c.stream == name)
            .filter_map(|c| {
                c.mutator.downcast_ref::<Rc<dyn Fn(T) -> T>>().map(|f| (c.nth, f.clone()))
            })
            .collect();
        if stalls.is_empty() && drops.is_empty() && corrupts.is_empty() {
            return None;
        }
        let ident = self.idents.iter().find_map(|i| i.downcast_ref::<IdentFn<T>>().cloned());
        Some(StreamFaultHooks { stalls, drops, corrupts, ident, shared: shared.clone() })
    }
}

/// Runtime fault state shared between the scheduler and every faulted
/// stream of one graph.
#[derive(Debug, Default)]
pub(crate) struct FaultState {
    pub(crate) counters: FaultCounters,
    pub(crate) events: Vec<FaultEvent>,
    pub(crate) deaths: Vec<DeathState>,
}

/// One pending region death.
#[derive(Debug, Clone)]
pub(crate) struct DeathState {
    pub(crate) prefix: String,
    pub(crate) at_cycle: Cycle,
}

pub(crate) type SharedFaults = Rc<RefCell<FaultState>>;

/// `(token index, mutator)` pairs attached to one stream.
pub(crate) type CorruptHooks<T> = Vec<(u64, Rc<dyn Fn(T) -> T>)>;

/// Extracts the owning option index from a stream payload.
pub(crate) type IdentFn<T> = Rc<dyn Fn(&T) -> Option<u32>>;

/// Push-time fault hooks attached to a single stream.
pub(crate) struct StreamFaultHooks<T> {
    /// `(first_n_tokens, extra_cycles)` stall windows.
    pub(crate) stalls: Vec<(u64, Cycle)>,
    /// 0-based push indices to discard.
    pub(crate) drops: Vec<u64>,
    /// 0-based push indices to mutate.
    pub(crate) corrupts: CorruptHooks<T>,
    /// Extracts the owning option index from a payload, for event tagging.
    pub(crate) ident: Option<IdentFn<T>>,
    pub(crate) shared: SharedFaults,
}

impl<T> std::fmt::Debug for StreamFaultHooks<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamFaultHooks")
            .field("stalls", &self.stalls)
            .field("drops", &self.drops)
            .field("corrupts", &self.corrupts.len())
            .finish()
    }
}

/// One serving-layer fault toggle: at (0-based) accepted-request index
/// `at_request`, shard `shard` is killed or revived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardToggle {
    /// 0-based index in the server's accepted-request sequence at which
    /// the toggle fires (request-indexed for the same reason token
    /// faults are push-indexed: absolute positions replay exactly).
    pub at_request: u64,
    /// Engine shard the toggle applies to.
    pub shard: usize,
    /// `true` kills the shard, `false` revives it.
    pub kill: bool,
}

/// Deterministic, request-indexed fault schedule for the serving layer.
///
/// The wall-clock world of `cds-server` cannot key faults on simulation
/// cycles the way [`FaultPlan`] does, so its chaos toggles are keyed on
/// the **accepted-request sequence number** instead — the serving
/// analogue of the absolute token index: the same plan against the same
/// request stream kills and revives the same shards at exactly the same
/// points, independent of scheduler timing. Placement helpers derive
/// their positions from a seed via [`splitmix64`], like every other
/// deterministic placement in this module.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceFaultPlan {
    toggles: Vec<ShardToggle>,
}

impl ServiceFaultPlan {
    /// Empty plan (no toggles).
    #[must_use]
    pub fn new() -> Self {
        ServiceFaultPlan::default()
    }

    /// Whether the plan holds no toggles at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.toggles.is_empty()
    }

    /// Kill `shard` when accepted request `at_request` arrives.
    #[must_use]
    pub fn kill_shard(mut self, shard: usize, at_request: u64) -> Self {
        self.toggles.push(ShardToggle { at_request, shard, kill: true });
        self
    }

    /// Revive `shard` when accepted request `at_request` arrives.
    #[must_use]
    pub fn revive_shard(mut self, shard: usize, at_request: u64) -> Self {
        self.toggles.push(ShardToggle { at_request, shard, kill: false });
        self
    }

    /// Seeded placement: kill one shard (chosen by the seed) somewhere
    /// in the middle half of a `span`-request run — the serving analogue
    /// of [`FaultPlan::kill_region`] with a derived death cycle.
    #[must_use]
    pub fn seeded_mid_run_kill(seed: u64, shards: usize, span: u64) -> Self {
        let shard = (splitmix64(seed) % shards.max(1) as u64) as usize;
        let quarter = span / 4;
        let at_request = quarter + splitmix64(seed ^ 0xFA17) % (span / 2).max(1);
        ServiceFaultPlan::new().kill_shard(shard, at_request)
    }

    /// All toggles scheduled at accepted-request index `at_request`, in
    /// insertion order.
    pub fn toggles_at(&self, at_request: u64) -> impl Iterator<Item = &ShardToggle> {
        self.toggles.iter().filter(move |t| t.at_request == at_request)
    }

    /// Every toggle in the plan, in insertion order.
    #[must_use]
    pub fn toggles(&self) -> &[ShardToggle] {
        &self.toggles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(super) fn ok<T, E: std::fmt::Display>(r: Result<T, E>) -> T {
        match r {
            Ok(v) => v,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }

    #[test]
    fn splitmix_is_deterministic_and_mixing() {
        assert_eq!(splitmix64(42), splitmix64(42));
        assert_ne!(splitmix64(42), splitmix64(43));
        assert_ne!(splitmix64(0), 0);
    }

    #[test]
    fn plan_reports_emptiness() {
        assert!(FaultPlan::new(1).is_empty());
        assert!(!FaultPlan::new(1).drop_nth("s", 0).is_empty());
        assert!(!FaultPlan::new(1).kill_region("e0.", 100).is_empty());
    }

    #[test]
    fn hooks_attach_only_to_matching_stream_and_type() {
        let plan = FaultPlan::new(7).drop_nth("a", 3).stall_stage("a", 10, 2).corrupt_nth::<u32>(
            "a",
            1,
            |v| v + 1,
        );
        let shared = plan.runtime();
        let hooks = match plan.hooks_for::<u32>("a", &shared) {
            Some(h) => h,
            None => panic!("hooks for stream a must attach"),
        };
        assert_eq!(hooks.drops, vec![3]);
        assert_eq!(hooks.stalls, vec![(2, 10)]);
        assert_eq!(hooks.corrupts.len(), 1);
        assert!(plan.hooks_for::<u32>("b", &shared).is_none());
        // Wrong payload type: the corrupt mutator silently does not attach.
        let wrong = match plan.hooks_for::<f64>("a", &shared) {
            Some(h) => h,
            None => panic!("drop/stall still attach on type mismatch"),
        };
        assert!(wrong.corrupts.is_empty());
    }

    #[test]
    fn counters_absorb_and_total() {
        let mut a = FaultCounters { stage_stalls: 1, ..Default::default() };
        let b = FaultCounters { dropped_tokens: 2, region_deaths: 1, ..Default::default() };
        a.absorb(&b);
        assert_eq!(a.total(), 4);
        assert!(a.any());
        assert!(!FaultCounters::default().any());
    }
}

#[cfg(test)]
mod sim_tests {
    use super::tests::ok;
    use super::*;
    use crate::cycle_sim::CycleSim;
    use crate::event_sim::EventSim;
    use crate::graph::GraphBuilder;
    use crate::process::Cost;
    use crate::stages::{SinkHandle, SourceStage};

    /// Source of `n` tokens through one stream into a counted sink, with
    /// an optional fault plan installed.
    fn pipeline(n: u64, plan: Option<FaultPlan>) -> (GraphBuilder, SinkHandle<u64>) {
        let mut g = GraphBuilder::new();
        if let Some(plan) = plan {
            g.set_fault_plan(plan);
        }
        let (tx, rx) = g.stream::<u64>("s", 4);
        g.add(SourceStage::new("src", (0..n).collect(), Cost::new(1, 1), tx));
        let sink = g.add_counted_sink("sink", rx, n);
        (g, sink)
    }

    #[test]
    fn stall_delays_completion_and_is_counted() {
        let (g0, _) = pipeline(10, None);
        let clean = ok(EventSim::new(g0).run());
        let (g1, sink) = pipeline(10, Some(FaultPlan::new(1).stall_stage("s", 50, 3)));
        let faulty = ok(EventSim::new(g1).run());
        assert_eq!(sink.values().len(), 10, "stalls delay but never lose tokens");
        assert!(faulty.total_cycles > clean.total_cycles + 40);
        assert_eq!(faulty.faults.stage_stalls, 3);
        assert_eq!(clean.faults, FaultCounters::default());
    }

    #[test]
    fn drop_loses_token_but_terminates_gracefully() {
        let (g, sink) = pipeline(10, Some(FaultPlan::new(2).drop_nth("s", 4)));
        let report = ok(EventSim::new(g).run());
        assert_eq!(report.faults.dropped_tokens, 1);
        let got = sink.values();
        assert_eq!(got.len(), 9);
        assert!(!got.contains(&4), "token 4 was dropped");
    }

    #[test]
    fn corrupt_mutates_one_token() {
        let (g, sink) =
            pipeline(5, Some(FaultPlan::new(3).corrupt_nth::<u64>("s", 2, |v| v + 1000)));
        let report = ok(EventSim::new(g).run());
        assert_eq!(report.faults.corrupted_tokens, 1);
        assert_eq!(sink.values(), vec![0, 1, 1002, 3, 4]);
    }

    #[test]
    fn region_death_halts_prefixed_processes() {
        // Two independent pipelines; kill region "a." after a few cycles.
        let mk = |plan: Option<FaultPlan>| {
            let mut g = GraphBuilder::new();
            if let Some(plan) = plan {
                g.set_fault_plan(plan);
            }
            let (txa, rxa) = g.stream::<u64>("a.s", 4);
            let (txb, rxb) = g.stream::<u64>("b.s", 4);
            g.add(SourceStage::new("a.src", (0..100).collect(), Cost::new(1, 1), txa));
            g.add(SourceStage::new("b.src", (0..100).collect(), Cost::new(1, 1), txb));
            let sa = g.add_counted_sink("a.sink", rxa, 100);
            let sb = g.add_counted_sink("b.sink", rxb, 100);
            (g, sa, sb)
        };
        let (g, sa, sb) = mk(Some(FaultPlan::new(4).kill_region("a.", 10)));
        let report = ok(EventSim::new(g).run());
        assert_eq!(report.faults.region_deaths, 1);
        assert_eq!(sb.values().len(), 100, "untouched region completes");
        assert!(sa.values().len() < 100, "dead region lost work");
    }

    #[test]
    fn schedulers_agree_under_faults() {
        let plan = || {
            FaultPlan::new(5).stall_stage("s", 25, 2).drop_nth("s", 7).corrupt_nth::<u64>(
                "s",
                3,
                |v| v * 2,
            )
        };
        let (g1, s1) = pipeline(12, Some(plan()));
        let (g2, s2) = pipeline(12, Some(plan()));
        let e = ok(EventSim::new(g1).run());
        let c = ok(CycleSim::new(g2).run());
        assert_eq!(e.total_cycles, c.total_cycles);
        assert_eq!(e.faults, c.faults);
        assert_eq!(s1.collected(), s2.collected());
    }

    #[test]
    fn fault_events_name_stream_and_token() {
        let plan = FaultPlan::new(9).drop_nth("s", 4).corrupt_nth::<u64>("s", 2, |v| v + 1);
        let (g, _sink) = pipeline(10, Some(plan));
        let report = ok(EventSim::new(g).run());
        assert_eq!(report.fault_events.len(), 2);
        let corrupt = &report.fault_events[0];
        assert_eq!((corrupt.stream.as_str(), corrupt.token), ("s", 2));
        assert_eq!(corrupt.kind, FaultKind::Corrupt);
        assert_eq!(corrupt.opt_idx, None, "no identity extractor registered");
        let drop = &report.fault_events[1];
        assert_eq!((drop.stream.as_str(), drop.token, drop.kind), ("s", 4, FaultKind::Drop));
        assert_eq!(format!("{corrupt}"), "corrupt s[2]");
    }

    #[test]
    fn fault_events_carry_option_identity() {
        // Corrupt the identity field itself: the event must still name
        // the original owner, because identity is extracted pre-mutation.
        let plan = FaultPlan::new(10)
            .corrupt_nth::<u64>("s", 3, |_| 999)
            .identify::<u64>(|&v| Some(v as u32));
        let (g, sink) = pipeline(6, Some(plan));
        let report = ok(EventSim::new(g).run());
        assert_eq!(sink.values(), vec![0, 1, 2, 999, 4, 5]);
        assert_eq!(report.fault_events.len(), 1);
        assert_eq!(report.fault_events[0].opt_idx, Some(3));
        assert_eq!(format!("{}", report.fault_events[0]), "corrupt s[3] opt 3");
    }

    #[test]
    fn service_fault_plan_is_deterministic_and_request_indexed() {
        let plan = ServiceFaultPlan::new().kill_shard(1, 40).revive_shard(1, 80).kill_shard(0, 40);
        assert!(!plan.is_empty());
        let at_40: Vec<_> = plan.toggles_at(40).collect();
        assert_eq!(at_40.len(), 2);
        assert!(at_40[0].kill && at_40[0].shard == 1);
        assert!(at_40[1].kill && at_40[1].shard == 0);
        assert_eq!(plan.toggles_at(41).count(), 0);
        assert_eq!(plan.toggles_at(80).next().map(|t| t.kill), Some(false));

        // Seeded placement replays exactly and lands mid-run.
        for seed in [0u64, 7, 42, 0xDEAD] {
            let a = ServiceFaultPlan::seeded_mid_run_kill(seed, 4, 200);
            let b = ServiceFaultPlan::seeded_mid_run_kill(seed, 4, 200);
            assert_eq!(a, b, "seeded placement must be deterministic");
            let t = a.toggles()[0];
            assert!(t.shard < 4);
            assert!((50..150).contains(&t.at_request), "kill at {} outside mid-run", t.at_request);
        }
        assert_ne!(
            ServiceFaultPlan::seeded_mid_run_kill(1, 4, 200),
            ServiceFaultPlan::seeded_mid_run_kill(2, 4, 200),
            "different seeds should (here) place differently"
        );
    }

    #[test]
    fn fault_free_plan_changes_nothing() {
        let (g0, s0) = pipeline(20, None);
        let (g1, s1) = pipeline(20, Some(FaultPlan::new(6)));
        let clean = ok(EventSim::new(g0).run());
        let planned = ok(EventSim::new(g1).run());
        assert_eq!(clean.total_cycles, planned.total_cycles);
        assert_eq!(s0.collected(), s1.collected());
        assert_eq!(planned.faults, FaultCounters::default());
    }
}
