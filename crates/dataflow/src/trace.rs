//! Lightweight occupancy/stall tracing for simulated runs.
//!
//! The simulator's per-stream statistics say *how much* traffic flowed;
//! [`TraceRecorder`] additionally captures *when*, producing per-stage
//! activity spans that can be rendered as a textual Gantt chart — useful
//! when diagnosing why a dataflow graph is not reaching its expected
//! initiation interval (the paper's "stalls frequently occurred"
//! analysis).

use crate::Cycle;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// One recorded activity span of a stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Cycle work started.
    pub start: Cycle,
    /// Cycle the stage became free again.
    pub end: Cycle,
}

/// Shared recorder that stages append activity spans to.
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    inner: Rc<RefCell<BTreeMap<String, Vec<Span>>>>,
}

impl TraceRecorder {
    /// Create an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that `stage` was busy over `[start, end)`.
    pub fn record(&self, stage: &str, start: Cycle, end: Cycle) {
        debug_assert!(end >= start);
        self.inner.borrow_mut().entry(stage.to_string()).or_default().push(Span { start, end });
    }

    /// All spans recorded for a stage.
    pub fn spans(&self, stage: &str) -> Vec<Span> {
        self.inner.borrow().get(stage).cloned().unwrap_or_default()
    }

    /// Stages with at least one span, in name order.
    pub fn stages(&self) -> Vec<String> {
        self.inner.borrow().keys().cloned().collect()
    }

    /// Total busy cycles of a stage.
    pub fn busy_cycles(&self, stage: &str) -> Cycle {
        self.spans(stage).iter().map(|s| s.end - s.start).sum()
    }

    /// Utilisation of a stage over a run of `total` cycles.
    pub fn utilisation(&self, stage: &str, total: Cycle) -> f64 {
        if total == 0 {
            return 0.0;
        }
        self.busy_cycles(stage) as f64 / total as f64
    }

    /// Render a fixed-width textual Gantt chart of all stages.
    pub fn gantt(&self, total: Cycle, width: usize) -> String {
        let mut out = String::new();
        let total = total.max(1);
        let name_w = self.stages().iter().map(|s| s.len()).max().unwrap_or(4).max(4);
        for stage in self.stages() {
            let mut row = vec![b'.'; width];
            for span in self.spans(&stage) {
                let a = (span.start as u128 * width as u128 / total as u128) as usize;
                let b = (span.end as u128 * width as u128 / total as u128) as usize;
                for c in row.iter_mut().take(b.min(width).max(a + 1)).skip(a.min(width - 1)) {
                    *c = b'#';
                }
            }
            out.push_str(&format!(
                "{:<name_w$} |{}| {:>5.1}%\n",
                stage,
                String::from_utf8_lossy(&row),
                100.0 * self.utilisation(&stage, total),
            ));
        }
        out
    }

    /// Drop all recorded spans.
    pub fn clear(&self) {
        self.inner.borrow_mut().clear();
    }

    /// Export the recorded activity as a Value Change Dump: one 1-bit
    /// `busy` wire per stage, viewable in GTKWave alongside real RTL
    /// simulations — the bridge between this model and an HLS cosim.
    pub fn to_vcd(&self, timescale_ns_per_cycle: u32) -> String {
        let stages = self.stages();
        let mut out = String::new();
        out.push_str("$version dataflow-sim trace $end\n");
        out.push_str(&format!("$timescale {timescale_ns_per_cycle}ns $end\n"));
        out.push_str("$scope module dataflow $end\n");
        // VCD identifier codes: printable ASCII starting at '!'.
        let code = |i: usize| -> char { (33 + i as u8) as char };
        for (i, stage) in stages.iter().enumerate() {
            let clean: String =
                stage.chars().map(|c| if c.is_alphanumeric() { c } else { '_' }).collect();
            out.push_str(&format!("$var wire 1 {} {clean}_busy $end\n", code(i)));
        }
        out.push_str("$upscope $end\n$enddefinitions $end\n");
        // Merge all span edges into one time-ordered event list.
        let mut edges: Vec<(Cycle, usize, bool)> = Vec::new();
        for (i, stage) in stages.iter().enumerate() {
            for span in self.spans(stage) {
                edges.push((span.start, i, true));
                edges.push((span.end, i, false));
            }
        }
        edges.sort_unstable_by_key(|&(t, i, rising)| (t, i, rising));
        out.push_str("#0\n");
        for (i, _) in stages.iter().enumerate() {
            out.push_str(&format!("0{}\n", code(i)));
        }
        let mut now = 0;
        for (t, i, rising) in edges {
            if t != now {
                out.push_str(&format!("#{t}\n"));
                now = t;
            }
            out.push_str(&format!("{}{}\n", u8::from(rising), code(i)));
        }
        out
    }
}

/// Busy/stall occupancy of one traced process over a run.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessCounters {
    /// Stage name as recorded by the tracer.
    pub name: String,
    /// Cycles the stage spent doing work.
    pub busy_cycles: Cycle,
    /// Cycles the stage existed but was not working (run length minus
    /// busy time): waiting on inputs, blocked on outputs, or drained.
    pub stall_cycles: Cycle,
    /// `busy / (busy + stall)` — the stage's utilisation over the run.
    pub utilisation: f64,
}

/// Aggregated telemetry of one simulated run: per-process busy/stall
/// split, per-stream occupancy high-water marks and backpressure counts,
/// and region restarts. Built from a [`TraceRecorder`] plus the
/// scheduler's [`crate::graph::SimReport`]; the engine layer folds
/// several runs together with [`Counters::merge`] (e.g. the per-option
/// region mode restarts the whole graph per option).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Counters {
    /// Total simulated cycles across the merged runs.
    pub total_cycles: Cycle,
    /// Per-process busy/stall accounting (name-sorted; only traced
    /// stages appear).
    pub processes: Vec<ProcessCounters>,
    /// Highest FIFO occupancy observed on any stream.
    pub stream_occupancy_high_water: usize,
    /// Total rejected pushes across all streams — scheduler-effort
    /// stall-pressure, see [`crate::graph::StreamReport::backpressure`].
    pub backpressure_events: u64,
    /// Dataflow region invocations beyond the first (the paper's
    /// "shuts-down and restarts between options" overhead).
    pub region_restarts: u64,
    /// Faults injected by an active [`crate::fault::FaultPlan`] (all
    /// zeros on fault-free runs).
    pub faults: crate::fault::FaultCounters,
    /// Per-token fault records in injection order (empty on fault-free
    /// runs): which stream and token each fault hit, and — when the plan
    /// registered an identity extractor — which option was affected.
    pub fault_events: Vec<crate::fault::FaultEvent>,
}

impl Counters {
    /// Assemble counters from one run's trace and stream reports.
    pub fn from_run(trace: &TraceRecorder, report: &crate::graph::SimReport) -> Self {
        let total = report.total_cycles;
        let processes = trace
            .stages()
            .into_iter()
            .map(|name| {
                let busy = trace.busy_cycles(&name);
                let stall = total.saturating_sub(busy);
                ProcessCounters {
                    utilisation: if total > 0 { busy as f64 / total as f64 } else { 0.0 },
                    name,
                    busy_cycles: busy,
                    stall_cycles: stall,
                }
            })
            .collect();
        Counters {
            total_cycles: total,
            processes,
            stream_occupancy_high_water: report
                .streams
                .iter()
                .map(|s| s.max_occupancy)
                .max()
                .unwrap_or(0),
            backpressure_events: report.streams.iter().map(|s| s.backpressure).sum(),
            region_restarts: 0,
            faults: report.faults,
            fault_events: report.fault_events.clone(),
        }
    }

    /// Fold another run's counters into this one: cycles, busy/stall and
    /// backpressure add; the occupancy high-water takes the max.
    /// Utilisations are re-derived from the summed cycle counts.
    pub fn merge(&mut self, other: &Counters) {
        self.total_cycles += other.total_cycles;
        for op in &other.processes {
            match self.processes.iter_mut().find(|p| p.name == op.name) {
                Some(p) => {
                    p.busy_cycles += op.busy_cycles;
                    p.stall_cycles += op.stall_cycles;
                }
                None => self.processes.push(op.clone()),
            }
        }
        for p in &mut self.processes {
            let span = p.busy_cycles + p.stall_cycles;
            p.utilisation = if span > 0 { p.busy_cycles as f64 / span as f64 } else { 0.0 };
        }
        self.processes.sort_by(|a, b| a.name.cmp(&b.name));
        self.stream_occupancy_high_water =
            self.stream_occupancy_high_water.max(other.stream_occupancy_high_water);
        self.backpressure_events += other.backpressure_events;
        self.region_restarts += other.region_restarts;
        self.faults.absorb(&other.faults);
        self.fault_events.extend(other.fault_events.iter().cloned());
    }

    /// Mean utilisation across traced processes (0 when none were traced).
    pub fn mean_utilisation(&self) -> f64 {
        if self.processes.is_empty() {
            return 0.0;
        }
        self.processes.iter().map(|p| p.utilisation).sum::<f64>() / self.processes.len() as f64
    }
}

/// Wall-clock stopwatch for the harness's own overhead reporting (never
/// used for the modelled performance numbers, which are cycle-accurate
/// and deterministic).
#[derive(Debug)]
pub struct Timer {
    started: std::time::Instant,
}

impl Default for Timer {
    fn default() -> Self {
        Self::new()
    }
}

impl Timer {
    /// Start timing now.
    pub fn new() -> Self {
        Timer { started: std::time::Instant::now() }
    }

    /// Seconds elapsed since construction.
    pub fn elapsed_seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{SimReport, StreamReport};

    fn report(cycles: Cycle, streams: Vec<StreamReport>) -> SimReport {
        SimReport {
            total_cycles: cycles,
            events: 0,
            streams,
            faults: crate::fault::FaultCounters::default(),
            fault_events: Vec::new(),
        }
    }

    fn stream(name: &str, max_occupancy: usize, backpressure: u64) -> StreamReport {
        StreamReport {
            name: name.to_string(),
            capacity: 8,
            pushes: 0,
            pops: 0,
            max_occupancy,
            backpressure,
        }
    }

    #[test]
    fn counters_split_busy_and_stall() {
        let t = TraceRecorder::new();
        t.record("hazard", 0, 60);
        t.record("interp", 10, 20);
        let c = Counters::from_run(&t, &report(100, vec![stream("a", 5, 7), stream("b", 3, 2)]));
        assert_eq!(c.total_cycles, 100);
        let hazard = &c.processes[0];
        assert_eq!(
            (hazard.name.as_str(), hazard.busy_cycles, hazard.stall_cycles),
            ("hazard", 60, 40)
        );
        assert!((hazard.utilisation - 0.6).abs() < 1e-12);
        assert_eq!(c.stream_occupancy_high_water, 5);
        assert_eq!(c.backpressure_events, 9);
        assert_eq!(c.region_restarts, 0);
        assert!((c.mean_utilisation() - (0.6 + 0.1) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates_and_rederives_utilisation() {
        let t = TraceRecorder::new();
        t.record("s", 0, 30);
        let mut a = Counters::from_run(&t, &report(100, vec![stream("x", 4, 1)]));
        a.region_restarts = 1;
        let t2 = TraceRecorder::new();
        t2.record("s", 0, 70);
        t2.record("other", 0, 10);
        let mut b = Counters::from_run(&t2, &report(100, vec![stream("x", 6, 3)]));
        b.region_restarts = 1;
        a.merge(&b);
        assert_eq!(a.total_cycles, 200);
        assert_eq!(a.region_restarts, 2);
        assert_eq!(a.backpressure_events, 4);
        assert_eq!(a.stream_occupancy_high_water, 6);
        let s = a.processes.iter().find(|p| p.name == "s").expect("merged stage");
        assert_eq!(s.busy_cycles, 100);
        assert_eq!(s.stall_cycles, 100);
        assert!((s.utilisation - 0.5).abs() < 1e-12);
        assert!(a.processes.iter().any(|p| p.name == "other"));
    }

    #[test]
    fn empty_counters_are_benign() {
        let c = Counters::from_run(&TraceRecorder::new(), &report(0, vec![]));
        assert_eq!(c.mean_utilisation(), 0.0);
        assert_eq!(c.stream_occupancy_high_water, 0);
        let mut d = Counters::default();
        d.merge(&c);
        assert_eq!(d, c);
    }

    #[test]
    fn timer_measures_nonnegative_time() {
        let t = Timer::new();
        assert!(t.elapsed_seconds() >= 0.0);
    }

    #[test]
    fn records_and_reports_busy_time() {
        let t = TraceRecorder::new();
        t.record("hazard", 0, 10);
        t.record("hazard", 20, 25);
        t.record("interp", 5, 6);
        assert_eq!(t.busy_cycles("hazard"), 15);
        assert_eq!(t.busy_cycles("interp"), 1);
        assert_eq!(t.busy_cycles("missing"), 0);
        assert_eq!(t.stages(), vec!["hazard".to_string(), "interp".to_string()]);
    }

    #[test]
    fn utilisation_fraction() {
        let t = TraceRecorder::new();
        t.record("s", 0, 50);
        assert!((t.utilisation("s", 100) - 0.5).abs() < 1e-12);
        assert_eq!(t.utilisation("s", 0), 0.0);
    }

    #[test]
    fn gantt_renders_rows() {
        let t = TraceRecorder::new();
        t.record("busy", 0, 100);
        t.record("idle", 90, 100);
        let g = t.gantt(100, 20);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("####################"));
        assert!(lines[0].contains("100.0%"));
        assert!(lines[1].contains("10.0%"));
    }

    #[test]
    fn vcd_export_well_formed() {
        let t = TraceRecorder::new();
        t.record("hazard", 2, 10);
        t.record("interp", 5, 6);
        let vcd = t.to_vcd(3);
        assert!(vcd.contains("$timescale 3ns $end"));
        assert!(vcd.contains("hazard_busy"));
        assert!(vcd.contains("interp_busy"));
        // Initial values, then edges at 2, 5, 6, 10.
        for marker in ["#0", "#2", "#5", "#6", "#10"] {
            assert!(vcd.contains(marker), "missing {marker}");
        }
        // One rising and one falling edge per stage plus two initial 0s.
        let zeros = vcd.matches("\n0").count();
        let ones = vcd.matches("\n1").count();
        assert_eq!(ones, 2, "rising edges");
        assert!(zeros >= 4, "falling + initial");
    }

    #[test]
    fn clones_share_state() {
        let t = TraceRecorder::new();
        let t2 = t.clone();
        t2.record("s", 0, 5);
        assert_eq!(t.busy_cycles("s"), 5);
        t.clear();
        assert_eq!(t2.busy_cycles("s"), 0);
    }
}
