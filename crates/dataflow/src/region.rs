//! Dataflow-region invocation semantics.
//!
//! A Vitis `#pragma HLS DATAFLOW` region is a set of concurrently running
//! functions. Invoking the region costs control overhead — the `ap_start`
//! / `ap_done` handshake of each process, stream initialisation, and the
//! kernel-level start issued by the host runtime. The paper's *optimised
//! dataflow* engine pays this **per option** ("the dataflow region
//! shuts-down and restarts between options, and in addition to the
//! performance overhead of starting and stopping the dataflow region, the
//! pipelines were also continually filling and draining"); the
//! *inter-option* engine pays it **once per batch**. [`RegionCost`]
//! quantifies that overhead and [`RegionMode`] selects which regime a run
//! uses.

use crate::Cycle;

/// How a dataflow region is invoked over a batch of work items.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionMode {
    /// Region shut down and restarted for every option (the Xilinx
    /// library engine and the paper's first optimised engine).
    PerOption,
    /// Region runs continuously; options stream through ("we modified the
    /// engine to run continually between options").
    Continuous,
}

/// Cycle cost of starting/stopping a dataflow region once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionCost {
    /// Fixed control overhead per invocation: the kernel `ap_start` to
    /// first-useful-work distance plus the final `ap_done` collection,
    /// including the host runtime's enqueue cost, expressed in kernel
    /// cycles. Calibrated — see `DESIGN.md` §5.
    pub control_overhead: Cycle,
    /// Per-process handshake cost: each dataflow function must assert
    /// done and be restarted.
    pub per_process_overhead: Cycle,
}

impl RegionCost {
    /// Construct a region cost.
    pub const fn new(control_overhead: Cycle, per_process_overhead: Cycle) -> Self {
        RegionCost { control_overhead, per_process_overhead }
    }

    /// A zero-cost region, useful in unit tests isolating other effects.
    pub const fn free() -> Self {
        RegionCost { control_overhead: 0, per_process_overhead: 0 }
    }

    /// Total overhead of one invocation of a region with `processes`
    /// dataflow functions.
    pub fn invocation_overhead(&self, processes: usize) -> Cycle {
        self.control_overhead + self.per_process_overhead * processes as Cycle
    }

    /// Total overhead across a batch of `items` under the given mode.
    pub fn batch_overhead(&self, mode: RegionMode, items: u64, processes: usize) -> Cycle {
        match mode {
            RegionMode::PerOption => self.invocation_overhead(processes) * items,
            RegionMode::Continuous => self.invocation_overhead(processes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invocation_overhead_includes_all_processes() {
        let c = RegionCost::new(100, 6);
        assert_eq!(c.invocation_overhead(8), 100 + 48);
    }

    #[test]
    fn per_option_scales_with_items() {
        let c = RegionCost::new(100, 6);
        assert_eq!(
            c.batch_overhead(RegionMode::PerOption, 1000, 8),
            1000 * c.invocation_overhead(8)
        );
    }

    #[test]
    fn continuous_pays_once() {
        let c = RegionCost::new(100, 6);
        assert_eq!(c.batch_overhead(RegionMode::Continuous, 1000, 8), c.invocation_overhead(8));
    }

    #[test]
    fn free_region_costs_nothing() {
        assert_eq!(RegionCost::free().batch_overhead(RegionMode::PerOption, 500, 10), 0);
    }

    #[test]
    fn continuous_never_worse_than_per_option() {
        let c = RegionCost::new(37, 3);
        for items in [0u64, 1, 2, 100] {
            assert!(
                c.batch_overhead(RegionMode::Continuous, items, 5)
                    <= c.batch_overhead(RegionMode::PerOption, items, 5)
                        .max(c.invocation_overhead(5))
            );
        }
    }
}
