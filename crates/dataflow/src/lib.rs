//! # dataflow-sim — a simulator of Vitis-HLS dataflow hardware
//!
//! The CLUSTER 2021 CDS paper's results are produced by an FPGA kernel
//! built from three HLS constructs: **pipelined loops** (characterised by
//! an initiation interval and a latency), **dataflow regions** (functions
//! running concurrently, with start/stop overhead per invocation) and
//! **streams** (bounded FIFOs connecting them, applying backpressure when
//! full). No HLS toolchain or FPGA is available here, so this crate
//! implements those constructs as a discrete-event simulator: the paper's
//! engines run on it, producing **real numerical results** together with
//! **cycle-exact timing** under the declared cost model.
//!
//! Two schedulers share one process model:
//!
//! * [`event_sim::EventSim`] — an event-driven scheduler that advances time
//!   to the next interesting cycle (fast; the default), and
//! * [`cycle_sim::CycleSim`] — a naive cycle-by-cycle reference scheduler,
//!   cross-validated against the event simulator by property tests.
//!
//! Supporting models: [`resource`] (Alveo U280 LUT/DSP/RAM budget and fit
//! checking), [`clock`] (cycles → seconds), [`hbm`] (512-bit external
//! memory access and PCIe transfer), [`pipeline`] (pipelined-loop timing
//! algebra), [`region`] (dataflow-region invocation overhead) and
//! [`graph`] (topology description + Graphviz DOT export used to
//! regenerate the paper's Figures 1–3).
//!
//! ```
//! use dataflow_sim::prelude::*;
//!
//! // A single-stage pipeline: a source feeding a collecting sink.
//! let mut g = GraphBuilder::new();
//! let (tx, rx) = g.stream::<f64>("values", 4);
//! g.add(SourceStage::new("src", (0..8).map(|i| i as f64).collect(), Cost::new(1, 1), tx));
//! let sink = g.add_collecting_sink("sink", rx);
//! let mut sim = EventSim::new(g);
//! let report = sim.run().unwrap();
//! assert_eq!(sink.values().len(), 8);
//! assert!(report.total_cycles > 0);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod analysis;
pub mod clock;
pub mod cycle_sim;
pub mod event_sim;
pub mod fault;
pub mod graph;
pub mod hbm;
pub mod pipeline;
pub mod process;
pub mod region;
pub mod resource;
pub mod stages;
pub mod stream;
pub mod trace;
pub mod vector;

/// Cycle count / timestamp within a simulation.
pub type Cycle = u64;

/// Convenient glob import.
pub mod prelude {
    pub use crate::clock::ClockModel;
    pub use crate::cycle_sim::CycleSim;
    pub use crate::event_sim::EventSim;
    pub use crate::fault::{FaultCounters, FaultEvent, FaultKind, FaultPlan};
    pub use crate::graph::{GraphBuilder, SimError, SimReport};
    pub use crate::hbm::{MemoryModel, PcieModel};
    pub use crate::pipeline::PipelinedLoop;
    pub use crate::process::{Cost, Process, ProcessStatus};
    pub use crate::region::{RegionCost, RegionMode};
    pub use crate::resource::{Device, ResourceUsage};
    pub use crate::stages::{MapStage, SinkStage, SourceStage, ZipStage};
    pub use crate::stream::{StreamReceiver, StreamSender};
    pub use crate::trace::{Counters, Timer, TraceRecorder};
    pub use crate::vector::{RoundRobinMerge, RoundRobinSplit};
    pub use crate::Cycle;
}
