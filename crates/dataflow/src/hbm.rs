//! External memory and host-transfer models.
//!
//! The paper stores "external data … in the Alveo U280's HBM2 memory, and
//! in accordance with best practice external data accesses are packed
//! into widths of 512 bits", and every reported FPGA figure includes "the
//! overhead of data transfer via PCIe … which nevertheless represents a
//! small part of the overall execution time". [`MemoryModel`] costs the
//! 512-bit-packed burst reads of the constant curve data into URAM and
//! [`PcieModel`] the host↔card option/result transfers.

use crate::Cycle;

/// Burst-access model of a 512-bit wide HBM2/DRAM interface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryModel {
    /// Interface width in bits (512 per Vitis best practice).
    pub width_bits: u32,
    /// Cycles of latency before the first beat of a burst.
    pub burst_latency: Cycle,
    /// Cycles per beat once streaming (1 for a well-formed burst).
    pub cycles_per_beat: Cycle,
}

impl MemoryModel {
    /// The configuration used by the engines: 512-bit packed accesses to
    /// HBM2 with a typical ~64-cycle access latency at the kernel clock.
    pub fn hbm2_512() -> Self {
        MemoryModel { width_bits: 512, burst_latency: 64, cycles_per_beat: 1 }
    }

    /// Number of interface beats needed for `bytes` of data.
    pub fn beats(&self, bytes: u64) -> u64 {
        let bytes_per_beat = (self.width_bits / 8) as u64;
        bytes.div_ceil(bytes_per_beat)
    }

    /// Cycles to burst-read `bytes` contiguous bytes.
    pub fn burst_read_cycles(&self, bytes: u64) -> Cycle {
        if bytes == 0 {
            return 0;
        }
        self.burst_latency + self.beats(bytes) * self.cycles_per_beat
    }

    /// Cycles to load both 1024-knot constant curves (the engine's
    /// initialisation: "all engines require the full interest and hazard
    /// rate data, which is read in upon initialisation … and stored in
    /// UltraRAM").
    pub fn curve_load_cycles(&self, knots: usize) -> Cycle {
        // A knot is a (tenor, value) f64 pair = 16 bytes; two curves.
        self.burst_read_cycles(knots as u64 * 16) * 2
    }
}

/// Host↔card transfer model over PCIe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcieModel {
    /// Effective unidirectional bandwidth in bytes per second.
    pub bandwidth_bytes_per_s: f64,
    /// Fixed per-transfer latency in seconds (driver + DMA setup).
    pub latency_s: f64,
}

impl PcieModel {
    /// PCIe gen3 ×16 as on the U280: ~12 GB/s effective, ~10 µs per DMA.
    pub fn gen3_x16() -> Self {
        PcieModel { bandwidth_bytes_per_s: 12e9, latency_s: 10e-6 }
    }

    /// Seconds to move `bytes` in one direction.
    pub fn transfer_seconds(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        self.latency_s + bytes as f64 / self.bandwidth_bytes_per_s
    }

    /// Seconds to ship a batch of options in and spreads out.
    ///
    /// An option is (maturity f64, frequency u32 padded, recovery f64) =
    /// 24 bytes packed; a result is one f64 spread.
    pub fn option_batch_seconds(&self, options: u64) -> f64 {
        self.transfer_seconds(options * 24) + self.transfer_seconds(options * 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beats_round_up() {
        let m = MemoryModel::hbm2_512();
        assert_eq!(m.beats(64), 1);
        assert_eq!(m.beats(65), 2);
        assert_eq!(m.beats(0), 0);
    }

    #[test]
    fn burst_read_includes_latency_once() {
        let m = MemoryModel::hbm2_512();
        assert_eq!(m.burst_read_cycles(64 * 100), 64 + 100);
        assert_eq!(m.burst_read_cycles(0), 0);
    }

    #[test]
    fn curve_load_for_paper_config() {
        let m = MemoryModel::hbm2_512();
        // 1024 knots × 16 B = 16 KiB = 256 beats per curve.
        assert_eq!(m.curve_load_cycles(1024), (64 + 256) * 2);
    }

    #[test]
    fn pcie_small_transfer_dominated_by_latency() {
        let p = PcieModel::gen3_x16();
        let t = p.transfer_seconds(24);
        assert!(t > p.latency_s && t < p.latency_s * 1.01);
    }

    #[test]
    fn pcie_batch_is_small_versus_compute() {
        // Paper: transfer is "a small part of the overall execution time".
        // 1024 options at the paper's best rate (~27.7k opts/s) compute for
        // ~37 ms; the transfer should be well under 1% of that.
        let p = PcieModel::gen3_x16();
        let transfer = p.option_batch_seconds(1024);
        assert!(transfer < 0.37e-3, "transfer {transfer}s");
    }

    #[test]
    fn zero_bytes_free() {
        assert_eq!(PcieModel::gen3_x16().transfer_seconds(0), 0.0);
    }
}
