//! Reusable building-block stages: sources, sinks, map and zip processes.
//!
//! The CDS engine crate composes its Figure-2 stages from bespoke state
//! machines plus these generic ones. They also serve as the vocabulary for
//! the simulator's own test suite.

use crate::process::{Cost, Process, ProcessStatus};
use crate::stream::{ReadPoll, StreamId, StreamReceiver, StreamSender};
use crate::trace::TraceRecorder;
use crate::Cycle;
use std::cell::RefCell;
use std::rc::Rc;

/// Emits a fixed sequence of tokens, one per `cost.ii` cycles, each
/// visible downstream after `cost.latency`.
pub struct SourceStage<T> {
    name: String,
    values: std::vec::IntoIter<T>,
    initial: Vec<T>,
    cost: Cost,
    tx: StreamSender<T>,
    next_emit: Cycle,
    pending: Option<T>,
}

impl<T: Clone> SourceStage<T> {
    /// Create a source emitting `values` in order through `tx`.
    pub fn new(name: impl Into<String>, values: Vec<T>, cost: Cost, tx: StreamSender<T>) -> Self {
        SourceStage {
            name: name.into(),
            values: values.clone().into_iter(),
            initial: values,
            cost,
            tx,
            next_emit: 0,
            pending: None,
        }
    }
}

impl<T: Clone> Process for SourceStage<T> {
    fn name(&self) -> &str {
        &self.name
    }

    fn step(&mut self, now: Cycle) -> ProcessStatus {
        if let Some(v) = self.pending.take() {
            if let Err(v) = self.tx.try_push(now, v, self.cost.latency) {
                self.pending = Some(v);
                return ProcessStatus::Blocked;
            }
            self.next_emit = now + self.cost.ii;
        }
        if now < self.next_emit {
            return ProcessStatus::Continue(self.next_emit);
        }
        match self.values.next() {
            None => ProcessStatus::Done,
            Some(v) => match self.tx.try_push(now, v, self.cost.latency) {
                Ok(()) => {
                    self.next_emit = now + self.cost.ii;
                    ProcessStatus::Continue(self.next_emit)
                }
                Err(v) => {
                    self.pending = Some(v);
                    ProcessStatus::Blocked
                }
            },
        }
    }

    fn outputs(&self) -> Vec<StreamId> {
        vec![self.tx.id()]
    }

    fn reset(&mut self) {
        self.values = self.initial.clone().into_iter();
        self.next_emit = 0;
        self.pending = None;
    }
}

/// Shared handle to the tokens collected by a [`SinkStage`], with their
/// arrival cycles.
#[derive(Debug, Clone)]
pub struct SinkHandle<T>(Rc<RefCell<Vec<(T, Cycle)>>>);

impl<T: Clone> SinkHandle<T> {
    /// Snapshot of collected `(value, arrival_cycle)` pairs.
    pub fn collected(&self) -> Vec<(T, Cycle)> {
        self.0.borrow().clone()
    }

    /// Snapshot of collected values only.
    pub fn values(&self) -> Vec<T> {
        self.0.borrow().iter().map(|(v, _)| v.clone()).collect()
    }

    /// Number of tokens received so far.
    pub fn len(&self) -> usize {
        self.0.borrow().len()
    }

    /// True when nothing has been received.
    pub fn is_empty(&self) -> bool {
        self.0.borrow().is_empty()
    }

    /// Arrival cycle of the final token, if any.
    pub fn last_arrival(&self) -> Option<Cycle> {
        self.0.borrow().last().map(|(_, c)| *c)
    }

    /// Discard collected tokens (used between region invocations).
    pub fn clear(&self) {
        self.0.borrow_mut().clear();
    }
}

/// Consumes tokens from a stream, recording values and arrival cycles.
///
/// With `expected = Some(n)` the sink completes after `n` tokens — the
/// paper's inter-option engine makes "each dataflow stage … aware of the
/// overall number of options" in exactly this way. With `expected = None`
/// the sink is passive: it finishes when every producer has.
pub struct SinkStage<T> {
    name: String,
    rx: StreamReceiver<T>,
    out: Rc<RefCell<Vec<(T, Cycle)>>>,
    ii: Cycle,
    busy_until: Cycle,
    expected: Option<u64>,
    received: u64,
}

impl<T> SinkStage<T> {
    /// Create a sink reading from `rx`, consuming at most one token per
    /// `ii` cycles.
    pub fn new(
        name: impl Into<String>,
        rx: StreamReceiver<T>,
        ii: Cycle,
        expected: Option<u64>,
    ) -> (Self, SinkHandle<T>) {
        let out = Rc::new(RefCell::new(Vec::new()));
        (
            SinkStage {
                name: name.into(),
                rx,
                out: out.clone(),
                ii: ii.max(1),
                busy_until: 0,
                expected,
                received: 0,
            },
            SinkHandle(out),
        )
    }
}

impl<T> Process for SinkStage<T> {
    fn name(&self) -> &str {
        &self.name
    }

    fn step(&mut self, now: Cycle) -> ProcessStatus {
        if let Some(n) = self.expected {
            if self.received >= n {
                return ProcessStatus::Done;
            }
        }
        if now < self.busy_until {
            return ProcessStatus::Continue(self.busy_until);
        }
        match self.rx.poll(now) {
            ReadPoll::Ready(v) => {
                self.out.borrow_mut().push((v, now));
                self.received += 1;
                self.busy_until = now + self.ii;
                // The next token (if already available) is picked up on
                // the next scheduler visit at `busy_until`.
                ProcessStatus::Continue(self.busy_until)
            }
            ReadPoll::NotUntil(c) => ProcessStatus::Continue(c),
            ReadPoll::Empty => ProcessStatus::Blocked,
        }
    }

    fn inputs(&self) -> Vec<StreamId> {
        vec![self.rx.id()]
    }

    fn can_finish(&self) -> bool {
        self.expected.is_none()
    }

    fn reset(&mut self) {
        self.busy_until = 0;
        self.received = 0;
        self.out.borrow_mut().clear();
    }
}

/// One-in one-out stage applying a function with a data-dependent cost —
/// the workhorse for modelling pipelined HLS loops whose trip count
/// depends on the token (e.g. "accumulate the hazard data up to this time
/// point").
pub struct MapStage<I, O, F>
where
    F: FnMut(I) -> (O, Cost),
{
    name: String,
    rx: StreamReceiver<I>,
    tx: StreamSender<O>,
    f: F,
    busy_until: Cycle,
    pending: Option<(O, Cycle)>,
    expected: Option<u64>,
    processed: u64,
    trace: Option<TraceRecorder>,
}

impl<I, O, F> MapStage<I, O, F>
where
    F: FnMut(I) -> (O, Cost),
{
    /// Create a map stage; `expected` bounds the number of tokens after
    /// which the stage reports completion.
    pub fn new(
        name: impl Into<String>,
        rx: StreamReceiver<I>,
        tx: StreamSender<O>,
        expected: Option<u64>,
        f: F,
    ) -> Self {
        MapStage {
            name: name.into(),
            rx,
            tx,
            f,
            busy_until: 0,
            pending: None,
            expected,
            processed: 0,
            trace: None,
        }
    }

    /// Record this stage's busy spans into `recorder` (for occupancy /
    /// stall analysis).
    pub fn with_trace(mut self, recorder: TraceRecorder) -> Self {
        self.trace = Some(recorder);
        self
    }
}

impl<I, O, F> Process for MapStage<I, O, F>
where
    F: FnMut(I) -> (O, Cost),
{
    fn name(&self) -> &str {
        &self.name
    }

    fn step(&mut self, now: Cycle) -> ProcessStatus {
        if let Some((v, visible_at)) = self.pending.take() {
            // Output stalled earlier: the value is ready, write it as soon
            // as space frees; visibility is the later of computation
            // completion and write registration.
            let latency = visible_at.saturating_sub(now).max(1);
            if let Err(v) = self.tx.try_push(now, v, latency) {
                self.pending = Some((v, visible_at));
                return ProcessStatus::Blocked;
            }
            self.processed += 1;
        }
        if let Some(n) = self.expected {
            if self.processed >= n {
                return ProcessStatus::Done;
            }
        }
        if now < self.busy_until {
            return ProcessStatus::Continue(self.busy_until);
        }
        match self.rx.poll(now) {
            ReadPoll::Ready(input) => {
                let (out, cost) = (self.f)(input);
                self.busy_until = now + cost.ii;
                if let Some(trace) = &self.trace {
                    trace.record(&self.name, now, self.busy_until);
                }
                let visible_at = now + cost.latency;
                match self.tx.try_push(now, out, cost.latency) {
                    Ok(()) => {
                        self.processed += 1;
                        ProcessStatus::Continue(self.busy_until)
                    }
                    Err(out) => {
                        self.pending = Some((out, visible_at));
                        ProcessStatus::Blocked
                    }
                }
            }
            ReadPoll::NotUntil(c) => ProcessStatus::Continue(c),
            ReadPoll::Empty => ProcessStatus::Blocked,
        }
    }

    fn inputs(&self) -> Vec<StreamId> {
        vec![self.rx.id()]
    }

    fn outputs(&self) -> Vec<StreamId> {
        vec![self.tx.id()]
    }

    fn can_finish(&self) -> bool {
        self.expected.is_none() && self.pending.is_none()
    }

    fn reset(&mut self) {
        self.busy_until = 0;
        self.pending = None;
        self.processed = 0;
    }
}

// `Copy` bound keeps pending-output handling simple; all engine tokens are
// small `Copy` structs, mirroring the fixed-width buses of the hardware.
impl<I, O: Copy, F> MapStage<I, O, F> where F: FnMut(I) -> (O, Cost) {}

/// Emits tokens at prescribed absolute cycles — a workload arrival
/// process (e.g. Poisson quote arrivals in a streaming deployment) rather
/// than a back-to-back batch.
pub struct TimedSourceStage<T> {
    name: String,
    schedule: Vec<(T, Cycle)>,
    pos: usize,
    tx: StreamSender<T>,
    latency: Cycle,
    pending: Option<T>,
}

impl<T: Clone> TimedSourceStage<T> {
    /// Create a timed source; `schedule` pairs each token with its
    /// arrival cycle and must be sorted by cycle.
    pub fn new(
        name: impl Into<String>,
        schedule: Vec<(T, Cycle)>,
        latency: Cycle,
        tx: StreamSender<T>,
    ) -> Self {
        debug_assert!(
            schedule.windows(2).all(|w| w[0].1 <= w[1].1),
            "arrival schedule must be sorted by cycle"
        );
        TimedSourceStage { name: name.into(), schedule, pos: 0, tx, latency, pending: None }
    }
}

impl<T: Clone> Process for TimedSourceStage<T> {
    fn name(&self) -> &str {
        &self.name
    }

    fn step(&mut self, now: Cycle) -> ProcessStatus {
        if let Some(v) = self.pending.take() {
            if let Err(v) = self.tx.try_push(now, v, self.latency) {
                self.pending = Some(v);
                return ProcessStatus::Blocked;
            }
        }
        match self.schedule.get(self.pos) {
            None => ProcessStatus::Done,
            Some((v, at)) => {
                if now < *at {
                    return ProcessStatus::Continue(*at);
                }
                match self.tx.try_push(now, v.clone(), self.latency) {
                    Ok(()) => {
                        self.pos += 1;
                        match self.schedule.get(self.pos) {
                            Some((_, next)) if *next > now => ProcessStatus::Continue(*next),
                            Some(_) => ProcessStatus::Continue(now + 1),
                            None => ProcessStatus::Done,
                        }
                    }
                    Err(v) => {
                        self.pos += 1;
                        self.pending = Some(v);
                        ProcessStatus::Blocked
                    }
                }
            }
        }
    }

    fn outputs(&self) -> Vec<StreamId> {
        vec![self.tx.id()]
    }

    fn reset(&mut self) {
        self.pos = 0;
        self.pending = None;
    }
}

/// N-in one-out joiner: waits for one token on every input, combines them.
/// Models the final "combine into spread" stage which joins the
/// accumulated payment, payoff and accrual streams.
pub struct ZipStage<I, O, F>
where
    F: FnMut(&[I]) -> (O, Cost),
{
    name: String,
    rxs: Vec<StreamReceiver<I>>,
    tx: StreamSender<O>,
    f: F,
    slots: Vec<Option<I>>,
    busy_until: Cycle,
    pending: Option<(O, Cycle)>,
    expected: Option<u64>,
    processed: u64,
}

impl<I, O, F> ZipStage<I, O, F>
where
    F: FnMut(&[I]) -> (O, Cost),
{
    /// Create a zip stage over the given input streams.
    pub fn new(
        name: impl Into<String>,
        rxs: Vec<StreamReceiver<I>>,
        tx: StreamSender<O>,
        expected: Option<u64>,
        f: F,
    ) -> Self {
        let n = rxs.len();
        assert!(n >= 1, "ZipStage needs at least one input");
        ZipStage {
            name: name.into(),
            rxs,
            tx,
            f,
            slots: (0..n).map(|_| None).collect(),
            busy_until: 0,
            pending: None,
            expected,
            processed: 0,
        }
    }
}

impl<I, O, F> Process for ZipStage<I, O, F>
where
    F: FnMut(&[I]) -> (O, Cost),
{
    fn name(&self) -> &str {
        &self.name
    }

    fn step(&mut self, now: Cycle) -> ProcessStatus {
        if let Some((v, visible_at)) = self.pending.take() {
            let latency = visible_at.saturating_sub(now).max(1);
            if let Err(v) = self.tx.try_push(now, v, latency) {
                self.pending = Some((v, visible_at));
                return ProcessStatus::Blocked;
            }
            self.processed += 1;
        }
        if let Some(n) = self.expected {
            if self.processed >= n {
                return ProcessStatus::Done;
            }
        }
        if now < self.busy_until {
            return ProcessStatus::Continue(self.busy_until);
        }
        // Fill empty slots; note the earliest future availability.
        let mut wait_until: Option<Cycle> = None;
        let mut any_empty = false;
        for (slot, rx) in self.slots.iter_mut().zip(self.rxs.iter()) {
            if slot.is_none() {
                match rx.poll(now) {
                    ReadPoll::Ready(v) => *slot = Some(v),
                    ReadPoll::NotUntil(c) => {
                        wait_until = Some(wait_until.map_or(c, |w| w.min(c)));
                    }
                    ReadPoll::Empty => any_empty = true,
                }
            }
        }
        if self.slots.iter().all(|s| s.is_some()) {
            let inputs: Vec<I> = self.slots.iter_mut().filter_map(Option::take).collect();
            let (out, cost) = (self.f)(&inputs);
            self.busy_until = now + cost.ii;
            let visible_at = now + cost.latency;
            match self.tx.try_push(now, out, cost.latency) {
                Ok(()) => {
                    self.processed += 1;
                    ProcessStatus::Continue(self.busy_until)
                }
                Err(out) => {
                    self.pending = Some((out, visible_at));
                    ProcessStatus::Blocked
                }
            }
        } else if let Some(c) = wait_until {
            ProcessStatus::Continue(c)
        } else {
            debug_assert!(any_empty);
            ProcessStatus::Blocked
        }
    }

    fn inputs(&self) -> Vec<StreamId> {
        self.rxs.iter().map(|r| r.id()).collect()
    }

    fn outputs(&self) -> Vec<StreamId> {
        vec![self.tx.id()]
    }

    fn can_finish(&self) -> bool {
        self.expected.is_none() && self.pending.is_none() && self.slots.iter().all(|s| s.is_none())
    }

    fn reset(&mut self) {
        for s in &mut self.slots {
            *s = None;
        }
        self.busy_until = 0;
        self.pending = None;
        self.processed = 0;
    }
}

#[cfg(test)]
mod timed_source_tests {
    use super::*;
    use crate::event_sim::EventSim;
    use crate::graph::GraphBuilder;

    #[test]
    fn tokens_arrive_at_scheduled_cycles() {
        let mut g = GraphBuilder::new();
        let (tx, rx) = g.stream::<u32>("s", 4);
        g.add(TimedSourceStage::new("timed", vec![(10, 100), (20, 250), (30, 251)], 1, tx));
        let sink = g.add_counted_sink("sink", rx, 3);
        EventSim::new(g).run().unwrap();
        let collected = sink.collected();
        assert_eq!(collected[0], (10, 101));
        assert_eq!(collected[1], (20, 251));
        assert_eq!(collected[2], (30, 252));
    }

    #[test]
    fn backpressure_delays_but_preserves_order() {
        let mut g = GraphBuilder::new();
        let (tx, rx) = g.stream::<u32>("s", 1);
        let (t2, r2) = g.stream::<u32>("out", 1);
        // Burst of 4 tokens at cycle 0 into a slow (II=50) stage through
        // a depth-1 FIFO.
        g.add(TimedSourceStage::new("timed", (0..4).map(|i| (i, 0)).collect(), 1, tx));
        g.add(MapStage::new("slow", rx, t2, Some(4), |v| (v, Cost::new(50, 50))));
        let sink = g.add_counted_sink("sink", r2, 4);
        let report = EventSim::new(g).run().unwrap();
        assert_eq!(sink.values(), vec![0, 1, 2, 3]);
        assert!(report.total_cycles >= 200, "cycles {}", report.total_cycles);
    }

    #[test]
    fn empty_schedule_finishes_immediately() {
        let mut g = GraphBuilder::new();
        let (tx, rx) = g.stream::<u32>("s", 2);
        g.add(TimedSourceStage::new("timed", Vec::new(), 1, tx));
        let sink = g.add_collecting_sink("sink", rx);
        EventSim::new(g).run().unwrap();
        assert!(sink.is_empty());
    }

    #[test]
    fn reset_replays_schedule() {
        let mut g = GraphBuilder::new();
        let (tx, rx) = g.stream::<u32>("s", 4);
        g.add(TimedSourceStage::new("timed", vec![(7, 5)], 1, tx));
        let sink = g.add_counted_sink("sink", rx, 1);
        let mut sim = EventSim::new(g);
        let r1 = sim.run().unwrap();
        sink.clear();
        sim.reset();
        let r2 = sim.run().unwrap();
        assert_eq!(r1.total_cycles, r2.total_cycles);
        assert_eq!(sink.values(), vec![7]);
    }
}
