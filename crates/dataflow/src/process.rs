//! The process model shared by both simulator schedulers.
//!
//! A *process* is one concurrently-running dataflow function (a black box
//! of the paper's Figure 2). The scheduler repeatedly calls
//! [`Process::step`]; the process reads its input streams, performs work,
//! writes its outputs and reports when it next needs CPU time. All timing
//! behaviour — initiation intervals, operation latencies, stalls on
//! empty/full streams — is expressed through the returned
//! [`ProcessStatus`] and the cycle stamps on stream tokens.

use crate::stream::StreamId;
use crate::Cycle;

/// What a process tells the scheduler after a `step` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcessStatus {
    /// The process has (or will have) work at the given absolute cycle;
    /// run it again then. Used both for "busy until" (an inner pipelined
    /// loop is executing) and "input token arrives at cycle X".
    Continue(Cycle),
    /// The process cannot make progress until *another* process acts
    /// (empty input with no in-flight token, or full output). The
    /// scheduler re-runs it after any other process makes progress.
    Blocked,
    /// The process has completed all its work for this invocation.
    Done,
}

/// Cost of producing one output token, in cycles.
///
/// `ii` is the initiation interval — how long the stage is occupied before
/// it can accept the next input. `latency` is how long until the produced
/// token is visible downstream. A pipelined stage has `ii < latency`
/// (new inputs enter while earlier ones are still in flight); the
/// dependency-chained hazard accumulation of the paper has `ii = latency
/// = 7`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cost {
    /// Initiation interval in cycles (>= 1).
    pub ii: Cycle,
    /// Output latency in cycles (>= 1).
    pub latency: Cycle,
}

impl Cost {
    /// Construct a cost; both components are clamped to at least one
    /// cycle.
    pub const fn new(ii: Cycle, latency: Cycle) -> Self {
        Cost { ii: if ii == 0 { 1 } else { ii }, latency: if latency == 0 { 1 } else { latency } }
    }

    /// A fully-pipelined single-cycle operation.
    pub const UNIT: Cost = Cost::new(1, 1);
}

/// One dataflow function. Implementations are state machines: each `step`
/// does as much as possible at cycle `now` and reports what it is waiting
/// for.
pub trait Process {
    /// Stable display name (used in reports, traces and DOT output).
    fn name(&self) -> &str;

    /// Advance the process at cycle `now`.
    fn step(&mut self, now: Cycle) -> ProcessStatus;

    /// Streams this process reads (for topology export and diagnostics).
    fn inputs(&self) -> Vec<StreamId> {
        Vec::new()
    }

    /// Streams this process writes.
    fn outputs(&self) -> Vec<StreamId> {
        Vec::new()
    }

    /// True when the process may be treated as complete once the rest of
    /// the graph has finished and no tokens remain in flight. Passive
    /// sinks (no expected token count) and stateless pass-through stages
    /// return true; anything holding partial work must return false so
    /// genuine deadlocks are reported.
    fn can_finish(&self) -> bool {
        false
    }

    /// Reset to the initial state for a fresh region invocation
    /// (per-option dataflow mode re-launches the whole region).
    fn reset(&mut self);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_clamps_zero_components() {
        let c = Cost::new(0, 0);
        assert_eq!(c.ii, 1);
        assert_eq!(c.latency, 1);
    }

    #[test]
    fn unit_cost() {
        assert_eq!(Cost::UNIT, Cost::new(1, 1));
    }

    #[test]
    fn status_equality() {
        assert_eq!(ProcessStatus::Continue(5), ProcessStatus::Continue(5));
        assert_ne!(ProcessStatus::Continue(5), ProcessStatus::Blocked);
        assert_ne!(ProcessStatus::Blocked, ProcessStatus::Done);
    }
}
