//! Event-driven scheduler: advances time directly to the next cycle at
//! which any process can act.
//!
//! Semantics contract (shared with [`crate::cycle_sim::CycleSim`] and
//! enforced by cross-validation tests): *at every cycle where any process
//! can make progress, every process that can act does act, repeatedly,
//! until the cycle is quiescent*. The event simulator merely skips the
//! quiet cycles in between, using a heap of wake times; reachable activity
//! cycles are always present in the heap because every [`ProcessStatus`]
//! either names a future cycle or is woken by another process's progress.

use crate::fault::SharedFaults;
use crate::graph::{GraphBuilder, Pid, SimError, SimReport, StreamReport};
use crate::process::{Process, ProcessStatus};
use crate::stream::StreamStats;
use crate::Cycle;
use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::rc::Rc;

/// Default step budget — far above any legitimate engine run, so hitting
/// it indicates a live-locked process implementation.
pub const DEFAULT_MAX_EVENTS: u64 = 4_000_000_000;

/// Event-driven simulator over a built graph.
pub struct EventSim {
    processes: Vec<Box<dyn Process>>,
    streams: Vec<Rc<RefCell<dyn StreamStats>>>,
    stream_names: Vec<String>,
    version: Rc<Cell<u64>>,
    max_events: u64,
    faults: Option<SharedFaults>,
}

impl EventSim {
    /// Take ownership of a graph for execution.
    pub fn new(graph: GraphBuilder) -> Self {
        let (processes, streams, version, stream_names, faults) = graph.into_parts();
        EventSim {
            processes,
            streams,
            stream_names,
            version,
            max_events: DEFAULT_MAX_EVENTS,
            faults: faults.map(|(_, shared)| shared),
        }
    }

    /// Override the runaway-protection step budget.
    pub fn with_max_events(mut self, max_events: u64) -> Self {
        self.max_events = max_events;
        self
    }

    /// Reset every process for a fresh invocation (per-option dataflow
    /// region restart).
    pub fn reset(&mut self) {
        for p in &mut self.processes {
            p.reset();
        }
    }

    /// Run the graph to completion.
    pub fn run(&mut self) -> Result<SimReport, SimError> {
        crate::graph::validate_topology(&self.processes, &self.stream_names)?;
        let n = self.processes.len();
        let mut done = vec![false; n];
        let mut heap: BinaryHeap<Reverse<(Cycle, Pid)>> = BinaryHeap::new();
        // Most recent wake time queued per process: a busy process
        // re-reports the same `Continue(t)` on every fixpoint pass, so
        // dedupe to keep the heap small. Spurious (stale) entries are
        // harmless: stepping an idle process is a no-op.
        let mut last_queued: Vec<Cycle> = vec![Cycle::MAX; n];
        let mut now: Cycle = 0;
        let mut events: u64 = 0;
        let mut last_activity: Cycle = 0;

        // Resolve planned region deaths to process sets once, in cycle
        // order; `next_death` indexes the first not-yet-applied one.
        let deaths: Vec<(Cycle, Vec<Pid>)> = match &self.faults {
            None => Vec::new(),
            Some(shared) => {
                let state = shared.borrow();
                let mut deaths: Vec<(Cycle, Vec<Pid>)> = state
                    .deaths
                    .iter()
                    .map(|d| {
                        let pids = (0..n)
                            .filter(|&pid| self.processes[pid].name().starts_with(&d.prefix))
                            .collect();
                        (d.at_cycle, pids)
                    })
                    .collect();
                deaths.sort_by_key(|&(at, _)| at);
                deaths
            }
        };
        let mut next_death = 0usize;

        loop {
            // Apply any region death due at or before the current cycle:
            // every process of the region halts where it stands.
            while next_death < deaths.len() && deaths[next_death].0 <= now {
                for &pid in &deaths[next_death].1 {
                    done[pid] = true;
                }
                if let Some(shared) = &self.faults {
                    shared.borrow_mut().counters.region_deaths += 1;
                }
                next_death += 1;
            }

            // Fixpoint at the current cycle: step every non-done process
            // until the cycle is quiescent.
            loop {
                let before = self.version.get();
                let mut rerun_at_now = false;
                #[allow(clippy::needless_range_loop)] // pid indexes done/processes/last_queued
                for pid in 0..n {
                    if done[pid] {
                        continue;
                    }
                    events += 1;
                    if events > self.max_events {
                        return Err(SimError::Runaway { events: self.max_events });
                    }
                    match self.processes[pid].step(now) {
                        ProcessStatus::Done => {
                            done[pid] = true;
                        }
                        ProcessStatus::Continue(t) => {
                            if t <= now {
                                rerun_at_now = true;
                            } else if last_queued[pid] != t {
                                heap.push(Reverse((t, pid)));
                                last_queued[pid] = t;
                            }
                        }
                        ProcessStatus::Blocked => {}
                    }
                }
                if self.version.get() == before && !rerun_at_now {
                    break;
                }
                last_activity = if self.version.get() != before { now } else { last_activity };
            }

            if done.iter().all(|&d| d) {
                return Ok(self.report(last_activity, events));
            }

            // Advance to the next scheduled wake (skipping stale entries
            // for processes that have since completed).
            let mut next: Option<Cycle> = None;
            while let Some(&Reverse((t, pid))) = heap.peek() {
                if done[pid] || t <= now {
                    heap.pop();
                    continue;
                }
                next = Some(t);
                break;
            }
            let pending_death = deaths.get(next_death).map(|&(at, _)| at);
            match (next, pending_death) {
                (Some(t), Some(d)) => now = t.min(d),
                (Some(t), None) => now = t,
                (None, Some(d)) => now = d,
                (None, None) => {
                    // Nothing scheduled: finish if all remaining work is
                    // passively completable, else report the deadlock.
                    let all_streams_empty =
                        self.streams.iter().all(|s| s.borrow().occupancy() == 0);
                    let stuck: Vec<String> = (0..n)
                        .filter(|&pid| !done[pid] && !self.processes[pid].can_finish())
                        .map(|pid| self.processes[pid].name().to_string())
                        .collect();
                    if stuck.is_empty() && all_streams_empty {
                        return Ok(self.report(last_activity, events));
                    }
                    // Under an active fault plan, stranded work is the
                    // *expected* consequence of injected faults: terminate
                    // gracefully so the engine layer can recover.
                    let faults_applied =
                        self.faults.as_ref().is_some_and(|s| s.borrow().counters.any());
                    if faults_applied {
                        return Ok(self.report(last_activity, events));
                    }
                    let stuck = if stuck.is_empty() {
                        (0..n)
                            .filter(|&pid| !done[pid])
                            .map(|pid| self.processes[pid].name().to_string())
                            .collect()
                    } else {
                        stuck
                    };
                    return Err(SimError::Deadlock { stuck });
                }
            }
        }
    }

    fn report(&self, total_cycles: Cycle, events: u64) -> SimReport {
        SimReport {
            total_cycles,
            events,
            faults: self.faults.as_ref().map(|s| s.borrow().counters).unwrap_or_default(),
            fault_events: self
                .faults
                .as_ref()
                .map(|s| s.borrow().events.clone())
                .unwrap_or_default(),
            streams: self
                .streams
                .iter()
                .map(|s| {
                    let s = s.borrow();
                    StreamReport {
                        name: s.name().to_string(),
                        capacity: s.capacity(),
                        pushes: s.pushes(),
                        pops: s.pops(),
                        max_occupancy: s.max_occupancy(),
                        backpressure: s.backpressure(),
                    }
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    fn ok<T, E: std::fmt::Display>(r: Result<T, E>) -> T {
        match r {
            Ok(v) => v,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }

    use super::*;
    use crate::process::Cost;
    use crate::stages::{MapStage, SourceStage, ZipStage};

    #[test]
    fn source_to_sink_pipeline_timing() {
        let mut g = GraphBuilder::new();
        let (tx, rx) = g.stream::<u64>("s", 4);
        g.add(SourceStage::new("src", (0..10).collect(), Cost::new(1, 1), tx));
        let sink = g.add_counted_sink("sink", rx, 10);
        let mut sim = EventSim::new(g);
        let report = ok(sim.run());
        assert_eq!(sink.values(), (0..10).collect::<Vec<u64>>());
        // Fully pipelined: token i emitted at cycle i, visible at i+1,
        // last (i=9) consumed at cycle 10.
        assert_eq!(report.total_cycles, 10);
    }

    #[test]
    fn initiation_interval_spaces_tokens() {
        let mut g = GraphBuilder::new();
        let (tx, rx) = g.stream::<u64>("s", 4);
        // II=7 source: the dependency-chained hazard accumulation.
        g.add(SourceStage::new("src", (0..4).collect(), Cost::new(7, 7), tx));
        let sink = g.add_counted_sink("sink", rx, 4);
        let mut sim = EventSim::new(g);
        let report = ok(sim.run());
        let arrivals: Vec<Cycle> = sink.collected().iter().map(|&(_, c)| c).collect();
        assert_eq!(arrivals, vec![7, 14, 21, 28]);
        assert_eq!(report.total_cycles, 28);
    }

    #[test]
    fn map_stage_transforms_and_adds_latency() {
        let mut g = GraphBuilder::new();
        let (tx, rx) = g.stream::<u64>("in", 4);
        let (tx2, rx2) = g.stream::<u64>("out", 4);
        g.add(SourceStage::new("src", (1..=5).collect(), Cost::new(1, 1), tx));
        g.add(MapStage::new("double", rx, tx2, Some(5), |v| (v * 2, Cost::new(1, 4))));
        let sink = g.add_counted_sink("sink", rx2, 5);
        let mut sim = EventSim::new(g);
        ok(sim.run());
        assert_eq!(sink.values(), vec![2, 4, 6, 8, 10]);
    }

    #[test]
    fn backpressure_throttles_fast_producer() {
        let mut g = GraphBuilder::new();
        let (tx, rx) = g.stream::<u64>("narrow", 2);
        let (tx2, rx2) = g.stream::<u64>("out", 2);
        // Fast source into a slow (II=10) consumer through a depth-2 FIFO.
        g.add(SourceStage::new("src", (0..6).collect(), Cost::new(1, 1), tx));
        g.add(MapStage::new("slow", rx, tx2, Some(6), |v| (v, Cost::new(10, 10))));
        let sink = g.add_counted_sink("sink", rx2, 6);
        let mut sim = EventSim::new(g);
        let report = ok(sim.run());
        assert_eq!(sink.values(), (0..6).collect::<Vec<u64>>());
        // Throughput bound by the slow stage: ~6 × 10 cycles.
        assert!(report.total_cycles >= 60, "cycles = {}", report.total_cycles);
        let narrow = match report.streams.iter().find(|s| s.name == "narrow") {
            Some(s) => s,
            None => panic!("narrow stream missing from report"),
        };
        assert_eq!(narrow.max_occupancy, 2, "FIFO should have filled");
    }

    #[test]
    fn zip_waits_for_slowest_input() {
        let mut g = GraphBuilder::new();
        let (txa, rxa) = g.stream::<u64>("a", 4);
        let (txb, rxb) = g.stream::<u64>("b", 4);
        let (txo, rxo) = g.stream::<u64>("o", 4);
        g.add(SourceStage::new("fast", (0..3).collect(), Cost::new(1, 1), txa));
        g.add(SourceStage::new("slow", (0..3).collect(), Cost::new(9, 9), txb));
        g.add(ZipStage::new("add", vec![rxa, rxb], txo, Some(3), |xs| {
            (xs.iter().sum(), Cost::new(1, 1))
        }));
        let sink = g.add_counted_sink("sink", rxo, 3);
        let mut sim = EventSim::new(g);
        let report = ok(sim.run());
        assert_eq!(sink.values(), vec![0, 2, 4]);
        // Paced by the slow input: last b token at cycle 27.
        assert!(report.total_cycles >= 27);
    }

    #[test]
    fn passive_sink_finishes_with_producers() {
        let mut g = GraphBuilder::new();
        let (tx, rx) = g.stream::<u64>("s", 4);
        g.add(SourceStage::new("src", vec![1, 2, 3], Cost::new(1, 1), tx));
        let sink = g.add_collecting_sink("sink", rx);
        let mut sim = EventSim::new(g);
        ok(sim.run());
        assert_eq!(sink.values(), vec![1, 2, 3]);
    }

    #[test]
    fn deadlock_detected_for_starved_counted_sink() {
        let mut g = GraphBuilder::new();
        let (tx, rx) = g.stream::<u64>("s", 4);
        // Source provides 2 tokens but the sink expects 5.
        g.add(SourceStage::new("src", vec![1, 2], Cost::new(1, 1), tx));
        g.add_counted_sink("sink", rx, 5);
        let mut sim = EventSim::new(g);
        match sim.run() {
            Err(SimError::Deadlock { stuck }) => assert_eq!(stuck, vec!["sink".to_string()]),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn runaway_guard_trips() {
        // A self-rescheduling source with an enormous workload and a tiny
        // event budget.
        let mut g = GraphBuilder::new();
        let (tx, rx) = g.stream::<u64>("s", 4);
        g.add(SourceStage::new("src", (0..100000).collect(), Cost::new(1, 1), tx));
        g.add_counted_sink("sink", rx, 100000);
        let mut sim = EventSim::new(g).with_max_events(50);
        assert!(matches!(sim.run(), Err(SimError::Runaway { .. })));
    }

    #[test]
    fn reset_allows_second_invocation() {
        let mut g = GraphBuilder::new();
        let (tx, rx) = g.stream::<u64>("s", 4);
        g.add(SourceStage::new("src", vec![7, 8], Cost::new(1, 1), tx));
        let sink = g.add_counted_sink("sink", rx, 2);
        let mut sim = EventSim::new(g);
        let r1 = ok(sim.run());
        sim.reset();
        let r2 = ok(sim.run());
        assert_eq!(r1.total_cycles, r2.total_cycles);
        assert_eq!(sink.values(), vec![7, 8]);
    }

    #[test]
    fn stream_reports_balance() {
        let mut g = GraphBuilder::new();
        let (tx, rx) = g.stream::<u64>("s", 4);
        g.add(SourceStage::new("src", (0..20).collect(), Cost::new(1, 1), tx));
        g.add_counted_sink("sink", rx, 20);
        let mut sim = EventSim::new(g);
        let report = ok(sim.run());
        let s = &report.streams[0];
        assert_eq!(s.pushes, 20);
        assert_eq!(s.pops, 20);
        assert!(s.max_occupancy <= s.capacity);
    }
}
