//! Kernel clock model: converts simulated cycles into wall-clock time and
//! throughput figures.

use crate::Cycle;

/// A fixed-frequency kernel clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockModel {
    /// Frequency in Hz.
    pub hz: f64,
}

impl ClockModel {
    /// Construct from a frequency in MHz.
    pub fn mhz(mhz: f64) -> Self {
        assert!(mhz > 0.0, "clock frequency must be positive");
        ClockModel { hz: mhz * 1e6 }
    }

    /// The 300 MHz kernel clock typical of Alveo U280 HLS designs (the
    /// default platform kernel clock), used for every FPGA result here.
    pub fn u280_default() -> Self {
        ClockModel::mhz(300.0)
    }

    /// Seconds elapsed for a cycle count.
    pub fn seconds(&self, cycles: Cycle) -> f64 {
        cycles as f64 / self.hz
    }

    /// Items per second given total cycles for `items` items.
    pub fn throughput(&self, items: u64, cycles: Cycle) -> f64 {
        if cycles == 0 {
            return 0.0;
        }
        items as f64 / self.seconds(cycles)
    }

    /// Cycles covered by a duration in seconds (rounded up).
    pub fn cycles_for(&self, seconds: f64) -> Cycle {
        (seconds * self.hz).ceil() as Cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u280_default_is_300mhz() {
        assert_eq!(ClockModel::u280_default().hz, 300e6);
    }

    #[test]
    fn seconds_conversion() {
        let c = ClockModel::mhz(300.0);
        assert!((c.seconds(300_000_000) - 1.0).abs() < 1e-12);
        assert!((c.seconds(3_000) - 1e-5).abs() < 1e-18);
    }

    #[test]
    fn throughput_round_trip() {
        let c = ClockModel::mhz(300.0);
        // 1024 options in 30M cycles = 0.1 s → 10240 options/s.
        let t = c.throughput(1024, 30_000_000);
        assert!((t - 10240.0).abs() < 1e-9);
    }

    #[test]
    fn zero_cycles_zero_throughput() {
        assert_eq!(ClockModel::mhz(300.0).throughput(10, 0), 0.0);
    }

    #[test]
    fn cycles_for_duration_rounds_up() {
        let c = ClockModel::mhz(1.0); // 1 MHz → 1 cycle per µs
        assert_eq!(c.cycles_for(1e-6), 1);
        assert_eq!(c.cycles_for(1.5e-6), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_frequency_rejected() {
        let _ = ClockModel::mhz(0.0);
    }
}
