//! Dataflow graph construction, simulation reports, and Graphviz export.
//!
//! [`GraphBuilder`] assembles processes and the streams connecting them;
//! either scheduler ([`crate::event_sim::EventSim`] or
//! [`crate::cycle_sim::CycleSim`]) then executes the graph. The builder
//! also knows the full topology (from [`Process::inputs`] /
//! [`Process::outputs`]), which powers the DOT export used to regenerate
//! the paper's architecture figures.

use crate::fault::{FaultCounters, FaultEvent, FaultPlan, SharedFaults};
use crate::process::Process;
use crate::stages::{SinkHandle, SinkStage};
use crate::stream::{stream_pair_with_faults, StreamId, StreamReceiver, StreamSender, StreamStats};
use crate::Cycle;
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// Index of a process within its graph.
pub type Pid = usize;

/// The components a scheduler takes over from a builder.
pub(crate) type GraphParts = (
    Vec<Box<dyn Process>>,
    Vec<Rc<RefCell<dyn StreamStats>>>,
    Rc<Cell<u64>>,
    Vec<String>,
    Option<(FaultPlan, SharedFaults)>,
);

/// Builder for a dataflow graph.
pub struct GraphBuilder {
    version: Rc<Cell<u64>>,
    stream_stats: Vec<Rc<RefCell<dyn StreamStats>>>,
    stream_names: Vec<String>,
    processes: Vec<Box<dyn Process>>,
    default_depth: usize,
    faults: Option<(FaultPlan, SharedFaults)>,
}

impl Default for GraphBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl GraphBuilder {
    /// New empty graph with the Vitis default stream depth of 2.
    pub fn new() -> Self {
        GraphBuilder {
            version: Rc::new(Cell::new(0)),
            stream_stats: Vec::new(),
            stream_names: Vec::new(),
            processes: Vec::new(),
            default_depth: 2,
            faults: None,
        }
    }

    /// Install a fault-injection plan. Must be called before any stream
    /// is created, so every stream the plan targets gets its hooks.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        assert!(
            self.stream_stats.is_empty(),
            "set_fault_plan must be called before any stream is created"
        );
        let shared = plan.runtime();
        self.faults = Some((plan, shared));
    }

    /// Create a stream of the given FIFO depth, returning both endpoints.
    pub fn stream<T: 'static>(
        &mut self,
        name: impl Into<String>,
        depth: usize,
    ) -> (StreamSender<T>, StreamReceiver<T>) {
        let id: StreamId = self.stream_stats.len();
        let name = name.into();
        let hooks =
            self.faults.as_ref().and_then(|(plan, shared)| plan.hooks_for::<T>(&name, shared));
        let (tx, rx, stats) =
            stream_pair_with_faults(id, name.clone(), depth, self.version.clone(), hooks);
        self.stream_stats.push(stats);
        self.stream_names.push(name);
        (tx, rx)
    }

    /// Create a stream with the builder's default depth.
    pub fn stream_default<T: 'static>(
        &mut self,
        name: impl Into<String>,
    ) -> (StreamSender<T>, StreamReceiver<T>) {
        let depth = self.default_depth;
        self.stream(name, depth)
    }

    /// Change the default stream depth used by [`GraphBuilder::stream_default`].
    pub fn set_default_depth(&mut self, depth: usize) {
        assert!(depth >= 1);
        self.default_depth = depth;
    }

    /// Add a process to the graph.
    pub fn add<P: Process + 'static>(&mut self, process: P) -> Pid {
        self.processes.push(Box::new(process));
        self.processes.len() - 1
    }

    /// Convenience: attach a passive collecting sink (consumes one token
    /// per cycle, finishes when its producers do).
    pub fn add_collecting_sink<T: 'static>(
        &mut self,
        name: impl Into<String>,
        rx: StreamReceiver<T>,
    ) -> SinkHandle<T> {
        let (stage, handle) = SinkStage::new(name, rx, 1, None);
        self.add(stage);
        handle
    }

    /// Convenience: attach a counting sink that completes after `n`
    /// tokens.
    pub fn add_counted_sink<T: 'static>(
        &mut self,
        name: impl Into<String>,
        rx: StreamReceiver<T>,
        n: u64,
    ) -> SinkHandle<T> {
        let (stage, handle) = SinkStage::new(name, rx, 1, Some(n));
        self.add(stage);
        handle
    }

    /// Number of processes added so far.
    pub fn process_count(&self) -> usize {
        self.processes.len()
    }

    /// Read-only view of the processes (for static analysis).
    pub fn processes(&self) -> &[Box<dyn Process>] {
        &self.processes
    }

    /// Number of streams created so far.
    pub fn stream_count(&self) -> usize {
        self.stream_stats.len()
    }

    /// Render the graph topology as Graphviz DOT (used for the paper's
    /// Figures 1–3).
    pub fn to_dot(&self, title: &str) -> String {
        let mut dot = String::new();
        dot.push_str("digraph dataflow {\n");
        dot.push_str(&format!("  label=\"{title}\";\n"));
        dot.push_str("  rankdir=LR;\n  node [shape=box, style=rounded];\n");
        for (pid, p) in self.processes.iter().enumerate() {
            dot.push_str(&format!("  p{pid} [label=\"{}\"];\n", p.name()));
        }
        // Edge per stream: find its producer and consumer processes.
        for sid in 0..self.stream_stats.len() {
            let producer = self.processes.iter().position(|p| p.outputs().contains(&sid));
            let consumer = self.processes.iter().position(|p| p.inputs().contains(&sid));
            if let (Some(a), Some(b)) = (producer, consumer) {
                dot.push_str(&format!("  p{a} -> p{b} [label=\"{}\"];\n", self.stream_names[sid]));
            }
        }
        dot.push_str("}\n");
        dot
    }

    /// Decompose into the parts a scheduler needs.
    pub(crate) fn into_parts(self) -> GraphParts {
        (self.processes, self.stream_stats, self.version, self.stream_names, self.faults)
    }
}

/// Snapshot of one stream's statistics after a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamReport {
    /// Stream name.
    pub name: String,
    /// FIFO depth.
    pub capacity: usize,
    /// Total tokens pushed.
    pub pushes: u64,
    /// Total tokens popped.
    pub pops: u64,
    /// Occupancy high-water mark.
    pub max_occupancy: usize,
    /// Rejected pushes (producer found the FIFO full). Like
    /// [`SimReport::events`], this counts scheduler retry effort rather
    /// than hardware cycles, so it differs between schedulers; treat it
    /// as a stall-pressure indicator.
    pub backpressure: u64,
}

/// Outcome of a successful simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimReport {
    /// Cycle at which the final process completed.
    pub total_cycles: Cycle,
    /// Number of scheduler events processed (a measure of simulation
    /// effort, not of hardware time).
    pub events: u64,
    /// Per-stream statistics.
    pub streams: Vec<StreamReport>,
    /// Faults injected during the run (all zeros without a fault plan).
    pub faults: FaultCounters,
    /// Per-token fault records (stream, push index, kind, option
    /// identity) in injection order; empty without a fault plan.
    pub fault_events: Vec<FaultEvent>,
}

/// Simulation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// No process can make progress and at least one holds unfinished
    /// work: the graph is deadlocked (e.g. a stream depth too small for a
    /// reconvergent path). Contains the names of the stuck processes.
    Deadlock {
        /// Names of the processes that still hold work.
        stuck: Vec<String>,
    },
    /// The event budget was exhausted — almost certainly a live-lock in a
    /// process implementation.
    Runaway {
        /// The budget that was exceeded.
        events: u64,
    },
    /// The graph is mis-wired: a stream lacks a producer or consumer, or
    /// has several of either — the moral equivalent of an unconnected HLS
    /// stream port, which Vitis rejects at synthesis.
    InvalidTopology {
        /// Human-readable description of each wiring defect.
        problems: Vec<String>,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock { stuck } => write!(f, "dataflow deadlock; stuck: {stuck:?}"),
            SimError::Runaway { events } => write!(f, "simulation exceeded {events} events"),
            SimError::InvalidTopology { problems } => {
                write!(f, "invalid dataflow topology: {problems:?}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Check that every stream has exactly one producing and one consuming
/// process. Run by both schedulers before execution.
pub(crate) fn validate_topology(
    processes: &[Box<dyn Process>],
    stream_names: &[String],
) -> Result<(), SimError> {
    let n = stream_names.len();
    let mut producers = vec![0usize; n];
    let mut consumers = vec![0usize; n];
    for p in processes {
        for sid in p.outputs() {
            if sid < n {
                producers[sid] += 1;
            }
        }
        for sid in p.inputs() {
            if sid < n {
                consumers[sid] += 1;
            }
        }
    }
    let mut problems = Vec::new();
    for sid in 0..n {
        if producers[sid] != 1 {
            problems.push(format!(
                "stream '{}' has {} producers (need exactly 1)",
                stream_names[sid], producers[sid]
            ));
        }
        if consumers[sid] != 1 {
            problems.push(format!(
                "stream '{}' has {} consumers (need exactly 1)",
                stream_names[sid], consumers[sid]
            ));
        }
    }
    if problems.is_empty() {
        Ok(())
    } else {
        Err(SimError::InvalidTopology { problems })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::Cost;
    use crate::stages::SourceStage;

    #[test]
    fn builder_counts() {
        let mut g = GraphBuilder::new();
        let (tx, rx) = g.stream::<u32>("a", 2);
        g.add(SourceStage::new("src", vec![1, 2, 3], Cost::UNIT, tx));
        let _sink = g.add_counted_sink("sink", rx, 3);
        assert_eq!(g.process_count(), 2);
        assert_eq!(g.stream_count(), 1);
    }

    #[test]
    fn dot_export_contains_nodes_and_edges() {
        let mut g = GraphBuilder::new();
        let (tx, rx) = g.stream::<u32>("values", 2);
        g.add(SourceStage::new("src", vec![1], Cost::UNIT, tx));
        g.add_counted_sink("sink", rx, 1);
        let dot = g.to_dot("test graph");
        assert!(dot.starts_with("digraph dataflow {"));
        assert!(dot.contains("p0 [label=\"src\"]"));
        assert!(dot.contains("p1 [label=\"sink\"]"));
        assert!(dot.contains("p0 -> p1 [label=\"values\"]"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn default_depth_is_vitis_two() {
        let mut g = GraphBuilder::new();
        let (_tx, rx) = g.stream_default::<u32>("d");
        drop(rx);
        g.set_default_depth(8);
        let (_tx2, _rx2) = g.stream_default::<u32>("e");
        assert_eq!(g.stream_count(), 2);
    }
}
