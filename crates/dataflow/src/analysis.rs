//! Graph analysis: static structure checks and post-run performance
//! diagnosis.
//!
//! Two complementary tools an HLS designer reaches for:
//!
//! * **static**: [`topo_order`] / [`check_acyclic`] verify the region is
//!   feed-forward (HLS dataflow regions must be; a cycle means a
//!   guaranteed deadlock once FIFOs fill), and [`critical_path`] counts
//!   the longest stage chain — the pipeline fill depth;
//! * **post-run**: [`analyse_run`] turns a [`SimReport`] into the
//!   designer-facing diagnosis — which FIFOs saturated (backpressure
//!   points), which are oversized, and per-stream achieved rates — the
//!   evidence behind the paper's "stalls frequently occurred" reasoning.

use crate::graph::{GraphBuilder, SimReport};
use crate::process::Process;

/// Static structure of a graph: adjacency between processes via streams.
fn adjacency(processes: &[Box<dyn Process>]) -> Vec<Vec<usize>> {
    let n = processes.len();
    // producer_of[stream] = pid
    let mut producer_of = std::collections::HashMap::new();
    for (pid, p) in processes.iter().enumerate() {
        for sid in p.outputs() {
            producer_of.insert(sid, pid);
        }
    }
    let mut adj = vec![Vec::new(); n];
    for (pid, p) in processes.iter().enumerate() {
        for sid in p.inputs() {
            if let Some(&src) = producer_of.get(&sid) {
                adj[src].push(pid);
            }
        }
    }
    adj
}

/// Topological order of the processes, or `None` when the graph has a
/// cycle.
pub fn topo_order(graph: &GraphBuilder) -> Option<Vec<usize>> {
    let processes = graph.processes();
    let adj = adjacency(processes);
    let n = processes.len();
    let mut indegree = vec![0usize; n];
    for targets in &adj {
        for &t in targets {
            indegree[t] += 1;
        }
    }
    let mut queue: std::collections::VecDeque<usize> =
        (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(pid) = queue.pop_front() {
        order.push(pid);
        for &t in &adj[pid] {
            indegree[t] -= 1;
            if indegree[t] == 0 {
                queue.push_back(t);
            }
        }
    }
    (order.len() == n).then_some(order)
}

/// True when the graph is feed-forward (no cycles) — a requirement for
/// HLS dataflow regions.
pub fn check_acyclic(graph: &GraphBuilder) -> bool {
    topo_order(graph).is_some()
}

/// Length (in stages) of the longest producer→consumer chain: the
/// pipeline's fill depth.
pub fn critical_path(graph: &GraphBuilder) -> usize {
    let Some(order) = topo_order(graph) else {
        return 0;
    };
    let processes = graph.processes();
    let adj = adjacency(processes);
    let mut depth = vec![1usize; processes.len()];
    for &pid in &order {
        for &t in &adj[pid] {
            depth[t] = depth[t].max(depth[pid] + 1);
        }
    }
    depth.into_iter().max().unwrap_or(0)
}

/// Diagnosis of one stream after a run.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamDiagnosis {
    /// Stream name.
    pub name: String,
    /// Tokens moved.
    pub tokens: u64,
    /// Whether the FIFO ever filled (a backpressure point).
    pub saturated: bool,
    /// Peak occupancy over configured depth.
    pub peak_fill: f64,
    /// Achieved tokens per kilocycle.
    pub tokens_per_kcycle: f64,
}

/// Whole-run diagnosis.
#[derive(Debug, Clone, PartialEq)]
pub struct RunAnalysis {
    /// Per-stream details, in stream order.
    pub streams: Vec<StreamDiagnosis>,
    /// Names of FIFOs that filled — where backpressure originated.
    pub saturated: Vec<String>,
    /// Names of FIFOs whose peak occupancy never exceeded half their
    /// depth (candidates for shrinking, saving BRAM).
    pub oversized: Vec<String>,
}

/// Analyse a completed run's report.
pub fn analyse_run(report: &SimReport) -> RunAnalysis {
    let total = report.total_cycles.max(1) as f64;
    let mut streams = Vec::with_capacity(report.streams.len());
    let mut saturated = Vec::new();
    let mut oversized = Vec::new();
    for s in &report.streams {
        let is_sat = s.max_occupancy >= s.capacity;
        if is_sat {
            saturated.push(s.name.clone());
        } else if s.capacity > 2 && (s.max_occupancy as f64) <= s.capacity as f64 / 2.0 {
            oversized.push(s.name.clone());
        }
        streams.push(StreamDiagnosis {
            name: s.name.clone(),
            tokens: s.pops,
            saturated: is_sat,
            peak_fill: s.max_occupancy as f64 / s.capacity as f64,
            tokens_per_kcycle: s.pops as f64 * 1000.0 / total,
        });
    }
    RunAnalysis { streams, saturated, oversized }
}

impl RunAnalysis {
    /// Render a compact designer-facing report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let name_w = self.streams.iter().map(|s| s.name.len()).max().unwrap_or(6).max(6);
        out.push_str(&format!(
            "{:<name_w$} {:>8} {:>10} {:>10}  flags\n",
            "stream", "tokens", "peak fill", "tok/kcyc"
        ));
        for s in &self.streams {
            out.push_str(&format!(
                "{:<name_w$} {:>8} {:>9.0}% {:>10.2}  {}\n",
                s.name,
                s.tokens,
                s.peak_fill * 100.0,
                s.tokens_per_kcycle,
                if s.saturated { "SATURATED" } else { "" }
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event_sim::EventSim;
    use crate::process::Cost;
    use crate::stages::{MapStage, SourceStage};

    fn chain(stages: usize) -> GraphBuilder {
        let mut g = GraphBuilder::new();
        let (tx, mut rx) = g.stream::<u64>("s0", 2);
        g.add(SourceStage::new("src", (0..10).collect(), Cost::UNIT, tx));
        for i in 0..stages {
            let (t, r) = g.stream::<u64>(format!("s{}", i + 1), 2);
            g.add(MapStage::new(format!("m{i}"), rx, t, Some(10), |v| (v, Cost::UNIT)));
            rx = r;
        }
        g.add_counted_sink("sink", rx, 10);
        g
    }

    #[test]
    fn chain_is_acyclic_with_expected_depth() {
        let g = chain(3);
        assert!(check_acyclic(&g));
        // src + 3 maps + sink.
        assert_eq!(critical_path(&g), 5);
        let order = topo_order(&g).unwrap();
        assert_eq!(order[0], 0, "source first");
        assert_eq!(*order.last().unwrap(), 4, "sink last");
    }

    #[test]
    fn cds_engine_style_fanout_is_acyclic() {
        // Diamond: src → a, src→... simplified: one source feeding two
        // maps joined by sink counts.
        let mut g = GraphBuilder::new();
        let (tx, rx) = g.stream::<u64>("in", 2);
        let (ta, ra) = g.stream::<u64>("a", 2);
        g.add(SourceStage::new("src", (0..4).collect(), Cost::UNIT, tx));
        g.add(MapStage::new("m", rx, ta, Some(4), |v| (v, Cost::UNIT)));
        g.add_counted_sink("sink", ra, 4);
        assert!(check_acyclic(&g));
        assert_eq!(critical_path(&g), 3);
    }

    #[test]
    fn backpressure_shows_as_saturation() {
        let mut g = GraphBuilder::new();
        let (tx, rx) = g.stream::<u64>("narrow", 2);
        let (t2, r2) = g.stream::<u64>("out", 8);
        g.add(SourceStage::new("fast", (0..20).collect(), Cost::UNIT, tx));
        g.add(MapStage::new("slow", rx, t2, Some(20), |v| (v, Cost::new(9, 9))));
        g.add_counted_sink("sink", r2, 20);
        let report = EventSim::new(g).run().unwrap();
        let analysis = analyse_run(&report);
        assert!(analysis.saturated.contains(&"narrow".to_string()));
        assert!(analysis.oversized.contains(&"out".to_string()));
        let rendered = analysis.render();
        assert!(rendered.contains("SATURATED"));
        assert!(rendered.contains("narrow"));
    }

    #[test]
    fn rates_reflect_traffic() {
        let g = chain(1);
        let report = EventSim::new(g).run().unwrap();
        let analysis = analyse_run(&report);
        for s in &analysis.streams {
            assert_eq!(s.tokens, 10);
            assert!(s.tokens_per_kcycle > 0.0);
        }
    }
}
