//! HLS stream model: bounded FIFOs with cycle-stamped availability and
//! backpressure.
//!
//! An `hls::stream` in Vitis is a hardware FIFO of configurable depth.
//! Writing into a full stream stalls the producer; reading from an empty
//! stream stalls the consumer; a written value becomes visible to the
//! consumer after the producer's pipeline latency. [`StreamSender`] /
//! [`StreamReceiver`] reproduce those semantics for the simulator's
//! processes.

use crate::fault::StreamFaultHooks;
use crate::Cycle;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;

/// Identifier of a stream within one graph.
pub type StreamId = usize;

/// Result of polling a stream for a token at a given cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadPoll<T> {
    /// A token was available and has been consumed.
    Ready(T),
    /// The FIFO holds a token but it only becomes visible at the given
    /// cycle (producer latency has not yet elapsed).
    NotUntil(Cycle),
    /// The FIFO is empty.
    Empty,
}

#[derive(Debug)]
struct StreamCore<T> {
    name: String,
    capacity: usize,
    queue: VecDeque<(T, Cycle)>,
    pushes: u64,
    pops: u64,
    max_occupancy: usize,
    backpressure: u64,
    /// Global activity version, shared across the graph; bumped on every
    /// push/pop so schedulers know progress happened.
    version: Rc<Cell<u64>>,
    /// Push-time fault hooks, present only when a fault plan targets this
    /// stream — the fault-free fast path pays a single `Option` check.
    faults: Option<StreamFaultHooks<T>>,
}

/// Occupancy and traffic statistics of one stream, type-erased for
/// reporting.
pub trait StreamStats {
    /// Stream name given at construction.
    fn name(&self) -> &str;
    /// Configured FIFO depth.
    fn capacity(&self) -> usize;
    /// Total tokens pushed.
    fn pushes(&self) -> u64;
    /// Total tokens popped.
    fn pops(&self) -> u64;
    /// High-water mark of occupancy.
    fn max_occupancy(&self) -> usize;
    /// Number of rejected pushes (producer found the FIFO full). Counts
    /// stall-retry attempts, so the value depends on how often the
    /// scheduler re-steps a blocked producer — a stall-pressure signal,
    /// not a hardware cycle count.
    fn backpressure(&self) -> u64;
    /// Tokens currently in flight.
    fn occupancy(&self) -> usize;
    /// Earliest availability cycle of the head token, if any.
    fn head_available_at(&self) -> Option<Cycle>;
}

impl<T> StreamStats for StreamCore<T> {
    fn name(&self) -> &str {
        &self.name
    }
    fn capacity(&self) -> usize {
        self.capacity
    }
    fn pushes(&self) -> u64 {
        self.pushes
    }
    fn pops(&self) -> u64 {
        self.pops
    }
    fn max_occupancy(&self) -> usize {
        self.max_occupancy
    }
    fn backpressure(&self) -> u64 {
        self.backpressure
    }
    fn occupancy(&self) -> usize {
        self.queue.len()
    }
    fn head_available_at(&self) -> Option<Cycle> {
        self.queue.front().map(|(_, avail)| *avail)
    }
}

/// Producer endpoint of a stream.
#[derive(Debug)]
pub struct StreamSender<T> {
    id: StreamId,
    core: Rc<RefCell<StreamCore<T>>>,
}

/// Consumer endpoint of a stream.
#[derive(Debug)]
pub struct StreamReceiver<T> {
    id: StreamId,
    core: Rc<RefCell<StreamCore<T>>>,
}

/// Create a connected sender/receiver pair.
///
/// `version` is the graph-wide activity counter; `depth` must be at least
/// one (HLS streams always hold at least one element).
pub fn stream_pair<T>(
    id: StreamId,
    name: impl Into<String>,
    depth: usize,
    version: Rc<Cell<u64>>,
) -> (StreamSender<T>, StreamReceiver<T>, Rc<RefCell<dyn StreamStats>>)
where
    T: 'static,
{
    stream_pair_with_faults(id, name, depth, version, None)
}

/// [`stream_pair`] with optional fault-injection hooks attached (used by
/// [`crate::graph::GraphBuilder`] when a fault plan is installed).
pub(crate) fn stream_pair_with_faults<T>(
    id: StreamId,
    name: impl Into<String>,
    depth: usize,
    version: Rc<Cell<u64>>,
    faults: Option<StreamFaultHooks<T>>,
) -> (StreamSender<T>, StreamReceiver<T>, Rc<RefCell<dyn StreamStats>>)
where
    T: 'static,
{
    assert!(depth >= 1, "stream depth must be >= 1");
    let core = Rc::new(RefCell::new(StreamCore {
        name: name.into(),
        capacity: depth,
        queue: VecDeque::with_capacity(depth),
        pushes: 0,
        pops: 0,
        max_occupancy: 0,
        backpressure: 0,
        version,
        faults,
    }));
    let stats: Rc<RefCell<dyn StreamStats>> = core.clone();
    (StreamSender { id, core: core.clone() }, StreamReceiver { id, core }, stats)
}

impl<T> StreamSender<T> {
    /// The stream's graph-local identifier.
    #[inline]
    pub fn id(&self) -> StreamId {
        self.id
    }

    /// Attempt to push `value` at cycle `now`; it becomes visible to the
    /// consumer at `now + latency` (clamped to at least one cycle, since
    /// hardware FIFO writes register). When the FIFO is full the value is
    /// handed back in `Err` — the producer must stall and retry.
    pub fn try_push(&self, now: Cycle, value: T, latency: Cycle) -> Result<(), T> {
        let mut core = self.core.borrow_mut();
        if core.queue.len() >= core.capacity {
            core.backpressure += 1;
            return Err(value);
        }
        let avail = now + latency.max(1);
        let (value, avail, dropped) = match &core.faults {
            None => (value, avail, false),
            Some(hooks) => {
                let idx = core.pushes;
                let mut value = value;
                let mut avail = avail;
                let mut injected = crate::fault::FaultCounters::default();
                let mut kinds: Vec<crate::fault::FaultKind> = Vec::new();
                // Identity is extracted before any mutation: a corrupt
                // fault may damage the very field that names the option.
                let opt_idx = hooks.ident.as_ref().and_then(|f| f(&value));
                for &(tokens, extra) in &hooks.stalls {
                    if idx < tokens {
                        avail += extra;
                        injected.stage_stalls += 1;
                        kinds.push(crate::fault::FaultKind::Stall);
                    }
                }
                let dropped = hooks.drops.contains(&idx);
                if dropped {
                    injected.dropped_tokens += 1;
                    kinds.push(crate::fault::FaultKind::Drop);
                } else {
                    for (nth, mutate) in &hooks.corrupts {
                        if *nth == idx {
                            value = mutate(value);
                            injected.corrupted_tokens += 1;
                            kinds.push(crate::fault::FaultKind::Corrupt);
                        }
                    }
                }
                if injected.any() {
                    let mut shared = hooks.shared.borrow_mut();
                    shared.counters.absorb(&injected);
                    for kind in kinds {
                        shared.events.push(crate::fault::FaultEvent {
                            stream: core.name.clone(),
                            token: idx,
                            kind,
                            opt_idx,
                        });
                    }
                }
                // A stalled token may not overtake an earlier, later-stalled
                // one: hardware FIFOs preserve order.
                if let Some((_, back)) = core.queue.back() {
                    avail = avail.max(*back);
                }
                (value, avail, dropped)
            }
        };
        if dropped {
            core.pushes += 1;
            core.version.set(core.version.get() + 1);
            return Ok(());
        }
        debug_assert!(
            core.queue.back().map(|(_, a)| *a <= avail).unwrap_or(true),
            "stream '{}' tokens must become available in FIFO order",
            core.name
        );
        core.queue.push_back((value, avail));
        let occ = core.queue.len();
        core.max_occupancy = core.max_occupancy.max(occ);
        core.pushes += 1;
        core.version.set(core.version.get() + 1);
        Ok(())
    }

    /// True when a push would currently fail.
    pub fn is_full(&self) -> bool {
        let core = self.core.borrow();
        core.queue.len() >= core.capacity
    }
}

impl<T> StreamReceiver<T> {
    /// The stream's graph-local identifier.
    #[inline]
    pub fn id(&self) -> StreamId {
        self.id
    }

    /// Poll for a token at cycle `now`.
    pub fn poll(&self, now: Cycle) -> ReadPoll<T> {
        let mut core = self.core.borrow_mut();
        match core.queue.front() {
            None => ReadPoll::Empty,
            Some((_, avail)) if *avail > now => ReadPoll::NotUntil(*avail),
            Some(_) => match core.queue.pop_front() {
                Some((value, _)) => {
                    core.pops += 1;
                    core.version.set(core.version.get() + 1);
                    ReadPoll::Ready(value)
                }
                None => unreachable!("front checked above"),
            },
        }
    }

    /// When the head token (if any) becomes readable, without consuming.
    pub fn peek_available(&self) -> Option<Cycle> {
        self.core.borrow().head_available_at()
    }

    /// True when the FIFO holds no tokens at all (readable or not).
    pub fn is_empty(&self) -> bool {
        self.core.borrow().queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(depth: usize) -> (StreamSender<u32>, StreamReceiver<u32>) {
        let v = Rc::new(Cell::new(0));
        let (tx, rx, _) = stream_pair(0, "t", depth, v);
        (tx, rx)
    }

    #[test]
    fn fifo_order_preserved() {
        let (tx, rx) = pair(8);
        for i in 0..5 {
            assert!(tx.try_push(0, i, 1).is_ok());
        }
        for i in 0..5 {
            assert_eq!(rx.poll(10), ReadPoll::Ready(i));
        }
        assert_eq!(rx.poll(10), ReadPoll::Empty);
    }

    #[test]
    fn capacity_enforced() {
        let (tx, rx) = pair(2);
        assert!(tx.try_push(0, 1, 1).is_ok());
        assert!(tx.try_push(0, 2, 1).is_ok());
        assert_eq!(tx.try_push(0, 3, 1), Err(3));
        assert!(tx.is_full());
        assert_eq!(rx.poll(5), ReadPoll::Ready(1));
        assert!(tx.try_push(5, 3, 1).is_ok());
    }

    #[test]
    fn backpressure_counts_rejected_pushes() {
        let v = Rc::new(Cell::new(0));
        let (tx, rx, stats) = stream_pair::<u32>(0, "bp", 1, v);
        assert!(tx.try_push(0, 1, 1).is_ok());
        assert_eq!(tx.try_push(0, 2, 1), Err(2));
        assert_eq!(tx.try_push(1, 2, 1), Err(2));
        assert_eq!(stats.borrow().backpressure(), 2);
        assert_eq!(rx.poll(5), ReadPoll::Ready(1));
        assert!(tx.try_push(5, 2, 1).is_ok());
        assert_eq!(stats.borrow().backpressure(), 2);
    }

    #[test]
    fn latency_delays_visibility() {
        let (tx, rx) = pair(4);
        assert!(tx.try_push(10, 42, 7).is_ok());
        assert_eq!(rx.poll(10), ReadPoll::NotUntil(17));
        assert_eq!(rx.poll(16), ReadPoll::NotUntil(17));
        assert_eq!(rx.poll(17), ReadPoll::Ready(42));
    }

    #[test]
    fn zero_latency_clamped_to_one() {
        let (tx, rx) = pair(4);
        assert!(tx.try_push(10, 1, 0).is_ok());
        assert_eq!(rx.poll(10), ReadPoll::NotUntil(11));
        assert_eq!(rx.poll(11), ReadPoll::Ready(1));
    }

    #[test]
    fn version_bumps_on_activity() {
        let v = Rc::new(Cell::new(0));
        let (tx, rx, _) = stream_pair::<u32>(0, "t", 4, v.clone());
        assert!(tx.try_push(0, 1, 1).is_ok());
        assert_eq!(v.get(), 1);
        let _ = rx.poll(2);
        assert_eq!(v.get(), 2);
    }

    #[test]
    fn stats_track_traffic() {
        let v = Rc::new(Cell::new(0));
        let (tx, rx, stats) = stream_pair::<u32>(3, "traffic", 4, v);
        for i in 0..3 {
            assert!(tx.try_push(0, i, 1).is_ok());
        }
        let _ = rx.poll(5);
        let s = stats.borrow();
        assert_eq!(s.name(), "traffic");
        assert_eq!(s.pushes(), 3);
        assert_eq!(s.pops(), 1);
        assert_eq!(s.max_occupancy(), 3);
        assert_eq!(s.occupancy(), 2);
        assert_eq!(s.capacity(), 4);
    }

    #[test]
    #[should_panic(expected = "depth must be >= 1")]
    fn zero_depth_rejected() {
        let v = Rc::new(Cell::new(0));
        let _ = stream_pair::<u32>(0, "bad", 0, v);
    }
}
