//! FPGA resource model: device budgets, per-operator costs, and fit
//! checking.
//!
//! The paper's scaling experiment is resource-gated: "we scaled up the
//! number of CDS engines on the FPGA, being able to fit five onto the
//! Alveo U280", with the replicated stages requiring "additional logic …
//! and also additional dual-ported URAM storing the hazard and interest
//! rate constant data". This module provides the U280 budget, approximate
//! per-operator double-precision costs (from Vitis HLS operator tables),
//! and the accounting used to enforce the five-engine limit.

/// Resources consumed by a kernel or available on a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResourceUsage {
    /// Look-up tables.
    pub luts: u64,
    /// Flip-flops.
    pub ffs: u64,
    /// DSP48 slices.
    pub dsps: u64,
    /// BRAM tiles (18 Kb halves).
    pub bram_18k: u64,
    /// UltraRAM blocks (288 Kb each).
    pub uram: u64,
}

impl ResourceUsage {
    /// Component-wise sum.
    pub fn plus(self, other: ResourceUsage) -> ResourceUsage {
        ResourceUsage {
            luts: self.luts + other.luts,
            ffs: self.ffs + other.ffs,
            dsps: self.dsps + other.dsps,
            bram_18k: self.bram_18k + other.bram_18k,
            uram: self.uram + other.uram,
        }
    }

    /// Scale by an integer replication factor.
    pub fn times(self, n: u64) -> ResourceUsage {
        ResourceUsage {
            luts: self.luts * n,
            ffs: self.ffs * n,
            dsps: self.dsps * n,
            bram_18k: self.bram_18k * n,
            uram: self.uram * n,
        }
    }

    /// Component-wise `<=`.
    pub fn fits_in(self, budget: ResourceUsage) -> bool {
        self.luts <= budget.luts
            && self.ffs <= budget.ffs
            && self.dsps <= budget.dsps
            && self.bram_18k <= budget.bram_18k
            && self.uram <= budget.uram
    }

    /// Largest utilisation fraction across components (1.0 = full).
    pub fn utilisation_of(self, budget: ResourceUsage) -> f64 {
        let frac = |a: u64, b: u64| if b == 0 { 0.0 } else { a as f64 / b as f64 };
        [
            frac(self.luts, budget.luts),
            frac(self.ffs, budget.ffs),
            frac(self.dsps, budget.dsps),
            frac(self.bram_18k, budget.bram_18k),
            frac(self.uram, budget.uram),
        ]
        .into_iter()
        .fold(0.0, f64::max)
    }
}

/// Approximate Vitis HLS resource costs of double-precision operators
/// (per instance), used to account for the replicated stages.
pub mod op_cost {
    use super::ResourceUsage;

    /// Double-precision adder/subtractor.
    pub const DADD: ResourceUsage =
        ResourceUsage { luts: 700, ffs: 1100, dsps: 3, bram_18k: 0, uram: 0 };
    /// Double-precision multiplier.
    pub const DMUL: ResourceUsage =
        ResourceUsage { luts: 300, ffs: 600, dsps: 11, bram_18k: 0, uram: 0 };
    /// Double-precision divider.
    pub const DDIV: ResourceUsage =
        ResourceUsage { luts: 3200, ffs: 6400, dsps: 0, bram_18k: 0, uram: 0 };
    /// Double-precision exponential (CORDIC/polynomial core).
    pub const DEXP: ResourceUsage =
        ResourceUsage { luts: 5000, ffs: 7500, dsps: 26, bram_18k: 4, uram: 0 };
    /// Control logic and FIFOs of one dataflow stage.
    pub const STAGE_OVERHEAD: ResourceUsage =
        ResourceUsage { luts: 1500, ffs: 2500, dsps: 0, bram_18k: 2, uram: 0 };

    /// Single-precision adder/subtractor.
    pub const SADD: ResourceUsage =
        ResourceUsage { luts: 390, ffs: 600, dsps: 2, bram_18k: 0, uram: 0 };
    /// Single-precision multiplier.
    pub const SMUL: ResourceUsage =
        ResourceUsage { luts: 150, ffs: 300, dsps: 3, bram_18k: 0, uram: 0 };
    /// Single-precision exponential core.
    pub const SEXP: ResourceUsage =
        ResourceUsage { luts: 2500, ffs: 4000, dsps: 13, bram_18k: 2, uram: 0 };
}

/// An FPGA device with a resource budget and a platform-region reservation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Device {
    /// Marketing name.
    pub name: &'static str,
    /// Total on-chip resources.
    pub total: ResourceUsage,
    /// Fraction of the device consumed by the shell/platform region and
    /// routing headroom, unavailable to user kernels.
    pub platform_reserved: f64,
}

impl Device {
    /// The Xilinx Alveo U280 used throughout the paper: "1.3 million
    /// LUTs, 4.5MB of BRAM, 30MB of UltraRAM, and 9024 DSP slices",
    /// plus 8 GB HBM2.
    pub fn alveo_u280() -> Device {
        Device {
            name: "Alveo U280",
            total: ResourceUsage {
                luts: 1_304_000,
                ffs: 2_607_000,
                dsps: 9_024,
                // 4.5 MB BRAM = 2016 × 18 Kb tiles; 30 MB URAM = 960 blocks.
                bram_18k: 4032,
                uram: 960,
            },
            // Shell + achievable-routing headroom, typical for U280 HLS
            // designs.
            platform_reserved: 0.25,
        }
    }

    /// Budget available to user kernels after the platform reservation.
    pub fn usable(&self) -> ResourceUsage {
        let f = 1.0 - self.platform_reserved;
        ResourceUsage {
            luts: (self.total.luts as f64 * f) as u64,
            ffs: (self.total.ffs as f64 * f) as u64,
            dsps: (self.total.dsps as f64 * f) as u64,
            bram_18k: (self.total.bram_18k as f64 * f) as u64,
            uram: (self.total.uram as f64 * f) as u64,
        }
    }

    /// Greatest number of identical kernels that fit.
    pub fn max_instances(&self, per_kernel: ResourceUsage) -> u64 {
        let usable = self.usable();
        let div = |budget: u64, need: u64| budget.checked_div(need).unwrap_or(u64::MAX);
        [
            div(usable.luts, per_kernel.luts),
            div(usable.ffs, per_kernel.ffs),
            div(usable.dsps, per_kernel.dsps),
            div(usable.bram_18k, per_kernel.bram_18k),
            div(usable.uram, per_kernel.uram),
        ]
        .into_iter()
        .min()
        .unwrap_or(0)
    }
}

/// URAM blocks needed to hold `entries` curve knots of `(f64 tenor, f64
/// value)` pairs, dual-ported and replicated `copies` times (the
/// vectorised engine gives each replica its own port pair: "additional
/// dual-ported URAM storing the hazard and interest rate constant data").
pub fn uram_for_curve(entries: usize, copies: usize) -> u64 {
    // One URAM block = 288 Kb = 4096 × 72 bit words; a knot pair is 128
    // bits ⇒ 2 words per knot.
    let words = (entries * 2) as u64;
    let blocks_per_copy = words.div_ceil(4096).max(1);
    blocks_per_copy * copies as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u280_budget_matches_paper_description() {
        let d = Device::alveo_u280();
        assert_eq!(d.total.luts, 1_304_000);
        assert_eq!(d.total.dsps, 9_024);
        // 4.5 MB of BRAM in 18 Kb tiles.
        assert_eq!(d.total.bram_18k as f64 * 18.0 * 1024.0 / 8.0 / 1e6, 9.289728);
        // 30 MB of URAM in 288 Kb blocks.
        let uram_mb = d.total.uram as f64 * 288.0 * 1024.0 / 8.0 / 1e6;
        assert!((uram_mb - 35.4).abs() < 1.0, "uram {uram_mb} MB");
    }

    #[test]
    fn usable_less_than_total() {
        let d = Device::alveo_u280();
        assert!(d.usable().luts < d.total.luts);
        assert!(d.usable().fits_in(d.total));
    }

    #[test]
    fn arithmetic_composition() {
        let a = op_cost::DADD.plus(op_cost::DMUL);
        assert_eq!(a.dsps, 14);
        let b = op_cost::DADD.times(3);
        assert_eq!(b.dsps, 9);
        assert_eq!(b.luts, 2100);
    }

    #[test]
    fn fit_checking() {
        let small = ResourceUsage { luts: 10, ffs: 10, dsps: 1, bram_18k: 0, uram: 0 };
        let big = ResourceUsage { luts: 100, ffs: 100, dsps: 10, bram_18k: 5, uram: 5 };
        assert!(small.fits_in(big));
        assert!(!big.fits_in(small));
    }

    #[test]
    fn utilisation_is_max_component() {
        let use_ = ResourceUsage { luts: 50, ffs: 10, dsps: 9, bram_18k: 0, uram: 0 };
        let budget = ResourceUsage { luts: 100, ffs: 100, dsps: 10, bram_18k: 10, uram: 10 };
        assert!((use_.utilisation_of(budget) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn max_instances_limited_by_scarcest_resource() {
        let d = Device::alveo_u280();
        let kernel =
            ResourceUsage { luts: 100_000, ffs: 100_000, dsps: 2000, bram_18k: 100, uram: 50 };
        // DSPs are the limit: usable 6768 / 2000 = 3.
        assert_eq!(d.max_instances(kernel), 3);
    }

    #[test]
    fn uram_for_paper_curves() {
        // 1024 knots = 2048 words → one block per copy.
        assert_eq!(uram_for_curve(1024, 1), 1);
        assert_eq!(uram_for_curve(1024, 6), 6);
        // 4096 knots = 8192 words → two blocks per copy.
        assert_eq!(uram_for_curve(4096, 2), 4);
    }

    #[test]
    fn zero_requirement_never_limits() {
        let d = Device::alveo_u280();
        let kernel = ResourceUsage { luts: 1000, ffs: 0, dsps: 0, bram_18k: 0, uram: 0 };
        assert!(d.max_instances(kernel) > 100);
    }
}
