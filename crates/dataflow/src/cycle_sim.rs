//! Cycle-stepped reference scheduler.
//!
//! Executes the same process model as [`crate::event_sim::EventSim`] by
//! the most literal method possible: visit **every** cycle, and at each
//! cycle step every non-done process to a fixpoint. This is slow (cost
//! proportional to total cycles × processes) but trivially correct, and
//! exists purely to cross-validate the event-driven scheduler: property
//! tests assert both produce identical values, identical token counts and
//! identical completion cycles on randomly generated graphs.

use crate::fault::SharedFaults;
use crate::graph::{GraphBuilder, SimError, SimReport, StreamReport};
use crate::process::{Process, ProcessStatus};
use crate::stream::StreamStats;
use crate::Cycle;
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// Default cycle budget; the reference simulator is only meant for small
/// validation graphs.
pub const DEFAULT_MAX_CYCLES: Cycle = 50_000_000;

/// Naive cycle-by-cycle simulator over a built graph.
pub struct CycleSim {
    processes: Vec<Box<dyn Process>>,
    streams: Vec<Rc<RefCell<dyn StreamStats>>>,
    stream_names: Vec<String>,
    version: Rc<Cell<u64>>,
    max_cycles: Cycle,
    faults: Option<SharedFaults>,
}

impl CycleSim {
    /// Take ownership of a graph for execution.
    pub fn new(graph: GraphBuilder) -> Self {
        let (processes, streams, version, stream_names, faults) = graph.into_parts();
        CycleSim {
            processes,
            streams,
            stream_names,
            version,
            max_cycles: DEFAULT_MAX_CYCLES,
            faults: faults.map(|(_, shared)| shared),
        }
    }

    /// Override the cycle budget.
    pub fn with_max_cycles(mut self, max_cycles: Cycle) -> Self {
        self.max_cycles = max_cycles;
        self
    }

    /// Run the graph to completion.
    pub fn run(&mut self) -> Result<SimReport, SimError> {
        crate::graph::validate_topology(&self.processes, &self.stream_names)?;
        let n = self.processes.len();
        let mut done = vec![false; n];
        let mut events: u64 = 0;
        let mut last_activity: Cycle = 0;
        // Planned region deaths, resolved to process sets, cycle-ordered.
        let deaths: Vec<(Cycle, Vec<usize>)> = match &self.faults {
            None => Vec::new(),
            Some(shared) => {
                let state = shared.borrow();
                let mut deaths: Vec<(Cycle, Vec<usize>)> = state
                    .deaths
                    .iter()
                    .map(|d| {
                        let pids = (0..n)
                            .filter(|&pid| self.processes[pid].name().starts_with(&d.prefix))
                            .collect();
                        (d.at_cycle, pids)
                    })
                    .collect();
                deaths.sort_by_key(|&(at, _)| at);
                deaths
            }
        };
        let mut next_death = 0usize;
        for now in 0..=self.max_cycles {
            while next_death < deaths.len() && deaths[next_death].0 <= now {
                for &pid in &deaths[next_death].1 {
                    done[pid] = true;
                }
                if let Some(shared) = &self.faults {
                    shared.borrow_mut().counters.region_deaths += 1;
                }
                next_death += 1;
            }
            let mut min_wake: Option<Cycle>;
            let mut any_blocked;
            loop {
                let before = self.version.get();
                let mut rerun = false;
                min_wake = None;
                any_blocked = false;
                #[allow(clippy::needless_range_loop)] // pid indexes both `done` and `processes`
                for pid in 0..n {
                    if done[pid] {
                        continue;
                    }
                    events += 1;
                    match self.processes[pid].step(now) {
                        ProcessStatus::Done => done[pid] = true,
                        ProcessStatus::Continue(t) => {
                            if t <= now {
                                rerun = true;
                            } else {
                                min_wake = Some(min_wake.map_or(t, |w| w.min(t)));
                            }
                        }
                        ProcessStatus::Blocked => any_blocked = true,
                    }
                }
                if self.version.get() != before {
                    last_activity = now;
                } else if !rerun {
                    break;
                }
            }
            if done.iter().all(|&d| d) {
                return Ok(self.report(last_activity, events));
            }
            if min_wake.is_none() {
                // A region death still lies ahead: keep stepping cycles
                // until it fires and changes the picture.
                if next_death < deaths.len() {
                    continue;
                }
                // No process has a future wake: either everything left is
                // passively completable, or we are deadlocked.
                debug_assert!(any_blocked);
                let all_streams_empty = self.streams.iter().all(|s| s.borrow().occupancy() == 0);
                let stuck: Vec<String> = (0..n)
                    .filter(|&pid| !done[pid] && !self.processes[pid].can_finish())
                    .map(|pid| self.processes[pid].name().to_string())
                    .collect();
                if stuck.is_empty() && all_streams_empty {
                    return Ok(self.report(last_activity, events));
                }
                // Stranded work under an active fault plan terminates
                // gracefully (mirrors the event scheduler).
                if self.faults.as_ref().is_some_and(|s| s.borrow().counters.any()) {
                    return Ok(self.report(last_activity, events));
                }
                let stuck = if stuck.is_empty() {
                    (0..n)
                        .filter(|&pid| !done[pid])
                        .map(|pid| self.processes[pid].name().to_string())
                        .collect()
                } else {
                    stuck
                };
                return Err(SimError::Deadlock { stuck });
            }
        }
        Err(SimError::Runaway { events })
    }

    fn report(&self, total_cycles: Cycle, events: u64) -> SimReport {
        SimReport {
            total_cycles,
            events,
            faults: self.faults.as_ref().map(|s| s.borrow().counters).unwrap_or_default(),
            fault_events: self
                .faults
                .as_ref()
                .map(|s| s.borrow().events.clone())
                .unwrap_or_default(),
            streams: self
                .streams
                .iter()
                .map(|s| {
                    let s = s.borrow();
                    StreamReport {
                        name: s.name().to_string(),
                        capacity: s.capacity(),
                        pushes: s.pushes(),
                        pops: s.pops(),
                        max_occupancy: s.max_occupancy(),
                        backpressure: s.backpressure(),
                    }
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event_sim::EventSim;
    use crate::process::Cost;
    use crate::stages::{MapStage, SourceStage};

    /// Build the same three-stage pipeline twice and check the two
    /// schedulers agree exactly.
    fn build(
        ii: u64,
        latency: u64,
        depth: usize,
        n: u64,
    ) -> (GraphBuilder, crate::stages::SinkHandle<u64>) {
        let mut g = GraphBuilder::new();
        let (tx, rx) = g.stream::<u64>("in", depth);
        let (tx2, rx2) = g.stream::<u64>("out", depth);
        g.add(SourceStage::new("src", (0..n).collect(), Cost::new(1, 1), tx));
        g.add(MapStage::new("work", rx, tx2, Some(n), move |v| (v + 1, Cost::new(ii, latency))));
        let sink = g.add_counted_sink("sink", rx2, n);
        (g, sink)
    }

    #[test]
    fn agrees_with_event_sim_on_pipeline() {
        for (ii, lat, depth) in [(1, 1, 2), (7, 7, 2), (3, 9, 2), (1, 5, 8), (10, 10, 1)] {
            let (g1, s1) = build(ii, lat, depth, 12);
            let (g2, s2) = build(ii, lat, depth, 12);
            let r_event = EventSim::new(g1).run().unwrap();
            let r_cycle = CycleSim::new(g2).run().unwrap();
            assert_eq!(
                r_event.total_cycles, r_cycle.total_cycles,
                "cycles diverge for ii={ii} lat={lat} depth={depth}"
            );
            assert_eq!(s1.collected(), s2.collected(), "tokens diverge for ii={ii}");
            // Backpressure counts scheduler retry effort and legitimately
            // differs between the two schedulers; zero it before comparing.
            let strip = |streams: &[crate::graph::StreamReport]| {
                streams
                    .iter()
                    .cloned()
                    .map(|mut s| {
                        s.backpressure = 0;
                        s
                    })
                    .collect::<Vec<_>>()
            };
            assert_eq!(strip(&r_event.streams), strip(&r_cycle.streams));
        }
    }

    #[test]
    fn cycle_budget_trips() {
        let (g, _s) = build(1, 1, 2, 1000);
        let mut sim = CycleSim::new(g).with_max_cycles(10);
        assert!(matches!(sim.run(), Err(SimError::Runaway { .. })));
    }

    #[test]
    fn deadlock_matches_event_sim() {
        let mk = || {
            let mut g = GraphBuilder::new();
            let (tx, rx) = g.stream::<u64>("s", 2);
            g.add(SourceStage::new("src", vec![1], Cost::new(1, 1), tx));
            g.add_counted_sink("sink", rx, 3);
            g
        };
        let e = EventSim::new(mk()).run();
        let c = CycleSim::new(mk()).run();
        assert_eq!(e, c);
        assert!(matches!(e, Err(SimError::Deadlock { .. })));
    }
}
