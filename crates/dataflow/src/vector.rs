//! Round-robin split and merge — the paper's Figure 3 vectorisation
//! scheduler.
//!
//! To vectorise the slow nested-loop stages, "the scheduler works
//! round-robin style, streaming input data to the different functions
//! cyclically, and the calculation … then receives results cyclically and
//! proceeds to process further. By working cyclically ordering of result
//! consumption is maintained." [`RoundRobinSplit`] distributes tokens
//! cyclically over `V` replica streams and [`RoundRobinMerge`] re-collects
//! them in the same cyclic order, so the replicated region is
//! order-preserving by construction.

use crate::process::{Cost, Process, ProcessStatus};
use crate::stream::{ReadPoll, StreamId, StreamReceiver, StreamSender};
use crate::Cycle;

/// Distributes an input stream over `V` outputs cyclically.
pub struct RoundRobinSplit<T> {
    name: String,
    rx: StreamReceiver<T>,
    txs: Vec<StreamSender<T>>,
    cost: Cost,
    next_out: usize,
    busy_until: Cycle,
    pending: Option<(T, Cycle)>,
    expected: Option<u64>,
    processed: u64,
}

impl<T> RoundRobinSplit<T> {
    /// Create a splitter over the given replica output streams.
    pub fn new(
        name: impl Into<String>,
        rx: StreamReceiver<T>,
        txs: Vec<StreamSender<T>>,
        cost: Cost,
        expected: Option<u64>,
    ) -> Self {
        assert!(!txs.is_empty(), "split needs at least one output");
        RoundRobinSplit {
            name: name.into(),
            rx,
            txs,
            cost,
            next_out: 0,
            busy_until: 0,
            pending: None,
            expected,
            processed: 0,
        }
    }

    /// Replication factor `V`.
    pub fn fan_out(&self) -> usize {
        self.txs.len()
    }
}

impl<T> Process for RoundRobinSplit<T> {
    fn name(&self) -> &str {
        &self.name
    }

    fn step(&mut self, now: Cycle) -> ProcessStatus {
        if let Some((v, visible_at)) = self.pending.take() {
            let latency = visible_at.saturating_sub(now).max(1);
            if let Err(v) = self.txs[self.next_out].try_push(now, v, latency) {
                self.pending = Some((v, visible_at));
                return ProcessStatus::Blocked;
            }
            self.next_out = (self.next_out + 1) % self.txs.len();
            self.processed += 1;
        }
        if let Some(n) = self.expected {
            if self.processed >= n {
                return ProcessStatus::Done;
            }
        }
        if now < self.busy_until {
            return ProcessStatus::Continue(self.busy_until);
        }
        match self.rx.poll(now) {
            ReadPoll::Ready(v) => {
                self.busy_until = now + self.cost.ii;
                let visible_at = now + self.cost.latency;
                match self.txs[self.next_out].try_push(now, v, self.cost.latency) {
                    Ok(()) => {
                        self.next_out = (self.next_out + 1) % self.txs.len();
                        self.processed += 1;
                        ProcessStatus::Continue(self.busy_until)
                    }
                    Err(v) => {
                        self.pending = Some((v, visible_at));
                        ProcessStatus::Blocked
                    }
                }
            }
            ReadPoll::NotUntil(c) => ProcessStatus::Continue(c),
            ReadPoll::Empty => ProcessStatus::Blocked,
        }
    }

    fn inputs(&self) -> Vec<StreamId> {
        vec![self.rx.id()]
    }

    fn outputs(&self) -> Vec<StreamId> {
        self.txs.iter().map(|t| t.id()).collect()
    }

    fn can_finish(&self) -> bool {
        self.expected.is_none() && self.pending.is_none()
    }

    fn reset(&mut self) {
        self.next_out = 0;
        self.busy_until = 0;
        self.pending = None;
        self.processed = 0;
    }
}

/// Re-collects tokens from `V` replica streams in cyclic order,
/// preserving the original sequence.
pub struct RoundRobinMerge<T> {
    name: String,
    rxs: Vec<StreamReceiver<T>>,
    tx: StreamSender<T>,
    cost: Cost,
    next_in: usize,
    busy_until: Cycle,
    pending: Option<(T, Cycle)>,
    expected: Option<u64>,
    processed: u64,
}

impl<T> RoundRobinMerge<T> {
    /// Create a merger over the given replica input streams.
    pub fn new(
        name: impl Into<String>,
        rxs: Vec<StreamReceiver<T>>,
        tx: StreamSender<T>,
        cost: Cost,
        expected: Option<u64>,
    ) -> Self {
        assert!(!rxs.is_empty(), "merge needs at least one input");
        RoundRobinMerge {
            name: name.into(),
            rxs,
            tx,
            cost,
            next_in: 0,
            busy_until: 0,
            pending: None,
            expected,
            processed: 0,
        }
    }

    /// Replication factor `V`.
    pub fn fan_in(&self) -> usize {
        self.rxs.len()
    }
}

impl<T> Process for RoundRobinMerge<T> {
    fn name(&self) -> &str {
        &self.name
    }

    fn step(&mut self, now: Cycle) -> ProcessStatus {
        if let Some((v, visible_at)) = self.pending.take() {
            let latency = visible_at.saturating_sub(now).max(1);
            if let Err(v) = self.tx.try_push(now, v, latency) {
                self.pending = Some((v, visible_at));
                return ProcessStatus::Blocked;
            }
            self.processed += 1;
        }
        if let Some(n) = self.expected {
            if self.processed >= n {
                return ProcessStatus::Done;
            }
        }
        if now < self.busy_until {
            return ProcessStatus::Continue(self.busy_until);
        }
        // Strictly cyclic: only the `next_in` replica may be consumed,
        // which is what guarantees order preservation.
        match self.rxs[self.next_in].poll(now) {
            ReadPoll::Ready(v) => {
                self.busy_until = now + self.cost.ii;
                let visible_at = now + self.cost.latency;
                match self.tx.try_push(now, v, self.cost.latency) {
                    Ok(()) => {
                        self.next_in = (self.next_in + 1) % self.rxs.len();
                        self.processed += 1;
                        ProcessStatus::Continue(self.busy_until)
                    }
                    Err(v) => {
                        self.next_in = (self.next_in + 1) % self.rxs.len();
                        self.pending = Some((v, visible_at));
                        ProcessStatus::Blocked
                    }
                }
            }
            ReadPoll::NotUntil(c) => ProcessStatus::Continue(c),
            ReadPoll::Empty => ProcessStatus::Blocked,
        }
    }

    fn inputs(&self) -> Vec<StreamId> {
        self.rxs.iter().map(|r| r.id()).collect()
    }

    fn outputs(&self) -> Vec<StreamId> {
        vec![self.tx.id()]
    }

    fn can_finish(&self) -> bool {
        self.expected.is_none() && self.pending.is_none()
    }

    fn reset(&mut self) {
        self.next_in = 0;
        self.busy_until = 0;
        self.pending = None;
        self.processed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event_sim::EventSim;
    use crate::graph::GraphBuilder;
    use crate::stages::{MapStage, SourceStage};

    /// Build a split → V slow replicas → merge diamond and return
    /// (sink handle, report).
    fn diamond(v: usize, n: u64, replica_ii: u64) -> (Vec<u64>, crate::graph::SimReport) {
        let mut g = GraphBuilder::new();
        let (tx_in, rx_in) = g.stream::<u64>("in", 4);
        g.add(SourceStage::new("src", (0..n).collect(), Cost::new(1, 1), tx_in));
        let mut replica_rx = Vec::new();
        let mut replica_tx = Vec::new();
        let mut mid_rx = Vec::new();
        for k in 0..v {
            let (tx, rx) = g.stream::<u64>(format!("to_rep{k}"), 2);
            replica_tx.push(tx);
            replica_rx.push(rx);
        }
        g.add(RoundRobinSplit::new("split", rx_in, replica_tx, Cost::UNIT, Some(n)));
        for (k, rx) in replica_rx.into_iter().enumerate() {
            let (tx, rxm) = g.stream::<u64>(format!("from_rep{k}"), 2);
            g.add(MapStage::new(format!("rep{k}"), rx, tx, None, move |x| {
                (x * 10, Cost::new(replica_ii, replica_ii))
            }));
            mid_rx.push(rxm);
        }
        let (tx_out, rx_out) = g.stream::<u64>("out", 4);
        g.add(RoundRobinMerge::new("merge", mid_rx, tx_out, Cost::UNIT, Some(n)));
        let sink = g.add_counted_sink("sink", rx_out, n);
        let report = EventSim::new(g).run().unwrap();
        (sink.values(), report)
    }

    #[test]
    fn order_preserved_across_replication() {
        for v in [1, 2, 3, 6] {
            let (values, _) = diamond(v, 24, 5);
            assert_eq!(values, (0..24).map(|x| x * 10).collect::<Vec<_>>(), "V={v}");
        }
    }

    #[test]
    fn replication_improves_throughput_of_slow_stage() {
        let n = 48;
        let (_, r1) = diamond(1, n, 12);
        let (_, r6) = diamond(6, n, 12);
        let speedup = r1.total_cycles as f64 / r6.total_cycles as f64;
        assert!(speedup > 3.0, "replication speedup only {speedup}");
    }

    #[test]
    fn replication_beyond_bottleneck_saturates() {
        // Once replicas make the slow stage faster than the II=1 scheduler,
        // more replicas stop helping.
        let n = 48;
        let (_, r6) = diamond(6, n, 6);
        let (_, r12) = diamond(12, n, 6);
        let further = r6.total_cycles as f64 / r12.total_cycles as f64;
        assert!(further < 1.3, "unexpected extra speedup {further}");
    }

    #[test]
    #[should_panic(expected = "at least one output")]
    fn empty_split_rejected() {
        let mut g = GraphBuilder::new();
        let (_tx, rx) = g.stream::<u64>("in", 2);
        let _ = RoundRobinSplit::new("s", rx, Vec::new(), Cost::UNIT, None);
    }
}
