//! Property-based cross-validation of the two schedulers on randomly
//! generated dataflow graphs: linear pipelines with arbitrary stage
//! costs/depths, and split/replicate/merge diamonds. The event-driven and
//! cycle-stepped simulators must agree exactly — values, completion
//! cycle, and per-stream traffic statistics.

use dataflow_sim::cycle_sim::CycleSim;
use dataflow_sim::graph::{GraphBuilder, SimError, SimReport};
use dataflow_sim::prelude::*;
use dataflow_sim::stages::SinkHandle;
use proptest::prelude::*;

/// Specification of one pipeline stage.
#[derive(Debug, Clone)]
struct StageSpec {
    ii: u64,
    latency: u64,
    depth: usize,
    add: u64,
}

fn stage_spec() -> impl Strategy<Value = StageSpec> {
    (1u64..9, 1u64..14, 1usize..5, 0u64..100).prop_map(|(ii, latency, depth, add)| StageSpec {
        ii,
        latency,
        depth,
        add,
    })
}

/// Build a linear pipeline from the specs; returns the graph and sink.
fn build_pipeline(specs: &[StageSpec], tokens: u64) -> (GraphBuilder, SinkHandle<u64>) {
    let mut g = GraphBuilder::new();
    let (tx, mut rx) = g.stream::<u64>("s_in", specs.first().map(|s| s.depth).unwrap_or(2));
    g.add(SourceStage::new("src", (0..tokens).collect(), Cost::new(1, 1), tx));
    for (i, spec) in specs.iter().enumerate() {
        let (t, r) = g.stream::<u64>(format!("s{i}"), spec.depth);
        let add = spec.add;
        let cost = Cost::new(spec.ii, spec.latency);
        g.add(MapStage::new(format!("stage{i}"), rx, t, Some(tokens), move |v| {
            (v.wrapping_add(add), cost)
        }));
        rx = r;
    }
    let sink = g.add_counted_sink("sink", rx, tokens);
    (g, sink)
}

/// Build a split → V replicas → merge diamond.
fn build_diamond(v: usize, ii: u64, depth: usize, tokens: u64) -> (GraphBuilder, SinkHandle<u64>) {
    let mut g = GraphBuilder::new();
    let (tx, rx) = g.stream::<u64>("in", depth);
    g.add(SourceStage::new("src", (0..tokens).collect(), Cost::new(1, 1), tx));
    let mut to_rep_tx = Vec::new();
    let mut to_rep_rx = Vec::new();
    for k in 0..v {
        let (t, r) = g.stream::<u64>(format!("to{k}"), depth);
        to_rep_tx.push(t);
        to_rep_rx.push(r);
    }
    g.add(RoundRobinSplit::new("split", rx, to_rep_tx, Cost::UNIT, Some(tokens)));
    let mut from_rep = Vec::new();
    for (k, r) in to_rep_rx.into_iter().enumerate() {
        let (t, rf) = g.stream::<u64>(format!("from{k}"), depth);
        g.add(MapStage::new(format!("rep{k}"), r, t, None, move |x| {
            (x * 3 + 1, Cost::new(ii, ii))
        }));
        from_rep.push(rf);
    }
    let (t_out, r_out) = g.stream::<u64>("out", depth);
    g.add(RoundRobinMerge::new("merge", from_rep, t_out, Cost::UNIT, Some(tokens)));
    let sink = g.add_counted_sink("sink", r_out, tokens);
    (g, sink)
}

/// One scheduler's outcome: the run report plus the sink's tokens.
type Outcome = (Result<SimReport, SimError>, Vec<(u64, u64)>);

fn run_both(build: impl Fn() -> (GraphBuilder, SinkHandle<u64>)) -> (Outcome, Outcome) {
    let (g1, s1) = build();
    let r1 = EventSim::new(g1).run();
    let (g2, s2) = build();
    let r2 = CycleSim::new(g2).with_max_cycles(2_000_000).run();
    ((r1, s1.collected()), (r2, s2.collected()))
}

/// The `events` and per-stream `backpressure` counters measure *scheduler
/// effort* (how often a process was stepped or a blocked push retried) and
/// legitimately differ between the two schedulers; hardware-observable
/// state must not.
fn normalise(r: Result<SimReport, SimError>) -> Result<SimReport, SimError> {
    r.map(|mut rep| {
        rep.events = 0;
        for s in &mut rep.streams {
            s.backpressure = 0;
        }
        rep
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_pipelines_agree(
        specs in proptest::collection::vec(stage_spec(), 1..5),
        tokens in 1u64..24,
    ) {
        let ((re, ve), (rc, vc)) = run_both(|| build_pipeline(&specs, tokens));
        let (re, rc) = (normalise(re), normalise(rc));
        prop_assert_eq!(&re, &rc, "reports diverge for {:?}", specs);
        prop_assert_eq!(ve, vc);
        let report = re.expect("pipelines with counted sinks complete");
        prop_assert!(report.total_cycles > 0);
    }

    #[test]
    fn random_diamonds_agree(
        v in 1usize..5,
        ii in 1u64..10,
        depth in 1usize..4,
        tokens in 1u64..20,
    ) {
        let ((re, ve), (rc, vc)) = run_both(|| build_diamond(v, ii, depth, tokens));
        prop_assert_eq!(normalise(re), normalise(rc));
        prop_assert_eq!(&ve, &vc);
        // Order preservation through the diamond.
        let values: Vec<u64> = ve.iter().map(|&(x, _)| x).collect();
        let expect: Vec<u64> = (0..tokens).map(|x| x * 3 + 1).collect();
        prop_assert_eq!(values, expect);
    }

    #[test]
    fn pipeline_cycles_lower_bounded_by_bottleneck(
        specs in proptest::collection::vec(stage_spec(), 1..5),
        tokens in 2u64..24,
    ) {
        let (g, _s) = build_pipeline(&specs, tokens);
        let report = EventSim::new(g).run().expect("completes");
        let bottleneck = specs.iter().map(|s| s.ii).max().unwrap_or(1);
        // Steady state cannot beat the slowest stage's II.
        prop_assert!(
            report.total_cycles >= (tokens - 1) * bottleneck,
            "cycles {} below bottleneck bound {}",
            report.total_cycles,
            (tokens - 1) * bottleneck
        );
    }
}

#[test]
fn unconnected_stream_rejected() {
    let mut g = GraphBuilder::new();
    let (tx, rx) = g.stream::<u64>("ok", 2);
    let (_tx2, _rx2) = g.stream::<u64>("dangling", 2);
    g.add(SourceStage::new("src", vec![1, 2], Cost::UNIT, tx));
    g.add_counted_sink("sink", rx, 2);
    match EventSim::new(g).run() {
        Err(SimError::InvalidTopology { problems }) => {
            assert!(problems.iter().any(|p| p.contains("dangling")));
        }
        other => panic!("expected InvalidTopology, got {other:?}"),
    }
}

#[test]
fn cycle_sim_also_validates_topology() {
    let mut g = GraphBuilder::new();
    let (_tx, rx) = g.stream::<u64>("no_producer", 2);
    g.add_counted_sink("sink", rx, 1);
    assert!(matches!(CycleSim::new(g).run(), Err(SimError::InvalidTopology { .. })));
}
