//! Regenerate the committed conformance corpus.
//!
//! ```text
//! cargo run -p cds-conformance --example corpus_gen -- results/conformance_corpus
//! ```
//!
//! The corpus is curated, not a fuzz dump: each file pins one family of
//! historically engine-breaking inputs (docs/TESTING.md describes the
//! workflow for adding shrunk fuzz failures next to these).

use cds_conformance::case::{ConformanceCase, MarketSpec};
use cds_conformance::generator::LISTING1_BOUNDARY_MATURITIES;
use cds_quant::option::{CdsOption, PaymentFrequency};

fn corpus() -> Vec<ConformanceCase> {
    let q = PaymentFrequency::Quarterly;
    vec![
        ConformanceCase {
            name: "listing1-boundaries".to_string(),
            note: "quarterly schedules of exactly 6/7/8 points straddling the paper's 7-lane \
                   accumulator, including one maturity a single ULP past the 7-point boundary"
                .to_string(),
            market: MarketSpec::Paper { seed: 11 },
            options: LISTING1_BOUNDARY_MATURITIES
                .iter()
                .map(|&m| CdsOption::new(m, q, 0.40))
                .collect(),
        },
        ConformanceCase {
            name: "subperiod-stubs".to_string(),
            note: "maturities shorter than one payment period (single stub point) and one \
                   sitting a hair past a period boundary"
                .to_string(),
            market: MarketSpec::Stressed { seed: 7 },
            options: vec![
                CdsOption::new(0.02, q, 0.40),
                CdsOption::new(0.1, PaymentFrequency::Monthly, 0.25),
                CdsOption::new(0.24, q, 0.40),
                CdsOption::new(0.25 + 1e-9, q, 0.40),
            ],
        },
        ConformanceCase {
            name: "nearflat-cancellation".to_string(),
            note: "near-flat curve: interpolation differences cancel to the last bits, so any \
                   re-association between engine variants shows up"
                .to_string(),
            market: MarketSpec::NearFlat {
                rate: 0.02,
                hazard: 0.015,
                wobble: 1e-8,
                seed: 3,
                knots: 64,
            },
            options: vec![
                CdsOption::new(5.0, q, 0.40),
                CdsOption::new(7.25, PaymentFrequency::SemiAnnual, 0.40),
            ],
        },
        ConformanceCase {
            name: "step-hazard".to_string(),
            note: "sharp hazard step mid-curve, the hardest shape piecewise-linear curves admit"
                .to_string(),
            market: MarketSpec::StepHazard {
                rate: 0.03,
                low: 0.002,
                high: 0.12,
                step_tenor: 3.0,
                knots: 128,
            },
            options: vec![
                CdsOption::new(2.9, q, 0.40),
                CdsOption::new(3.0, q, 0.40),
                CdsOption::new(3.1, q, 0.40),
            ],
        },
        ConformanceCase {
            name: "zero-hazard".to_string(),
            note: "riskless market: every route must produce an exactly representable zero \
                   spread"
                .to_string(),
            market: MarketSpec::Flat { rate: 0.04, hazard: 0.0, knots: 32 },
            options: vec![CdsOption::new(5.0, q, 0.40), CdsOption::new(0.5, q, 0.0)],
        },
        ConformanceCase {
            name: "extreme-recovery".to_string(),
            note: "recovery envelope edges: total loss and near-total recovery".to_string(),
            market: MarketSpec::Paper { seed: 5 },
            options: vec![
                CdsOption::new(5.0, q, 0.0),
                CdsOption::new(5.0, q, 1.0 - 1e-6),
                CdsOption::new(1.0, PaymentFrequency::Annual, 0.999),
            ],
        },
        ConformanceCase {
            name: "stressed-mixed-frequencies".to_string(),
            note: "stressed curves with every payment frequency in one batch".to_string(),
            market: MarketSpec::Stressed { seed: 42 },
            options: PaymentFrequency::ALL
                .iter()
                .enumerate()
                .map(|(i, &f)| CdsOption::new(2.0 + i as f64 * 1.5, f, 0.35))
                .collect(),
        },
    ]
}

fn main() {
    let dir = std::env::args().nth(1).unwrap_or_else(|| {
        eprintln!("usage: corpus_gen <output-dir>");
        std::process::exit(2);
    });
    let dir = std::path::PathBuf::from(dir);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        std::process::exit(2);
    }
    for case in corpus() {
        let path = dir.join(format!("{}.case", case.name));
        let text = case.to_text();
        // Self-check: the file must round-trip bit-exactly before it is
        // worth committing.
        match ConformanceCase::parse(&text) {
            Ok(parsed) if parsed == case => {}
            Ok(_) => {
                eprintln!("{}: round trip changed the case", path.display());
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("{}: does not parse back: {e}", path.display());
                std::process::exit(1);
            }
        }
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(2);
        }
        println!("wrote {}", path.display());
    }
}
