//! The metamorphic oracle holds for the reference pricer AND for every
//! engine route — the relations are properties of correct pricing, not
//! of one implementation.

use cds_conformance::case::{ConformanceCase, MarketSpec};
use cds_conformance::generator::generate_case;
use cds_conformance::oracle::{ReferenceModel, Relation, RouteModel, SpreadModel};
use cds_engine::route::PriceRoute;
use cds_quant::option::{CdsOption, PaymentFrequency};
use proptest::prelude::*;

/// Canonical probe inputs: one rough market with a liquid-tenor option,
/// one flat market with a Listing-1 boundary maturity and zero recovery.
fn probes() -> Vec<(cds_quant::option::MarketData<f64>, CdsOption)> {
    vec![
        (
            cds_quant::option::MarketData::paper_workload(11),
            CdsOption::new(5.0, PaymentFrequency::Quarterly, 0.40),
        ),
        (
            cds_quant::option::MarketData::flat(0.03, 0.04, 64),
            CdsOption::new(1.75, PaymentFrequency::Quarterly, 0.0),
        ),
    ]
}

#[test]
fn every_route_satisfies_every_relation_on_canonical_probes() {
    for (market, option) in probes() {
        for route in PriceRoute::ALL {
            let model = RouteModel::new(route);
            for relation in Relation::ALL {
                if let Err(v) = relation.check(&model, &market, &option) {
                    panic!("{v}");
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // The reference satisfies every relation on adversarial generated
    // inputs, not just hand-picked ones (near-flat curves, step
    // hazards, sub-period maturities, boundary counts, extreme
    // recoveries all flow through here).
    #[test]
    fn reference_relations_hold_on_generated_cases(seed in 0u64..1 << 32) {
        let case = generate_case(seed, 0);
        let market = match case.build_market() {
            Ok(m) => m,
            Err(e) => return Err(proptest::test_runner::TestCaseError::fail(format!("{e}"))),
        };
        for option in &case.options {
            for relation in Relation::ALL {
                let checked = relation.check(&ReferenceModel, &market, option);
                prop_assert!(checked.is_ok(), "{} on {}: {:?}", relation, case.name, checked);
            }
        }
    }
}

#[test]
fn relations_hold_for_routes_on_a_corpus_style_case() {
    // A case round-tripped through the corpus text format prices
    // identically (bit-exact market + options), so the oracle verdict
    // is the same before and after serialisation.
    let case = ConformanceCase {
        name: "oracle-corpus-roundtrip".to_string(),
        note: String::new(),
        market: MarketSpec::StepHazard {
            rate: 0.02,
            low: 0.005,
            high: 0.09,
            step_tenor: 3.0,
            knots: 64,
        },
        options: vec![CdsOption::new(2.0, PaymentFrequency::SemiAnnual, 0.25)],
    };
    let reparsed = match ConformanceCase::parse(&case.to_text()) {
        Ok(c) => c,
        Err(e) => panic!("{e}"),
    };
    let market = match reparsed.build_market() {
        Ok(m) => m,
        Err(e) => panic!("{e}"),
    };
    let model = RouteModel::new(PriceRoute::MultiSimulated);
    for relation in Relation::ALL {
        if let Err(v) = relation.check(&model, &market, &reparsed.options[0]) {
            panic!("{v}");
        }
    }
    let a = ReferenceModel.spread_bps(&market, &case.options[0]);
    let b = ReferenceModel.spread_bps(&market, &reparsed.options[0]);
    assert_eq!(a, b, "corpus round-trip changed the priced spread");
}
