//! Cross-variant differential fuzzing: every engine route agrees with
//! the reference within the engine ULP budget on adversarial inputs,
//! and when agreement is deliberately impossible the harness shrinks to
//! a minimal, corpus-serialisable reproducer.

use cds_conformance::case::ConformanceCase;
use cds_conformance::differential::{fuzz, route_failures};
use cds_conformance::generator::shrink;
use cds_quant::ulp::UlpComparator;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // The load-bearing property: arbitrary seeds, every route, spreads
    // within UlpComparator::ENGINE_F64 of the reference.
    #[test]
    fn all_routes_agree_with_reference_on_fuzzed_cases(seed in 0u64..1 << 48) {
        let report = fuzz(seed, 4, &UlpComparator::ENGINE_F64);
        let rendered: Vec<String> = report
            .failures
            .iter()
            .flat_map(|f| {
                let name = f.shrunk.name.clone();
                f.failures.iter().map(move |rf| format!("{rf} (case {name})"))
            })
            .collect();
        prop_assert!(report.failures.is_empty(), "seed {seed}: {rendered:?}");
        prop_assert_eq!(report.routes, cds_engine::route::PriceRoute::ALL.len());
    }
}

#[test]
fn a_divergence_shrinks_to_a_minimal_corpus_ready_reproducer() {
    // With a zero-tolerance comparator, divergence between routes is
    // guaranteed somewhere; the fuzzer must (a) find it, (b) shrink it
    // without losing it, and (c) produce a case that survives the
    // corpus text format bit-exactly.
    let cmp = UlpComparator::EXACT;
    let report = fuzz(5, 32, &cmp);
    assert!(!report.failures.is_empty(), "no divergence found under exact comparison");
    let failure = &report.failures[0];
    assert!(
        !failure.failures.is_empty(),
        "shrunk case no longer fails: shrinking lost the reproduction"
    );

    // (b) the shrunk case is a fixed point of the shrinker: no further
    // simplification keeps it failing.
    let again =
        shrink(&failure.shrunk, &mut |c| matches!(route_failures(c, &cmp), Ok(f) if !f.is_empty()));
    assert_eq!(again, failure.shrunk, "shrink did not reach a fixed point");

    // (c) corpus round trip preserves the failure exactly.
    let reparsed = match ConformanceCase::parse(&failure.shrunk.to_text()) {
        Ok(c) => c,
        Err(e) => panic!("shrunk case does not serialise: {e}"),
    };
    assert_eq!(reparsed, failure.shrunk);
    let replayed = match route_failures(&reparsed, &cmp) {
        Ok(f) => f,
        Err(e) => panic!("{e}"),
    };
    assert_eq!(replayed, failure.failures, "corpus round trip changed the failure");
}

#[test]
fn fuzz_reports_are_deterministic() {
    let a = fuzz(77, 16, &UlpComparator::ENGINE_F64);
    let b = fuzz(77, 16, &UlpComparator::ENGINE_F64);
    assert_eq!(a.options_priced, b.options_priced);
    assert_eq!(a.failures.len(), b.failures.len());
}
