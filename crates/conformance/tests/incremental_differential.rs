//! Differential fuzz for the incremental tick engine: random
//! interleavings of option inserts, removals and curve point ticks
//! (including deliberate zero-delta ticks), with the stored spreads
//! compared **bit-for-bit** (`f64::to_bits`) against a from-scratch full
//! reprice after every single step.
//!
//! The op sequence is re-derived deterministically from the case
//! contents, so a failing case shrinks through the same
//! [`cds_conformance::generator::shrink`] machinery as the route fuzzer:
//! the predicate replays the whole sequence on each shrink candidate.

use cds_conformance::case::ConformanceCase;
use cds_conformance::generator::{generate_case, shrink};
use cds_engine::incremental::{CurveKind, CurveTick, IncrementalEngine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Steps per replayed sequence. Every step ends in a full-reprice
/// comparison, so this bounds the oracle cost per case.
const STEPS: usize = 48;

/// Deterministic sequence seed derived from the case *contents* (FNV-1a
/// over the corpus text), so shrunk candidates replay their own
/// sequence rather than the parent's.
fn sequence_seed(case: &ConformanceCase) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in case.to_text().bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Replay one interleaved insert/remove/tick sequence against the
/// full-reprice oracle. `Err` carries the first divergence.
fn run_sequence(case: &ConformanceCase) -> Result<(), String> {
    let market = case.build_market().map_err(|e| format!("unbuildable market: {e}"))?;
    let mut rng = StdRng::seed_from_u64(sequence_seed(case));
    let mut engine = IncrementalEngine::new(market);
    // Seed the book so early ticks have something to invalidate.
    engine.insert_batch(&case.options);

    for step in 0..STEPS {
        let op = rng.gen_range(0..6u32);
        match op {
            // Insert an option from the case pool.
            0 | 1 => {
                let o = case.options[rng.gen_range(0..case.options.len())];
                engine.insert(o);
            }
            // Remove a random live option (skip on an empty book).
            2 => {
                let live = engine.spreads();
                if !live.is_empty() {
                    let (id, _) = live[rng.gen_range(0..live.len())];
                    if engine.remove(id).is_none() {
                        return Err(format!("step {step}: live id {id} refused removal"));
                    }
                }
            }
            // Zero-delta tick: re-publish the exact current value.
            3 => {
                let curve = if rng.gen_range(0..2u32) == 0 {
                    CurveKind::Interest
                } else {
                    CurveKind::Hazard
                };
                let knot = rng.gen_range(0..engine.tenors(curve).len());
                let value = engine
                    .curve_value(curve, knot)
                    .ok_or_else(|| format!("step {step}: {curve} knot {knot} vanished"))?;
                let report = engine
                    .apply_tick(CurveTick { curve, knot, value })
                    .map_err(|e| format!("step {step}: zero-delta tick rejected: {e}"))?;
                if !report.zero_delta || report.affected != 0 || !report.deltas.is_empty() {
                    return Err(format!(
                        "step {step}: zero-delta tick at {curve} knot {knot} reported \
                         zero_delta={}, affected={}, {} deltas",
                        report.zero_delta,
                        report.affected,
                        report.deltas.len()
                    ));
                }
            }
            // Value tick: scale one knot (hazard stays non-negative).
            _ => {
                let curve = if rng.gen_range(0..2u32) == 0 {
                    CurveKind::Interest
                } else {
                    CurveKind::Hazard
                };
                let knot = rng.gen_range(0..engine.tenors(curve).len());
                let old = engine
                    .curve_value(curve, knot)
                    .ok_or_else(|| format!("step {step}: {curve} knot {knot} vanished"))?;
                let factor = rng.gen_range(0.5..1.5f64);
                let value = match curve {
                    CurveKind::Interest => old * factor + rng.gen_range(-1e-4..1e-4),
                    CurveKind::Hazard => old * factor + rng.gen_range(0.0..1e-4),
                };
                engine.apply_tick(CurveTick { curve, knot, value }).map_err(|e| {
                    format!("step {step}: tick {curve} knot {knot} -> {value}: {e}")
                })?;
            }
        }

        // The oracle: every stored spread bit-identical to a fresh
        // full reprice of the same book under the same curves.
        let incremental = engine.spreads();
        let full = engine.full_reprice();
        if incremental != full {
            let diverged = incremental.iter().zip(&full).find(|(a, b)| a != b).map_or_else(
                String::new,
                |((id, inc), (_, f))| {
                    format!(" (first: id {id} incremental {inc:#018x} vs full {f:#018x})")
                },
            );
            return Err(format!(
                "step {step} (op {op}): incremental spreads diverged from full reprice \
                 over {} live options{diverged}",
                incremental.len()
            ));
        }
    }
    Ok(())
}

#[test]
fn interleaved_ticks_stay_bit_equal_to_full_reprice() {
    for seed in [2u64, 29, 71] {
        for index in 0..3u64 {
            let case = generate_case(seed, index);
            if let Err(first) = run_sequence(&case) {
                let shrunk = shrink(&case, &mut |c| run_sequence(c).is_err());
                let evidence = run_sequence(&shrunk).err().unwrap_or(first);
                panic!(
                    "incremental/full divergence (seed {seed} index {index}): {evidence}\n\
                     shrunk reproducer:\n{}",
                    shrunk.to_text()
                );
            }
        }
    }
}

#[test]
fn the_sequence_seed_tracks_case_contents() {
    // Shrink candidates must replay their own sequence: different case
    // text, different seed; identical text, identical seed.
    let a = generate_case(5, 0);
    let b = generate_case(5, 1);
    assert_eq!(sequence_seed(&a), sequence_seed(&a));
    assert_ne!(sequence_seed(&a), sequence_seed(&b));
}
