//! Differential test pinning the lane kernel to the scalar reference —
//! the ISSUE's lane-remainder satellite.
//!
//! The lane kernel claims *bit identity* with `CpuCdsEngine::price`,
//! which is stronger than the `ENGINE_F64` ULP budget the conformance
//! fuzzer enforces across routes; this test asserts both (the ULP check
//! guards the contract the rest of the suite relies on, the bitwise
//! check pins the stronger implementation property) across every
//! lane-remainder batch length 0..=17 and across the generator's
//! adversarial market/option shapes.

use cds_conformance::generator::{generate_case, LISTING1_BOUNDARY_MATURITIES};
use cds_cpu::CpuCdsEngine;
use cds_quant::option::{CdsOption, MarketData, PaymentFrequency};
use cds_quant::ulp::UlpComparator;

/// Assert lanes == scalar, bitwise and within the engine ULP budget.
fn assert_lanes_match_scalar(market: &MarketData<f64>, options: &[CdsOption], what: &str) {
    let engine = CpuCdsEngine::new(market);
    let scalar = engine.price_batch_scalar(options);
    let lanes = engine.price_batch(options);
    assert_eq!(lanes.len(), scalar.len(), "{what}: length mismatch");
    if let Err((i, m)) = UlpComparator::ENGINE_F64.check_all(&lanes, &scalar) {
        panic!("{what}[{i}]: lane kernel outside engine ULP budget: {m}");
    }
    for (i, (l, s)) in lanes.iter().zip(&scalar).enumerate() {
        assert_eq!(
            l.to_bits(),
            s.to_bits(),
            "{what}[{i}]: lane kernel not bit-identical ({l} vs {s}, maturity {}, freq {:?})",
            options[i].maturity,
            options[i].frequency
        );
    }
}

#[test]
fn remainder_batch_lengths_0_to_17_on_adversarial_cases() {
    // Pool options from several generated adversarial cases so every
    // batch length mixes frequencies, stub shapes and recoveries.
    for case_index in 0..6u64 {
        let case = generate_case(0xC0FFEE, case_index);
        let market = match case.build_market() {
            Ok(m) => m,
            Err(e) => panic!("generator produced unbuildable market: {e}"),
        };
        let mut pool: Vec<CdsOption> = Vec::new();
        let mut extend_index = case_index;
        while pool.len() < 17 {
            extend_index += 101;
            pool.extend(generate_case(0xC0FFEE, extend_index).options);
        }
        pool.truncate(17);
        for n in 0..=pool.len() {
            assert_lanes_match_scalar(
                &market,
                &pool[..n],
                &format!("case {case_index}, batch len {n}"),
            );
        }
    }
}

#[test]
fn generated_cases_price_identically_end_to_end() {
    // Each case priced whole, on its own market — the exact shape the
    // differential fuzzer replays through the route enumeration.
    for index in 0..64u64 {
        let case = generate_case(0xBEEF, index);
        let market = match case.build_market() {
            Ok(m) => m,
            Err(e) => panic!("generator produced unbuildable market: {e}"),
        };
        assert_lanes_match_scalar(&market, &case.options, &case.name);
    }
}

#[test]
fn listing1_boundary_maturities_across_frequencies() {
    // The paper's partial-sum boundary set, at every frequency, on a
    // paper-shaped market: exact-period, short-stub and one-ULP-past
    // maturities all take the grid + stub path.
    let market = MarketData::paper_workload(3);
    let mut options = Vec::new();
    for f in PaymentFrequency::ALL {
        for m in LISTING1_BOUNDARY_MATURITIES {
            options.push(CdsOption::new(m, f, 0.4));
        }
    }
    assert_lanes_match_scalar(&market, &options, "listing1 boundaries");
}
