//! Mutation tests: every metamorphic relation is proven able to fail.
//!
//! For each relation there is a deliberately-broken model
//! (`cds_conformance::mutants`) that still produces finite, plausible
//! spreads — it would sail through a smoke test — yet is caught by that
//! relation. The `mutant_for` match is exhaustive over [`Relation`], so
//! adding a relation without a mutant is a compile error here.

use cds_conformance::mutants;
use cds_conformance::oracle::{ReferenceModel, Relation, SpreadModel};
use cds_quant::option::{CdsOption, MarketData, PaymentFrequency};

fn mutant_for(relation: Relation) -> Box<dyn SpreadModel> {
    match relation {
        Relation::ParFixedPoint => Box::new(mutants::OffsetSpread),
        Relation::MonotoneInHazard => Box::new(mutants::HazardBlind),
        Relation::MonotoneInRecovery => Box::new(mutants::RecoveryReversed),
        Relation::LgdHomogeneity => Box::new(mutants::SquaredLgd),
        Relation::ScheduleRefinement => Box::new(mutants::RefinementDiverging),
        Relation::ZeroHazardLimit => Box::new(mutants::FlooredQuote),
        Relation::FullRecoveryLimit => Box::new(mutants::LgdFloor),
        Relation::ZeroDeltaTick => Box::new(mutants::StatefulDrift::new()),
    }
}

fn probe() -> (MarketData<f64>, CdsOption) {
    (MarketData::paper_workload(3), CdsOption::new(5.0, PaymentFrequency::Quarterly, 0.40))
}

#[test]
fn every_relation_catches_its_mutant() {
    let (market, option) = probe();
    for relation in Relation::ALL {
        let mutant = mutant_for(relation);
        let verdict = relation.check(mutant.as_ref(), &market, &option);
        assert!(verdict.is_err(), "{} failed to catch {}", relation.label(), mutant.name());
    }
}

#[test]
fn every_mutant_survives_a_naive_smoke_check() {
    // The point of the oracle: these mutants are NOT obviously broken.
    // Each one quotes a finite, positive, right-order-of-magnitude
    // spread on the canonical probe.
    let (market, option) = probe();
    let reference = match ReferenceModel.spread_bps(&market, &option) {
        Ok(s) => s,
        Err(e) => panic!("{e}"),
    };
    for relation in Relation::ALL {
        let mutant = mutant_for(relation);
        let s = match mutant.spread_bps(&market, &option) {
            Ok(s) => s,
            Err(e) => panic!("{}: {e}", mutant.name()),
        };
        assert!(s.is_finite() && s > 0.0, "{} quotes {s}", mutant.name());
        assert!(
            s > 0.1 * reference && s < 10.0 * reference,
            "{} quotes {s} bps vs reference {reference} bps — too obviously broken",
            mutant.name()
        );
    }
}

#[test]
fn the_reference_is_not_caught_by_any_relation_on_the_mutation_probe() {
    // Control arm: the same probe that kills every mutant clears the
    // unmutated model.
    let (market, option) = probe();
    for relation in Relation::ALL {
        if let Err(v) = relation.check(&ReferenceModel, &market, &option) {
            panic!("control arm failed: {v}");
        }
    }
}

#[test]
fn mutant_names_are_disjoint_and_prefixed() {
    let mut seen = std::collections::BTreeSet::new();
    for relation in Relation::ALL {
        let mutant = mutant_for(relation);
        assert!(mutant.name().starts_with("mutant/"), "{}", mutant.name());
        assert!(seen.insert(mutant.name().to_string()), "duplicate {}", mutant.name());
    }
}
