//! The differential fuzzer: seeded adversarial cases through every
//! [`PriceRoute`], spreads compared to the golden reference under a
//! ULP-bounded comparator, failures shrunk to a minimal reproducer.

use crate::case::ConformanceCase;
use crate::generator::{generate_case, shrink};
use cds_engine::route::PriceRoute;
use cds_quant::ulp::{UlpComparator, UlpMismatch};

/// One route disagreeing with the reference on one option of a case.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteFailure {
    /// Stable route label (see [`PriceRoute::label`]).
    pub route: String,
    /// Index of the disagreeing option within the case.
    pub option_index: usize,
    /// The comparator evidence (absent when the route errored outright).
    pub mismatch: Option<UlpMismatch>,
    /// The route's error, when it failed to price at all.
    pub error: Option<String>,
}

impl std::fmt::Display for RouteFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "route {} option #{}: ", self.route, self.option_index)?;
        match (&self.mismatch, &self.error) {
            (Some(m), _) => write!(f, "{m}"),
            (None, Some(e)) => write!(f, "route error: {e}"),
            (None, None) => write!(f, "unspecified failure"),
        }
    }
}

/// Price `case` through every route and compare against the reference.
///
/// `Err` means the case itself is unusable (market fails to build or
/// the reference refuses an option) — a corpus problem, not an engine
/// divergence. `Ok(failures)` is empty when every route matches the
/// reference within `cmp` on every option.
pub fn route_failures(
    case: &ConformanceCase,
    cmp: &UlpComparator,
) -> Result<Vec<RouteFailure>, String> {
    let market = case.build_market().map_err(|e| format!("market build failed: {e}"))?;
    let mut golden = Vec::with_capacity(case.options.len());
    for (i, option) in case.options.iter().enumerate() {
        let r = cds_quant::cds::try_price_cds(&market, option)
            .map_err(|e| format!("reference failed on option #{i}: {e}"))?;
        golden.push(r.spread_bps);
    }
    let mut failures = Vec::new();
    for route in PriceRoute::ALL {
        match route.price(&market, &case.options) {
            Ok(spreads) => {
                if let Err((option_index, mismatch)) = cmp.check_all(&spreads, &golden) {
                    failures.push(RouteFailure {
                        route: route.label().to_string(),
                        option_index,
                        mismatch: Some(mismatch),
                        error: None,
                    });
                }
            }
            Err(e) => failures.push(RouteFailure {
                route: route.label().to_string(),
                option_index: 0,
                mismatch: None,
                error: Some(e.to_string()),
            }),
        }
    }
    Ok(failures)
}

/// A fuzz case that disagreed, shrunk to a minimal reproducer.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// `(seed, index)` of the originating generated case.
    pub seed: u64,
    /// Stream index of the originating case.
    pub index: u64,
    /// Minimal failing case (what gets committed to the corpus).
    pub shrunk: ConformanceCase,
    /// Route disagreements on the shrunk case.
    pub failures: Vec<RouteFailure>,
}

/// Summary of one fuzz run.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Seed of the case stream.
    pub seed: u64,
    /// Number of cases generated and checked.
    pub cases: u64,
    /// Number of routes each case was priced through.
    pub routes: usize,
    /// Total options priced per route.
    pub options_priced: u64,
    /// Shrunk failures (empty on a clean run).
    pub failures: Vec<FuzzFailure>,
}

/// Run `cases` generated cases from `seed` through every route.
///
/// Failures are shrunk with [`shrink`] under the predicate "some route
/// still disagrees", so the reported case is a minimal reproducer.
pub fn fuzz(seed: u64, cases: u64, cmp: &UlpComparator) -> FuzzReport {
    let mut report = FuzzReport {
        seed,
        cases,
        routes: PriceRoute::ALL.len(),
        options_priced: 0,
        failures: Vec::new(),
    };
    for index in 0..cases {
        let case = generate_case(seed, index);
        report.options_priced += case.options.len() as u64;
        match route_failures(&case, cmp) {
            Ok(failures) if failures.is_empty() => {}
            Ok(_) => {
                let shrunk = shrink(
                    &case,
                    &mut |c| matches!(route_failures(c, cmp), Ok(f) if !f.is_empty()),
                );
                let failures = route_failures(&shrunk, cmp).unwrap_or_default();
                report.failures.push(FuzzFailure { seed, index, shrunk, failures });
            }
            Err(e) => {
                // A generated case must always build; treat a generator
                // bug as a failure with the evidence in the note.
                let mut shrunk = case.clone();
                shrunk.note = format!("generator produced an unusable case: {e}");
                report.failures.push(FuzzFailure { seed, index, shrunk, failures: Vec::new() });
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::MarketSpec;
    use cds_quant::option::{CdsOption, PaymentFrequency};

    #[test]
    fn clean_case_has_no_route_failures() {
        let case = ConformanceCase {
            name: "smoke".to_string(),
            note: String::new(),
            market: MarketSpec::Paper { seed: 1 },
            options: vec![
                CdsOption::new(5.0, PaymentFrequency::Quarterly, 0.4),
                CdsOption::new(1.75, PaymentFrequency::Quarterly, 0.0),
            ],
        };
        let failures = match route_failures(&case, &UlpComparator::ENGINE_F64) {
            Ok(f) => f,
            Err(e) => panic!("{e}"),
        };
        assert!(failures.is_empty(), "{failures:?}");
    }

    #[test]
    fn an_exact_comparator_flags_route_divergence() {
        // The 17 routes do not agree to the last bit everywhere; with
        // max_ulps = 0 and no floor the differential harness must be
        // able to see a difference somewhere in a small fuzz run,
        // proving the comparison is not vacuous.
        let report = fuzz(7, 24, &UlpComparator::EXACT);
        assert!(
            !report.failures.is_empty(),
            "exact comparison across {} routes found no divergence at all",
            report.routes
        );
        for f in &report.failures {
            assert!(!f.shrunk.options.is_empty());
        }
    }

    #[test]
    fn engine_preset_fuzz_is_clean() {
        let report = fuzz(42, 48, &UlpComparator::ENGINE_F64);
        let rendered: Vec<String> = report
            .failures
            .iter()
            .flat_map(|f| f.failures.iter().map(|rf| format!("{} ({})", rf, f.shrunk.name)))
            .collect();
        assert!(report.failures.is_empty(), "route divergence beyond budget: {rendered:?}");
        assert!(report.options_priced >= report.cases);
    }

    #[test]
    fn unusable_generated_case_is_reported_not_panicked() {
        let case = ConformanceCase {
            name: "bad".to_string(),
            note: String::new(),
            market: MarketSpec::Flat { rate: 0.02, hazard: 0.02, knots: 2 },
            options: vec![],
        };
        // No options: reference golden is empty, routes return empty —
        // vacuously clean, but must not panic.
        let failures = match route_failures(&case, &UlpComparator::ENGINE_F64) {
            Ok(f) => f,
            Err(e) => panic!("{e}"),
        };
        assert!(failures.is_empty());
    }
}
