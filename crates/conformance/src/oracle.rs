//! The metamorphic oracle: pricing-theory relations that hold for *any*
//! correct CDS spread model, so conformance needs no golden values.
//!
//! Each relation perturbs the inputs of a [`SpreadModel`] and states how
//! the output must move:
//!
//! | relation | statement |
//! |---|---|
//! | par-spread fixed point | repricing a contract *at* its fair spread has zero mark-to-market value |
//! | hazard monotonicity | scaling the hazard curve up widens the spread |
//! | recovery monotonicity | raising the recovery rate tightens the spread (opposite sign) |
//! | LGD homogeneity | both contingent legs scale jointly in the loss-given-default, so `spread(1 − λ·LGD₀…)` `= λ·spread` exactly |
//! | schedule refinement | halving the payment period moves the spread by geometrically shrinking steps (first-order convergence in Δ) |
//! | degenerate: zero hazard | no default risk ⇒ zero spread |
//! | degenerate: full recovery | `recovery → 1` ⇒ the spread collapses proportionally to the residual LGD |
//! | zero-delta tick | re-publishing bit-identical curve points changes nothing: quotes stay bit-stable and the incremental affected set is empty |
//!
//! A mutation suite (`crate::mutants`, exercised in `tests/mutation.rs`)
//! proves every relation can actually fail: for each relation there is a
//! deliberately-broken model that passes naive smoke checks but is
//! caught by that relation.

use cds_quant::invariant::spread_envelope_bps;
use cds_quant::option::{CdsOption, MarketData, PaymentFrequency};
use cds_quant::risk::mark_to_market;
use cds_quant::ulp::UlpComparator;

/// A spread model under conformance test: anything that can turn
/// `(market, option)` into a fair spread in basis points.
pub trait SpreadModel {
    /// Model name for violation reports.
    fn name(&self) -> &str;
    /// Fair spread of `option` under `market`, basis points.
    fn spread_bps(&self, market: &MarketData<f64>, option: &CdsOption) -> Result<f64, String>;
}

/// The golden reference pricer as a [`SpreadModel`].
pub struct ReferenceModel;

impl SpreadModel for ReferenceModel {
    fn name(&self) -> &str {
        "reference"
    }

    fn spread_bps(&self, market: &MarketData<f64>, option: &CdsOption) -> Result<f64, String> {
        cds_quant::cds::try_price_cds(market, option)
            .map(|r| r.spread_bps)
            .map_err(|e| e.to_string())
    }
}

/// Any [`cds_engine::route::PriceRoute`] as a [`SpreadModel`] (prices a
/// single-option batch per query).
pub struct RouteModel {
    route: cds_engine::route::PriceRoute,
}

impl RouteModel {
    /// Wrap a route.
    #[must_use]
    pub fn new(route: cds_engine::route::PriceRoute) -> Self {
        RouteModel { route }
    }
}

impl SpreadModel for RouteModel {
    fn name(&self) -> &str {
        self.route.label()
    }

    fn spread_bps(&self, market: &MarketData<f64>, option: &CdsOption) -> Result<f64, String> {
        let spreads =
            self.route.price(market, std::slice::from_ref(option)).map_err(|e| e.to_string())?;
        spreads.first().copied().ok_or_else(|| "route returned no spread".to_string())
    }
}

/// The metamorphic relations, enumerable for sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    /// Repricing at the fair spread has zero PV.
    ParFixedPoint,
    /// Spread widens when the hazard curve scales up.
    MonotoneInHazard,
    /// Spread tightens when recovery rises (opposite sign to hazard).
    MonotoneInRecovery,
    /// Spread is exactly linear in loss-given-default.
    LgdHomogeneity,
    /// Refining the payment schedule converges first-order in Δ.
    ScheduleRefinement,
    /// Zero hazard ⇒ zero spread.
    ZeroHazardLimit,
    /// Recovery → 1 ⇒ spread → 0 proportionally to residual LGD.
    FullRecoveryLimit,
    /// Re-publishing identical curve points is a bitwise no-op.
    ZeroDeltaTick,
}

impl Relation {
    /// Every relation, in report order.
    pub const ALL: [Relation; 8] = [
        Relation::ParFixedPoint,
        Relation::MonotoneInHazard,
        Relation::MonotoneInRecovery,
        Relation::LgdHomogeneity,
        Relation::ScheduleRefinement,
        Relation::ZeroHazardLimit,
        Relation::FullRecoveryLimit,
        Relation::ZeroDeltaTick,
    ];

    /// Stable machine-readable label.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Relation::ParFixedPoint => "par-fixed-point",
            Relation::MonotoneInHazard => "monotone-hazard",
            Relation::MonotoneInRecovery => "monotone-recovery",
            Relation::LgdHomogeneity => "lgd-homogeneity",
            Relation::ScheduleRefinement => "schedule-refinement",
            Relation::ZeroHazardLimit => "zero-hazard-limit",
            Relation::FullRecoveryLimit => "full-recovery-limit",
            Relation::ZeroDeltaTick => "zero-delta-tick",
        }
    }

    /// Check this relation for `model` on one `(market, option)` input.
    pub fn check(
        &self,
        model: &dyn SpreadModel,
        market: &MarketData<f64>,
        option: &CdsOption,
    ) -> Result<(), RelationViolation> {
        let fail = |detail: String| RelationViolation {
            relation: *self,
            model: model.name().to_string(),
            detail,
        };
        let spread = |m: &MarketData<f64>, o: &CdsOption| {
            model.spread_bps(m, o).map_err(|e| fail(format!("model failed to price: {e}")))
        };
        match self {
            Relation::ParFixedPoint => {
                let s = spread(market, option)?;
                // Mark the contract to market at its own fair spread; the
                // position must be worthless. The annuity comes from the
                // reference legs, so for any model within the engine ULP
                // budget of the truth the PV collapses to rounding.
                let mtm = mark_to_market(market, option, s);
                let tol_bps = 1e-6 * (1.0 + s.abs());
                let off_bps = if mtm.risky_annuity > 0.0 {
                    (mtm.value_per_notional / mtm.risky_annuity).abs() * 10_000.0
                } else {
                    f64::INFINITY
                };
                if off_bps > tol_bps {
                    return Err(fail(format!(
                        "PV at own fair spread {s} bps is {} per notional ({off_bps:.3e} bps \
                         off par, tolerance {tol_bps:.3e})",
                        mtm.value_per_notional
                    )));
                }
                Ok(())
            }
            Relation::MonotoneInHazard => {
                let s_base = spread(market, option)?;
                let scaled = scale_hazard(market, 1.25).map_err(&fail)?;
                let s_up = spread(&scaled, option)?;
                if s_up + 1e-9 < s_base {
                    return Err(fail(format!(
                        "hazard ×1.25 moved the spread down: {s_base} -> {s_up} bps"
                    )));
                }
                if s_base > 1e-3 && s_up <= s_base {
                    return Err(fail(format!(
                        "hazard ×1.25 failed to widen the spread: {s_base} -> {s_up} bps"
                    )));
                }
                Ok(())
            }
            Relation::MonotoneInRecovery => {
                let s_base = spread(market, option)?;
                let bumped = CdsOption {
                    recovery_rate: option.recovery_rate + 0.5 * (1.0 - option.recovery_rate),
                    ..*option
                };
                let s_up = spread(market, &bumped)?;
                if s_up > s_base + 1e-9 {
                    return Err(fail(format!(
                        "recovery {} -> {} moved the spread up: {s_base} -> {s_up} bps",
                        option.recovery_rate, bumped.recovery_rate
                    )));
                }
                if s_base > 1e-3 && s_up >= s_base {
                    return Err(fail(format!(
                        "recovery {} -> {} failed to tighten the spread: {s_base} -> {s_up} bps",
                        option.recovery_rate, bumped.recovery_rate
                    )));
                }
                Ok(())
            }
            Relation::LgdHomogeneity => {
                // Both contingent legs (protection and accrual-on-default
                // numerator) scale jointly in LGD while the premium
                // annuity is LGD-free, so the quoted spread is exactly
                // degree-1 homogeneous: halving LGD halves the spread.
                let s = spread(market, option)?;
                let lambda = 0.5;
                let scaled = CdsOption {
                    recovery_rate: 1.0 - lambda * (1.0 - option.recovery_rate),
                    ..*option
                };
                let s_scaled = spread(market, &scaled)?;
                let cmp = UlpComparator::new(1 << 12, 1e-9);
                if let Err(m) = cmp.check(s_scaled, lambda * s) {
                    return Err(fail(format!(
                        "LGD ×{lambda} must scale the spread by {lambda}: {m}"
                    )));
                }
                Ok(())
            }
            Relation::ScheduleRefinement => {
                // s(Δ) = s* + cΔ + O(Δ²): the steps |s(f₂) − s(f₁)| along
                // the refinement ladder shrink like the period does. The
                // expansion needs a smooth integrand and stub-free
                // schedules: rough random-knot curves make finer rungs
                // pick up curve detail the coarse ones missed, and a
                // short final period shifts the first-order coefficient
                // non-smoothly. So the relation probes the model at a
                // metamorphically-related input — the nearest whole-year
                // maturity on a flat market at the input's average
                // levels — which isolates exactly the property under
                // test: the model's own schedule discretisation must
                // converge.
                let ladder_maturity = option.maturity.round().max(1.0);
                let mean = |points: &[cds_quant::curve::CurvePoint<f64>]| {
                    points.iter().map(|p| p.value).sum::<f64>() / points.len() as f64
                };
                let market = &MarketData::flat(
                    mean(market.interest.points()),
                    mean(market.hazard.points()),
                    64,
                );
                let ladder = [
                    PaymentFrequency::Annual,
                    PaymentFrequency::SemiAnnual,
                    PaymentFrequency::Quarterly,
                    PaymentFrequency::Monthly,
                ];
                let mut spreads = Vec::with_capacity(ladder.len());
                for f in ladder {
                    let o = CdsOption { maturity: ladder_maturity, frequency: f, ..*option };
                    spreads.push(spread(market, &o)?);
                }
                let floor = 1e-6 * (1.0 + spreads[2].abs());
                let d1 = (spreads[1] - spreads[0]).abs(); // Δ: 1 -> 1/2
                let d2 = (spreads[2] - spreads[1]).abs(); // Δ: 1/2 -> 1/4
                let d3 = (spreads[3] - spreads[2]).abs(); // Δ: 1/4 -> 1/12
                                                          // First-order steps are c/2, c/4, c/6: allow generous
                                                          // slack for curvature, demand the trend.
                if d2 > 0.9 * d1 + floor || d3 > 0.9 * d2 + floor {
                    return Err(fail(format!(
                        "refinement steps fail to shrink at {ladder_maturity}y: \
                         |semi−annual|={d1:.3e}, |quarterly−semi|={d2:.3e}, \
                         |monthly−quarterly|={d3:.3e} bps"
                    )));
                }
                Ok(())
            }
            Relation::ZeroHazardLimit => {
                let riskless = zero_hazard(market).map_err(&fail)?;
                let s = spread(&riskless, option)?;
                if s.abs() > 1e-6 {
                    return Err(fail(format!("zero hazard must price to zero, got {s} bps")));
                }
                Ok(())
            }
            Relation::FullRecoveryLimit => {
                const RESIDUAL_LGD: f64 = 1e-6;
                let near_one = CdsOption { recovery_rate: 1.0 - RESIDUAL_LGD, ..*option };
                let s = spread(market, &near_one)?;
                // The residual spread must respect the (recovery-adjusted)
                // hazard envelope, which is itself proportional to LGD.
                let bound = spread_envelope_bps(market, &near_one);
                if s > bound || s < -1e-9 {
                    return Err(fail(format!(
                        "recovery {} must collapse the spread below {bound:.3e} bps, got {s} bps",
                        near_one.recovery_rate
                    )));
                }
                Ok(())
            }
            Relation::ZeroDeltaTick => {
                // A zero-delta tick re-publishes the value already at a
                // knot: the curves rebuilt from those points carry the
                // same bits, so *every* quote must be bit-identical
                // (`to_bits`, not ULP) — spreads are pure functions of
                // the curve values. Models with hidden per-call state
                // drift here even when each individual quote looks fine.
                let s_before = spread(market, option)?;
                let republished = republish(market).map_err(&fail)?;
                let s_after = spread(&republished, option)?;
                if s_before.to_bits() != s_after.to_bits() {
                    return Err(fail(format!(
                        "re-publishing identical curve points moved the quote: \
                         {s_before} bps ({:#018x}) -> {s_after} bps ({:#018x})",
                        s_before.to_bits(),
                        s_after.to_bits()
                    )));
                }
                let s_again = spread(market, option)?;
                if s_before.to_bits() != s_again.to_bits() {
                    return Err(fail(format!(
                        "repeated quote on unchanged inputs drifted: \
                         {s_before} bps ({:#018x}) -> {s_again} bps ({:#018x})",
                        s_before.to_bits(),
                        s_again.to_bits()
                    )));
                }
                // Dataflow half of the contract: the incremental
                // engine's arrangement must classify a zero-delta tick
                // as affecting nothing and emit no deltas, on every
                // knot of both curves.
                use cds_engine::incremental::{CurveKind, CurveTick, IncrementalEngine};
                let mut inc = IncrementalEngine::new(market.clone());
                let id = inc.insert(*option);
                let stored = inc.spread_bits(id);
                for curve in [CurveKind::Interest, CurveKind::Hazard] {
                    for knot in 0..inc.tenors(curve).len() {
                        let value = match inc.curve_value(curve, knot) {
                            Some(v) => v,
                            None => return Err(fail(format!("{curve} knot {knot} vanished"))),
                        };
                        let report = inc
                            .apply_tick(CurveTick { curve, knot, value })
                            .map_err(|e| fail(format!("zero-delta tick rejected: {e}")))?;
                        if !report.zero_delta || report.affected != 0 || !report.deltas.is_empty() {
                            return Err(fail(format!(
                                "zero-delta tick at {curve} knot {knot} reported \
                                 zero_delta={}, affected={}, {} deltas",
                                report.zero_delta,
                                report.affected,
                                report.deltas.len()
                            )));
                        }
                    }
                }
                if inc.spread_bits(id) != stored {
                    return Err(fail("zero-delta ticks moved stored spread bits".to_string()));
                }
                Ok(())
            }
        }
    }
}

impl std::fmt::Display for Relation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One violated relation, with the model and evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct RelationViolation {
    /// Which relation failed.
    pub relation: Relation,
    /// The model that violated it.
    pub model: String,
    /// Human-readable evidence.
    pub detail: String,
}

impl std::fmt::Display for RelationViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] {} violates {}: {}",
            self.model,
            self.relation,
            self.relation.label(),
            self.detail
        )
    }
}

impl std::error::Error for RelationViolation {}

/// Scale every hazard knot by `factor`.
fn scale_hazard(market: &MarketData<f64>, factor: f64) -> Result<MarketData<f64>, String> {
    use cds_quant::curve::{Curve, CurvePoint};
    let points = market
        .hazard
        .points()
        .iter()
        .map(|p| CurvePoint { tenor: p.tenor, value: p.value * factor })
        .collect();
    Ok(MarketData {
        interest: market.interest.clone(),
        hazard: Curve::new(points).map_err(|e| e.to_string())?,
    })
}

/// Replace the hazard curve with an identically-shaped zero curve.
fn zero_hazard(market: &MarketData<f64>) -> Result<MarketData<f64>, String> {
    scale_hazard(market, 0.0)
}

/// Rebuild both curves from their own points — the market a zero-delta
/// tick publishes. Bit-identical values in, so any quote difference out
/// is the model's fault.
fn republish(market: &MarketData<f64>) -> Result<MarketData<f64>, String> {
    use cds_quant::curve::Curve;
    Ok(MarketData {
        interest: Curve::new(market.interest.points().to_vec()).map_err(|e| e.to_string())?,
        hazard: Curve::new(market.hazard.points().to_vec()).map_err(|e| e.to_string())?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_satisfies_every_relation_on_representative_inputs() {
        let markets = [
            MarketData::paper_workload(5),
            MarketData::stressed_workload(5),
            MarketData::flat(0.02, 0.015, 64),
            MarketData::flat(0.0, 0.1, 16),
        ];
        let options = [
            CdsOption::new(5.0, PaymentFrequency::Quarterly, 0.40),
            CdsOption::new(0.1, PaymentFrequency::Quarterly, 0.40),
            CdsOption::new(1.75, PaymentFrequency::Quarterly, 0.0),
            CdsOption::new(7.3, PaymentFrequency::Monthly, 0.95),
        ];
        for market in &markets {
            for option in &options {
                for relation in Relation::ALL {
                    if let Err(v) = relation.check(&ReferenceModel, market, option) {
                        panic!("{v}");
                    }
                }
            }
        }
    }

    #[test]
    fn relation_labels_are_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for r in Relation::ALL {
            assert!(seen.insert(r.label()), "duplicate {}", r.label());
        }
    }
}
