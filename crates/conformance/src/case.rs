//! Conformance cases and the committed-corpus text format.
//!
//! A [`ConformanceCase`] is a *generative* description of one workload —
//! a market shape plus a set of options — rather than a dump of curve
//! knots: the corpus stays human-readable, diffs stay small, and a case
//! file pins the exact inputs (every float is stored by its IEEE-754 bit
//! pattern, so a reloaded case reproduces the original run bit for bit).
//!
//! Format (`results/conformance_corpus/*.case`):
//!
//! ```text
//! cds-conformance-case v1
//! name: listing1-partial-sum-6-points
//! note: Listing-1 partial-sum boundary — exactly 6 quarterly points
//! market: flat rate=0x3f947ae147ae147b hazard=0x3f8eb851eb851eb8 knots=64
//! option: maturity=0x3ff8000000000000 frequency=quarterly recovery=0x3fd999999999999a
//! ```
//!
//! Lines starting with `#` are comments (the writer emits the decimal
//! rendering of every float as a comment for the human reader). Parsing
//! returns typed errors and never panics, whatever the input.

use cds_quant::option::{CdsOption, MarketData, PaymentFrequency};
use cds_quant::QuantError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A market shape that can be rebuilt exactly from its parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum MarketSpec {
    /// The paper's 1024-knot calibration workload.
    Paper {
        /// Workload seed.
        seed: u64,
    },
    /// The crisis-regime workload (inverted hazard, near-zero rates).
    Stressed {
        /// Workload seed.
        seed: u64,
    },
    /// Flat interest and hazard curves.
    Flat {
        /// Flat interest rate.
        rate: f64,
        /// Flat hazard rate.
        hazard: f64,
        /// Knots per curve.
        knots: usize,
    },
    /// A flat curve perturbed by tiny seeded wobble — adversarial for
    /// comparisons because neighbouring knots are almost equal, so
    /// interpolation differences cancel to the last few bits.
    NearFlat {
        /// Base interest rate.
        rate: f64,
        /// Base hazard rate.
        hazard: f64,
        /// Relative wobble amplitude (e.g. `1e-7`).
        wobble: f64,
        /// Wobble seed.
        seed: u64,
        /// Knots per curve.
        knots: usize,
    },
    /// A hazard step: `low` before `step_tenor`, `high` after — the
    /// sharpest curve shape piecewise-linear interpolation admits.
    StepHazard {
        /// Flat interest rate.
        rate: f64,
        /// Hazard before the step.
        low: f64,
        /// Hazard after the step.
        high: f64,
        /// Tenor of the step.
        step_tenor: f64,
        /// Knots per curve.
        knots: usize,
    },
}

/// Curve horizon of the synthetic (non-paper) market shapes, years.
const SYNTHETIC_HORIZON: f64 = 30.0;

impl MarketSpec {
    /// Materialise the market data this spec describes.
    pub fn build(&self) -> Result<MarketData<f64>, QuantError> {
        use cds_quant::curve::{Curve, CurvePoint};
        match *self {
            MarketSpec::Paper { seed } => Ok(MarketData::paper_workload(seed)),
            MarketSpec::Stressed { seed } => Ok(MarketData::stressed_workload(seed)),
            MarketSpec::Flat { rate, hazard, knots } => Ok(MarketData::flat(rate, hazard, knots)),
            MarketSpec::NearFlat { rate, hazard, wobble, seed, knots } => {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut interest = Vec::with_capacity(knots);
                let mut hazards = Vec::with_capacity(knots);
                for i in 1..=knots {
                    let t = SYNTHETIC_HORIZON * i as f64 / knots as f64;
                    let wr: f64 = rng.gen_range(-1.0..1.0);
                    let wh: f64 = rng.gen_range(-1.0..1.0);
                    interest.push(CurvePoint { tenor: t, value: rate * (1.0 + wobble * wr) });
                    hazards.push(CurvePoint { tenor: t, value: hazard * (1.0 + wobble * wh) });
                }
                Ok(MarketData { interest: Curve::new(interest)?, hazard: Curve::new(hazards)? })
            }
            MarketSpec::StepHazard { rate, low, high, step_tenor, knots } => {
                let mut hazards = Vec::with_capacity(knots);
                for i in 1..=knots {
                    let t = SYNTHETIC_HORIZON * i as f64 / knots as f64;
                    let h = if t < step_tenor { low } else { high };
                    hazards.push(CurvePoint { tenor: t, value: h });
                }
                Ok(MarketData {
                    interest: Curve::flat(rate, knots, SYNTHETIC_HORIZON),
                    hazard: Curve::new(hazards)?,
                })
            }
        }
    }

    /// One-line serialisation (the `market:` payload).
    fn to_line(&self) -> String {
        match *self {
            MarketSpec::Paper { seed } => format!("paper seed={seed}"),
            MarketSpec::Stressed { seed } => format!("stressed seed={seed}"),
            MarketSpec::Flat { rate, hazard, knots } => {
                format!("flat rate={} hazard={} knots={knots}", hex(rate), hex(hazard))
            }
            MarketSpec::NearFlat { rate, hazard, wobble, seed, knots } => format!(
                "nearflat rate={} hazard={} wobble={} seed={seed} knots={knots}",
                hex(rate),
                hex(hazard),
                hex(wobble)
            ),
            MarketSpec::StepHazard { rate, low, high, step_tenor, knots } => format!(
                "step rate={} low={} high={} step_tenor={} knots={knots}",
                hex(rate),
                hex(low),
                hex(high),
                hex(step_tenor)
            ),
        }
    }

    /// Human-oriented comment rendering (decimal values).
    fn to_comment(&self) -> String {
        match *self {
            MarketSpec::Paper { seed } => format!("paper workload, seed {seed}"),
            MarketSpec::Stressed { seed } => format!("stressed workload, seed {seed}"),
            MarketSpec::Flat { rate, hazard, knots } => {
                format!("flat r={rate} h={hazard} over {knots} knots")
            }
            MarketSpec::NearFlat { rate, hazard, wobble, seed, knots } => {
                format!("near-flat r={rate} h={hazard} wobble={wobble} seed={seed} knots={knots}")
            }
            MarketSpec::StepHazard { rate, low, high, step_tenor, knots } => {
                format!("step hazard {low}->{high} at {step_tenor}y, r={rate}, {knots} knots")
            }
        }
    }
}

/// One conformance workload: a market spec and the options priced on it.
#[derive(Debug, Clone, PartialEq)]
pub struct ConformanceCase {
    /// Corpus slug (also the file stem).
    pub name: String,
    /// Why this case is in the corpus.
    pub note: String,
    /// The market shape.
    pub market: MarketSpec,
    /// The options to price.
    pub options: Vec<CdsOption>,
}

/// A malformed corpus file. Carries the offending line and a reason.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusError {
    /// 1-based line number (0 when the problem is file-level).
    pub line: usize,
    /// What was wrong.
    pub reason: String,
}

impl std::fmt::Display for CorpusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "corpus case invalid: {}", self.reason)
        } else {
            write!(f, "corpus case invalid at line {}: {}", self.line, self.reason)
        }
    }
}

impl std::error::Error for CorpusError {}

/// Render an `f64` by its bit pattern.
fn hex(x: f64) -> String {
    format!("0x{:016x}", x.to_bits())
}

/// Parse a float written either as `0x<16 hex digits>` (bit pattern) or
/// as a plain decimal.
fn parse_f64(s: &str) -> Result<f64, String> {
    if let Some(bits) = s.strip_prefix("0x") {
        let bits = u64::from_str_radix(bits, 16).map_err(|e| format!("bad f64 bits {s}: {e}"))?;
        Ok(f64::from_bits(bits))
    } else {
        s.parse::<f64>().map_err(|e| format!("bad f64 {s}: {e}"))
    }
}

fn freq_name(f: PaymentFrequency) -> &'static str {
    match f {
        PaymentFrequency::Annual => "annual",
        PaymentFrequency::SemiAnnual => "semiannual",
        PaymentFrequency::Quarterly => "quarterly",
        PaymentFrequency::Monthly => "monthly",
    }
}

fn parse_freq(s: &str) -> Result<PaymentFrequency, String> {
    match s {
        "annual" => Ok(PaymentFrequency::Annual),
        "semiannual" => Ok(PaymentFrequency::SemiAnnual),
        "quarterly" => Ok(PaymentFrequency::Quarterly),
        "monthly" => Ok(PaymentFrequency::Monthly),
        other => Err(format!("unknown payment frequency {other}")),
    }
}

/// Split `key=value` tokens of a payload into an association list.
fn fields(payload: &str) -> Vec<(&str, &str)> {
    payload.split_whitespace().filter_map(|tok| tok.split_once('=')).collect()
}

fn get<'a>(kv: &[(&'a str, &'a str)], key: &str) -> Result<&'a str, String> {
    kv.iter().find(|(k, _)| *k == key).map(|(_, v)| *v).ok_or(format!("missing field {key}"))
}

impl ConformanceCase {
    /// Serialise to the corpus text format (bit-exact round trip).
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("cds-conformance-case v1\n");
        out.push_str(&format!("name: {}\n", self.name));
        out.push_str(&format!("note: {}\n", self.note));
        out.push_str(&format!("# market: {}\n", self.market.to_comment()));
        out.push_str(&format!("market: {}\n", self.market.to_line()));
        for o in &self.options {
            out.push_str(&format!(
                "# option: {}y {} recovery {}\n",
                o.maturity,
                freq_name(o.frequency),
                o.recovery_rate
            ));
            out.push_str(&format!(
                "option: maturity={} frequency={} recovery={}\n",
                hex(o.maturity),
                freq_name(o.frequency),
                hex(o.recovery_rate)
            ));
        }
        out
    }

    /// Parse the corpus text format. Never panics; malformed input yields
    /// a [`CorpusError`] naming the offending line.
    pub fn parse(text: &str) -> Result<ConformanceCase, CorpusError> {
        let err = |line: usize, reason: String| CorpusError { line, reason };
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or_else(|| err(0, "empty corpus case".to_string()))?;
        if header.trim() != "cds-conformance-case v1" {
            return Err(err(1, format!("bad header {header:?}")));
        }
        let mut name = None;
        let mut note = String::new();
        let mut market = None;
        let mut options = Vec::new();
        for (i, raw) in lines {
            let line_no = i + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, payload) = line
                .split_once(':')
                .ok_or_else(|| err(line_no, format!("expected `key: value`, got {line:?}")))?;
            let payload = payload.trim();
            match key.trim() {
                "name" => name = Some(payload.to_string()),
                "note" => note = payload.to_string(),
                "market" => {
                    let (shape, rest) = payload.split_once(' ').unwrap_or((payload, ""));
                    let kv = fields(rest);
                    let f = |k: &str| get(&kv, k).and_then(parse_f64);
                    let u = |k: &str| {
                        get(&kv, k).and_then(|v| {
                            v.parse::<u64>().map_err(|e| format!("bad integer {v}: {e}"))
                        })
                    };
                    let spec = match shape {
                        "paper" => {
                            MarketSpec::Paper { seed: u("seed").map_err(|e| err(line_no, e))? }
                        }
                        "stressed" => {
                            MarketSpec::Stressed { seed: u("seed").map_err(|e| err(line_no, e))? }
                        }
                        "flat" => MarketSpec::Flat {
                            rate: f("rate").map_err(|e| err(line_no, e))?,
                            hazard: f("hazard").map_err(|e| err(line_no, e))?,
                            knots: u("knots").map_err(|e| err(line_no, e))? as usize,
                        },
                        "nearflat" => MarketSpec::NearFlat {
                            rate: f("rate").map_err(|e| err(line_no, e))?,
                            hazard: f("hazard").map_err(|e| err(line_no, e))?,
                            wobble: f("wobble").map_err(|e| err(line_no, e))?,
                            seed: u("seed").map_err(|e| err(line_no, e))?,
                            knots: u("knots").map_err(|e| err(line_no, e))? as usize,
                        },
                        "step" => MarketSpec::StepHazard {
                            rate: f("rate").map_err(|e| err(line_no, e))?,
                            low: f("low").map_err(|e| err(line_no, e))?,
                            high: f("high").map_err(|e| err(line_no, e))?,
                            step_tenor: f("step_tenor").map_err(|e| err(line_no, e))?,
                            knots: u("knots").map_err(|e| err(line_no, e))? as usize,
                        },
                        other => return Err(err(line_no, format!("unknown market shape {other}"))),
                    };
                    market = Some(spec);
                }
                "option" => {
                    let kv = fields(payload);
                    let maturity =
                        get(&kv, "maturity").and_then(parse_f64).map_err(|e| err(line_no, e))?;
                    let frequency =
                        get(&kv, "frequency").and_then(parse_freq).map_err(|e| err(line_no, e))?;
                    let recovery =
                        get(&kv, "recovery").and_then(parse_f64).map_err(|e| err(line_no, e))?;
                    let option = CdsOption::validated(maturity, frequency, recovery)
                        .map_err(|e| err(line_no, format!("invalid option: {e}")))?;
                    options.push(option);
                }
                other => return Err(err(line_no, format!("unknown key {other}"))),
            }
        }
        let name = name.ok_or_else(|| err(0, "missing name".to_string()))?;
        let market = market.ok_or_else(|| err(0, "missing market".to_string()))?;
        if options.is_empty() {
            return Err(err(0, "case has no options".to_string()));
        }
        Ok(ConformanceCase { name, note, market, options })
    }

    /// Build the market this case describes.
    pub fn build_market(&self) -> Result<MarketData<f64>, QuantError> {
        self.market.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ConformanceCase {
        ConformanceCase {
            name: "sample".into(),
            note: "round-trip fixture".into(),
            market: MarketSpec::StepHazard {
                rate: 0.0213,
                low: 0.004,
                high: 0.087,
                step_tenor: 2.718471828,
                knots: 48,
            },
            options: vec![
                CdsOption::new(1.5, PaymentFrequency::Quarterly, 0.4),
                CdsOption::new(0.087, PaymentFrequency::Monthly, 0.999),
            ],
        }
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let case = sample();
        let parsed = match ConformanceCase::parse(&case.to_text()) {
            Ok(c) => c,
            Err(e) => panic!("round trip failed: {e}"),
        };
        assert_eq!(parsed, case);
        // Bit-exactness, not just PartialEq: compare the bit patterns.
        for (a, b) in parsed.options.iter().zip(&case.options) {
            assert_eq!(a.maturity.to_bits(), b.maturity.to_bits());
            assert_eq!(a.recovery_rate.to_bits(), b.recovery_rate.to_bits());
        }
    }

    #[test]
    fn every_market_shape_round_trips_and_builds() {
        let shapes = [
            MarketSpec::Paper { seed: 7 },
            MarketSpec::Stressed { seed: 9 },
            MarketSpec::Flat { rate: 0.02, hazard: 0.015, knots: 64 },
            MarketSpec::NearFlat { rate: 0.02, hazard: 0.015, wobble: 1e-7, seed: 3, knots: 32 },
            MarketSpec::StepHazard {
                rate: 0.01,
                low: 0.002,
                high: 0.09,
                step_tenor: 3.0,
                knots: 40,
            },
        ];
        for market in shapes {
            let case = ConformanceCase {
                name: "shape".into(),
                note: String::new(),
                market,
                options: vec![CdsOption::new(5.0, PaymentFrequency::Quarterly, 0.4)],
            };
            let parsed = match ConformanceCase::parse(&case.to_text()) {
                Ok(c) => c,
                Err(e) => panic!("{e}"),
            };
            assert_eq!(parsed, case);
            assert!(parsed.build_market().is_ok());
        }
    }

    #[test]
    fn malformed_inputs_yield_typed_errors_not_panics() {
        let bad = [
            "",
            "wrong header",
            "cds-conformance-case v1\nname: x",                         // no market/options
            "cds-conformance-case v1\nname: x\nmarket: warp seed=1",    // unknown shape
            "cds-conformance-case v1\nname: x\nmarket: flat rate=xyz hazard=0.1 knots=2",
            "cds-conformance-case v1\nname: x\nmarket: paper seed=1\noption: maturity=0x1 frequency=daily recovery=0x1",
            "cds-conformance-case v1\nname: x\nmarket: paper seed=1\noption: maturity=-1.0 frequency=quarterly recovery=0.4",
            "cds-conformance-case v1\ngarbage line without colon",
            "cds-conformance-case v1\nwho: knows",
        ];
        for text in bad {
            assert!(ConformanceCase::parse(text).is_err(), "accepted: {text:?}");
        }
    }

    #[test]
    fn decimal_floats_are_accepted_on_input() {
        let text = "cds-conformance-case v1\nname: d\nmarket: flat rate=0.02 hazard=0.015 knots=16\noption: maturity=5.0 frequency=quarterly recovery=0.4\n";
        let case = match ConformanceCase::parse(text) {
            Ok(c) => c,
            Err(e) => panic!("{e}"),
        };
        assert_eq!(case.options[0].maturity, 5.0);
    }
}
