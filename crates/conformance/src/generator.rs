//! Seeded adversarial case generation and deterministic shrinking.
//!
//! The generator biases hard toward the shapes that historically break
//! spread engines rather than sampling uniformly:
//!
//! * **near-flat curves** — interpolation differences cancel to the last
//!   bits, so any re-association shows up;
//! * **step hazards** — the sharpest shape piecewise-linear curves
//!   admit, stressing the scan/interpolation stages;
//! * **sub-period maturities** — a single stub time point, the shortest
//!   schedule the engines must handle;
//! * **Listing-1 partial-sum boundaries** — maturities that produce
//!   exactly 6, 7 or 8 quarterly time points, straddling the paper's
//!   7-lane accumulator width (lane wrap-around off by one shows up
//!   precisely there);
//! * **extreme recoveries** — `0.0` and `1 − 1e-6`, the envelope edges.
//!
//! The in-tree `proptest` stand-in deliberately has no shrinking, so the
//! conformance fuzzer carries its own: [`shrink`] greedily simplifies a
//! failing case (fewer options, flat market, canonical maturities and
//! recoveries) while a caller-supplied predicate keeps failing, which is
//! what gets committed to `results/conformance_corpus/`.

use crate::case::{ConformanceCase, MarketSpec};
use cds_quant::option::{CdsOption, PaymentFrequency};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Maturities that hit the Listing-1 partial-sum boundary counts: a
/// quarterly schedule of maturity `m` has `ceil(4m)` points, so these
/// produce exactly 6, 7 and 8 time points (the paper's accumulator is
/// 7 lanes wide), plus each boundary crossed by one representable step.
pub const LISTING1_BOUNDARY_MATURITIES: [f64; 6] = [
    1.5,                // 6 points, last period exact
    1.563,              // 7 points, short stub just past the boundary
    1.75,               // 7 points, exact
    1.8130000000000002, // 8 points, short stub
    2.0,                // 8 points, exact
    1.7500000000000002, // 8 points: one ULP past the 7-point boundary
];

/// Generate the `index`-th case of a seeded stream.
///
/// The same `(seed, index)` always yields the same case, so a failure
/// report that names them is reproducible without the corpus file.
#[must_use]
pub fn generate_case(seed: u64, index: u64) -> ConformanceCase {
    let mut rng = StdRng::seed_from_u64(seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let market = random_market(&mut rng);
    let n_options = rng.gen_range(1..=5usize);
    let options = (0..n_options).map(|_| random_option(&mut rng)).collect();
    ConformanceCase {
        name: format!("fuzz-{seed}-{index}"),
        note: format!("generated case {index} of seed {seed}"),
        market,
        options,
    }
}

fn random_market(rng: &mut StdRng) -> MarketSpec {
    match rng.gen_range(0..6u32) {
        0 => MarketSpec::Paper { seed: rng.gen_range(0..1000) },
        1 => MarketSpec::Stressed { seed: rng.gen_range(0..1000) },
        2 => MarketSpec::Flat {
            rate: rng.gen_range(0.0..0.08),
            hazard: rng.gen_range(0.0001..0.12),
            knots: rng.gen_range(2..256),
        },
        3 => MarketSpec::NearFlat {
            rate: rng.gen_range(0.001..0.05),
            hazard: rng.gen_range(0.001..0.05),
            wobble: 10f64.powf(rng.gen_range(-9.0..-4.0)),
            seed: rng.gen_range(0..1000),
            knots: rng.gen_range(8..128),
        },
        4 => MarketSpec::StepHazard {
            rate: rng.gen_range(0.0..0.05),
            low: rng.gen_range(0.0005..0.01),
            high: rng.gen_range(0.05..0.15),
            step_tenor: rng.gen_range(0.5..8.0),
            knots: rng.gen_range(16..256),
        },
        // Zero-hazard edge: the degenerate limit as a market, not just
        // an oracle construction.
        _ => MarketSpec::Flat { rate: rng.gen_range(0.0..0.05), hazard: 0.0, knots: 32 },
    }
}

fn random_option(rng: &mut StdRng) -> CdsOption {
    let maturity = match rng.gen_range(0..5u32) {
        // Sub-period: a single stub point.
        0 => rng.gen_range(0.02..0.24),
        // Listing-1 partial-sum boundary counts.
        1 => LISTING1_BOUNDARY_MATURITIES[rng.gen_range(0..LISTING1_BOUNDARY_MATURITIES.len())],
        // Exact whole periods (no stub).
        2 => rng.gen_range(1..36u32) as f64 * 0.25,
        // Just past a period boundary (tiny stub).
        3 => rng.gen_range(1..36u32) as f64 * 0.25 + 1e-9,
        // Generic.
        _ => rng.gen_range(0.3..9.5),
    };
    let frequency = PaymentFrequency::ALL[rng.gen_range(0..PaymentFrequency::ALL.len())];
    let recovery = match rng.gen_range(0..4u32) {
        0 => 0.0,
        1 => 1.0 - 1e-6,
        2 => rng.gen_range(0.9..0.999),
        _ => rng.gen_range(0.0..0.9),
    };
    CdsOption::new(maturity, frequency, recovery)
}

/// Greedily shrink `case` while `still_fails` holds.
///
/// Deterministic and bounded: each pass tries, in order, dropping
/// options, replacing the market with progressively simpler shapes,
/// rounding maturities to canonical values, and snapping recoveries.
/// The first simplification that keeps the predicate failing is kept;
/// passes repeat until a fixed point (at most [`MAX_SHRINK_PASSES`]).
pub fn shrink(
    case: &ConformanceCase,
    still_fails: &mut dyn FnMut(&ConformanceCase) -> bool,
) -> ConformanceCase {
    let mut best = case.clone();
    for _ in 0..MAX_SHRINK_PASSES {
        let mut improved = false;

        // 1. Fewer options: try each single option, then each prefix.
        if best.options.len() > 1 {
            let candidates: Vec<Vec<CdsOption>> = best
                .options
                .iter()
                .map(|o| vec![*o])
                .chain((1..best.options.len()).map(|k| best.options[..k].to_vec()))
                .collect();
            for options in candidates {
                let candidate = ConformanceCase { options, ..best.clone() };
                if still_fails(&candidate) {
                    best = candidate;
                    improved = true;
                    break;
                }
            }
        }

        // 2. Simpler market.
        for market in simpler_markets(&best.market) {
            let candidate = ConformanceCase { market, ..best.clone() };
            if still_fails(&candidate) {
                best = candidate;
                improved = true;
                break;
            }
        }

        // 3. Canonical option parameters.
        for (i, option) in best.options.clone().into_iter().enumerate() {
            for simpler in simpler_options(&option) {
                let mut options = best.options.clone();
                options[i] = simpler;
                let candidate = ConformanceCase { options, ..best.clone() };
                if still_fails(&candidate) {
                    best = candidate;
                    improved = true;
                    break;
                }
            }
        }

        if !improved {
            break;
        }
    }
    best
}

/// Upper bound on shrink passes; each pass must strictly simplify, so
/// this is a safety net, not a tuning knob.
pub const MAX_SHRINK_PASSES: usize = 32;

fn simpler_markets(market: &MarketSpec) -> Vec<MarketSpec> {
    let mut out = Vec::new();
    match *market {
        MarketSpec::Flat { rate, hazard, knots } => {
            if knots > 2 {
                out.push(MarketSpec::Flat { rate, hazard, knots: 2.max(knots / 4) });
            }
            if rate != 0.02 || hazard != 0.02 {
                out.push(MarketSpec::Flat { rate: 0.02, hazard: 0.02, knots });
            }
        }
        _ => {
            out.push(MarketSpec::Flat { rate: 0.02, hazard: 0.02, knots: 16 });
            out.push(MarketSpec::Flat { rate: 0.02, hazard: 0.02, knots: 64 });
        }
    }
    out
}

fn simpler_options(option: &CdsOption) -> Vec<CdsOption> {
    let mut out = Vec::new();
    // Strictly simplifying: canonical values are proposed only when the
    // parameter is not yet canonical, so repeated passes reach a fixed
    // point instead of oscillating between canonical values.
    let canonical_maturities = [5.0, 2.0, 1.0, 0.25];
    if !canonical_maturities.contains(&option.maturity) {
        for m in canonical_maturities {
            out.push(CdsOption::new(m, option.frequency, option.recovery_rate));
        }
        // Round a messy maturity to two decimals (keeps a stub if one
        // matters, drops the noise digits).
        let rounded = (option.maturity * 100.0).round() / 100.0;
        if rounded > 0.0 && rounded != option.maturity {
            out.push(CdsOption::new(rounded, option.frequency, option.recovery_rate));
        }
    }
    if option.frequency != PaymentFrequency::Quarterly {
        out.push(CdsOption::new(
            option.maturity,
            PaymentFrequency::Quarterly,
            option.recovery_rate,
        ));
    }
    if option.recovery_rate != 0.4 && option.recovery_rate != 0.0 {
        for r in [0.4, 0.0] {
            out.push(CdsOption::new(option.maturity, option.frequency, r));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_quant::schedule::PaymentSchedule;

    #[test]
    fn generation_is_deterministic() {
        for index in 0..8 {
            assert_eq!(generate_case(42, index), generate_case(42, index));
        }
        assert_ne!(generate_case(42, 0).options, generate_case(42, 1).options);
    }

    #[test]
    fn generated_cases_are_valid_and_build() {
        for index in 0..64 {
            let case = generate_case(7, index);
            let market = match case.build_market() {
                Ok(m) => m,
                Err(e) => panic!("case {index}: {e}"),
            };
            assert!(!case.options.is_empty());
            for o in &case.options {
                assert!(
                    CdsOption::validated(o.maturity, o.frequency, o.recovery_rate).is_ok(),
                    "case {index}: invalid option {o:?}"
                );
            }
            assert!(market.hazard.len() >= 2);
        }
    }

    #[test]
    fn boundary_maturities_hit_6_7_8_time_points() {
        let counts: Vec<usize> = LISTING1_BOUNDARY_MATURITIES
            .iter()
            .map(|&m| match PaymentSchedule::<f64>::generate(m, 4) {
                Ok(s) => s.len(),
                Err(e) => panic!("{e}"),
            })
            .collect();
        assert_eq!(counts, vec![6, 7, 7, 8, 8, 8]);
    }

    #[test]
    fn generated_round_trips_through_corpus_format() {
        for index in 0..16 {
            let case = generate_case(3, index);
            let parsed = match ConformanceCase::parse(&case.to_text()) {
                Ok(c) => c,
                Err(e) => panic!("case {index}: {e}"),
            };
            assert_eq!(parsed, case);
        }
    }

    #[test]
    fn shrink_reaches_a_canonical_minimum_for_an_always_failing_predicate() {
        let case = generate_case(99, 5);
        let shrunk = shrink(&case, &mut |_| true);
        assert_eq!(shrunk.options.len(), 1);
        assert_eq!(shrunk.market, MarketSpec::Flat { rate: 0.02, hazard: 0.02, knots: 2 });
        assert_eq!(shrunk.options[0].maturity, 5.0);
        assert_eq!(shrunk.options[0].frequency, PaymentFrequency::Quarterly);
        // Both 0.4 and 0.0 are canonical recoveries; which one survives
        // depends on the starting option.
        assert!(
            shrunk.options[0].recovery_rate == 0.4 || shrunk.options[0].recovery_rate == 0.0,
            "non-canonical recovery {}",
            shrunk.options[0].recovery_rate
        );
        // A second shrink of an already-minimal case is a no-op: the
        // simplification passes have reached a fixed point.
        assert_eq!(shrink(&shrunk, &mut |_| true), shrunk);
    }

    #[test]
    fn shrink_preserves_a_selective_failure() {
        // Predicate fails only when some option has a sub-period
        // maturity; shrinking must keep one.
        let mut case = generate_case(1, 0);
        case.options.push(CdsOption::new(0.11, PaymentFrequency::Quarterly, 0.7));
        let mut pred = |c: &ConformanceCase| c.options.iter().any(|o| o.maturity * 4.0 < 1.0);
        let shrunk = shrink(&case, &mut pred);
        assert!(pred(&shrunk), "shrink lost the failure");
        assert_eq!(shrunk.options.len(), 1);
    }
}
