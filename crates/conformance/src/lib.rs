//! Differential conformance suite for the CDS engine paths.
//!
//! Two complementary oracles keep every compute path honest without a
//! single golden number checked into the tree:
//!
//! * [`oracle`] — *metamorphic* relations from pricing theory (par
//!   fixed point, monotonicity, LGD homogeneity, schedule-refinement
//!   convergence, degenerate limits) that any correct spread model must
//!   satisfy, checked against the reference pricer, every engine route,
//!   and the deliberately-broken [`mutants`] that prove each relation
//!   can fail.
//! * [`differential`] — a seeded adversarial fuzzer ([`generator`])
//!   driving the same cases through all seventeen
//!   [`cds_engine::route::PriceRoute`]s (FPGA variants, multi-engine,
//!   resilient, checkpoint-resume, scrubbed, streaming, CPU) and
//!   comparing spreads to the reference under a ULP-bounded comparator,
//!   shrinking any disagreement to a minimal reproducer.
//!
//! Failing cases serialise to a stable text format ([`case`]) and live
//! in `results/conformance_corpus/`, which `cds-harness conformance
//! --check` replays as a regression gate in CI.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod case;
pub mod differential;
pub mod generator;
pub mod mutants;
pub mod oracle;

pub use crate::case::{ConformanceCase, CorpusError, MarketSpec};
pub use crate::differential::{fuzz, route_failures, FuzzFailure, FuzzReport, RouteFailure};
pub use crate::generator::{generate_case, shrink};
pub use crate::oracle::{ReferenceModel, Relation, RelationViolation, RouteModel, SpreadModel};
