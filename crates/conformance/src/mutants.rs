//! Deliberately-broken spread models, one per metamorphic relation.
//!
//! These exist to prove the oracle has teeth: each mutant perturbs the
//! reference pricer in a way that survives naive smoke checks (finite,
//! positive, right order of magnitude) but is caught by exactly the
//! relation it is named for. `tests/mutation.rs` asserts the catch for
//! every relation in [`crate::oracle::Relation::ALL`]; if a new relation
//! is added without a mutant, that sweep fails.

use crate::oracle::{ReferenceModel, SpreadModel};
use cds_quant::curve::Curve;
use cds_quant::option::{CdsOption, MarketData};
use cds_quant::schedule::PaymentSchedule;

/// Adds a constant 5 bps to every quote. Finite, positive, monotone —
/// but no longer the par spread, so repricing at the quote has non-zero
/// value. Caught by `par-fixed-point`.
pub struct OffsetSpread;

impl SpreadModel for OffsetSpread {
    fn name(&self) -> &str {
        "mutant/offset-spread"
    }

    fn spread_bps(&self, market: &MarketData<f64>, option: &CdsOption) -> Result<f64, String> {
        ReferenceModel.spread_bps(market, option).map(|s| s + 5.0)
    }
}

/// Ignores the supplied hazard curve and prices against a frozen flat
/// 2 % one. Every individual quote is a plausible spread, but scaling
/// the hazard moves nothing. Caught by `monotone-hazard`.
pub struct HazardBlind;

impl SpreadModel for HazardBlind {
    fn name(&self) -> &str {
        "mutant/hazard-blind"
    }

    fn spread_bps(&self, market: &MarketData<f64>, option: &CdsOption) -> Result<f64, String> {
        let frozen = MarketData {
            interest: market.interest.clone(),
            hazard: Curve::flat(0.02, market.hazard.len().max(2), 30.0),
        };
        ReferenceModel.spread_bps(&frozen, option)
    }
}

/// Treats the recovery rate as the loss severity (`LGD = R` instead of
/// `LGD = 1 − R`), so raising recovery *widens* the spread. Caught by
/// `monotone-recovery`.
pub struct RecoveryReversed;

impl SpreadModel for RecoveryReversed {
    fn name(&self) -> &str {
        "mutant/recovery-reversed"
    }

    fn spread_bps(&self, market: &MarketData<f64>, option: &CdsOption) -> Result<f64, String> {
        let flipped = CdsOption { recovery_rate: 1.0 - option.recovery_rate, ..*option };
        ReferenceModel.spread_bps(market, &flipped)
    }
}

/// Squares the loss-given-default (`LGD_eff = LGD²`), e.g. a model that
/// double-counts severity. Still monotone in both hazard and recovery,
/// but scaling LGD by λ scales the spread by λ². Caught by
/// `lgd-homogeneity`.
pub struct SquaredLgd;

impl SpreadModel for SquaredLgd {
    fn name(&self) -> &str {
        "mutant/squared-lgd"
    }

    fn spread_bps(&self, market: &MarketData<f64>, option: &CdsOption) -> Result<f64, String> {
        let lgd = 1.0 - option.recovery_rate;
        let squared = CdsOption { recovery_rate: 1.0 - lgd * lgd, ..*option };
        ReferenceModel.spread_bps(market, &squared)
    }
}

/// Adds an error growing quadratically with the number of schedule
/// points, the signature of a discretisation bug that worsens under
/// refinement instead of converging. Caught by `schedule-refinement`.
pub struct RefinementDiverging;

impl SpreadModel for RefinementDiverging {
    fn name(&self) -> &str {
        "mutant/refinement-diverging"
    }

    fn spread_bps(&self, market: &MarketData<f64>, option: &CdsOption) -> Result<f64, String> {
        let schedule =
            PaymentSchedule::<f64>::generate(option.maturity, option.frequency.per_year())
                .map_err(|e| e.to_string())?;
        let n = schedule.len() as f64;
        ReferenceModel.spread_bps(market, option).map(|s| s + 1e-3 * n * n)
    }
}

/// Quotes are floored at 0.1 bps — a "no free protection" hack that
/// leaks through the riskless limit. Caught by `zero-hazard-limit`.
pub struct FlooredQuote;

impl SpreadModel for FlooredQuote {
    fn name(&self) -> &str {
        "mutant/floored-quote"
    }

    fn spread_bps(&self, market: &MarketData<f64>, option: &CdsOption) -> Result<f64, String> {
        ReferenceModel.spread_bps(market, option).map(|s| s.max(0.1))
    }
}

/// Clamps the loss-given-default at 1 % from below, so the spread fails
/// to collapse as recovery approaches one. Caught by
/// `full-recovery-limit`.
pub struct LgdFloor;

impl SpreadModel for LgdFloor {
    fn name(&self) -> &str {
        "mutant/lgd-floor"
    }

    fn spread_bps(&self, market: &MarketData<f64>, option: &CdsOption) -> Result<f64, String> {
        let lgd = (1.0 - option.recovery_rate).max(0.01);
        let clamped = CdsOption { recovery_rate: 1.0 - lgd, ..*option };
        ReferenceModel.spread_bps(market, &clamped)
    }
}

/// Carries hidden per-call state: every quote drifts multiplicatively
/// by a further 1e-13 — think a caching layer whose accumulator is
/// never reset. Each individual answer is within any reasonable
/// tolerance of the truth, so the monotonicity, homogeneity and limit
/// relations all still hold, but re-publishing bit-identical inputs no
/// longer returns bit-identical quotes. Caught by `zero-delta-tick`.
#[derive(Default)]
pub struct StatefulDrift {
    calls: std::cell::Cell<u64>,
}

impl StatefulDrift {
    /// A fresh drifting model (counter at zero).
    #[must_use]
    pub fn new() -> Self {
        StatefulDrift::default()
    }
}

impl SpreadModel for StatefulDrift {
    fn name(&self) -> &str {
        "mutant/stateful-drift"
    }

    fn spread_bps(&self, market: &MarketData<f64>, option: &CdsOption) -> Result<f64, String> {
        let n = self.calls.get() + 1;
        self.calls.set(n);
        ReferenceModel.spread_bps(market, option).map(|s| s * (1.0 + 1e-13 * n as f64))
    }
}
