//! Time handling: year fractions and day-count conventions.
//!
//! The paper's engine expresses every time quantity as a *fraction of a
//! year* ("Elements comprising these input values consist of two numbers,
//! the point in time (fraction of a year), and the interest or hazard value
//! itself"). [`YearFraction`] is a validated newtype for such values so
//! that tenor/maturity arguments cannot be silently swapped with rates.

use crate::QuantError;

/// A point in time measured in (fractional) years from the valuation date.
///
/// Invariant: finite and non-negative.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct YearFraction(f64);

impl YearFraction {
    /// Construct a year fraction, validating finiteness and sign.
    pub fn new(years: f64) -> Result<Self, QuantError> {
        if !years.is_finite() {
            return Err(QuantError::NonFiniteValue { index: 0 });
        }
        if years < 0.0 {
            return Err(QuantError::InvalidOption { reason: "time must be non-negative" });
        }
        Ok(YearFraction(years))
    }

    /// Construct without validation for compile-time-known constants.
    ///
    /// # Panics
    /// Panics in debug builds if the invariant is violated.
    pub fn from_years(years: f64) -> Self {
        debug_assert!(years.is_finite() && years >= 0.0, "invalid year fraction {years}");
        YearFraction(years)
    }

    /// The underlying value in years.
    #[inline]
    pub fn years(self) -> f64 {
        self.0
    }

    /// Zero (the valuation date).
    pub const ZERO: YearFraction = YearFraction(0.0);
}

/// Day-count conventions used when converting calendar periods into year
/// fractions. The Vitis engine works directly in year fractions; the
/// conventions here let workload generators express "N months" naturally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DayCount {
    /// Actual/365 fixed: days / 365.
    Act365Fixed,
    /// Actual/360: days / 360.
    Act360,
    /// 30/360: months are 30 days, years 360.
    Thirty360,
}

impl DayCount {
    /// Year fraction covered by `days` calendar days.
    pub fn year_fraction_days(self, days: u32) -> YearFraction {
        let yf = match self {
            DayCount::Act365Fixed => days as f64 / 365.0,
            DayCount::Act360 => days as f64 / 360.0,
            DayCount::Thirty360 => days as f64 / 360.0,
        };
        YearFraction::from_years(yf)
    }

    /// Year fraction covered by `months` whole months.
    pub fn year_fraction_months(self, months: u32) -> YearFraction {
        let yf = match self {
            DayCount::Act365Fixed => months as f64 * (365.0 / 12.0) / 365.0,
            DayCount::Act360 => months as f64 * 30.4375 / 360.0,
            DayCount::Thirty360 => months as f64 * 30.0 / 360.0,
        };
        YearFraction::from_years(yf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_negative_and_nonfinite() {
        assert!(YearFraction::new(-0.5).is_err());
        assert!(YearFraction::new(f64::NAN).is_err());
        assert!(YearFraction::new(f64::INFINITY).is_err());
        assert_eq!(YearFraction::new(2.5).unwrap().years(), 2.5);
    }

    #[test]
    fn zero_is_valuation_date() {
        assert_eq!(YearFraction::ZERO.years(), 0.0);
    }

    #[test]
    fn ordering_follows_time() {
        assert!(YearFraction::from_years(1.0) < YearFraction::from_years(2.0));
    }

    #[test]
    fn act365_days() {
        let yf = DayCount::Act365Fixed.year_fraction_days(365);
        assert!((yf.years() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn thirty360_months() {
        let yf = DayCount::Thirty360.year_fraction_months(12);
        assert!((yf.years() - 1.0).abs() < 1e-12);
        let q = DayCount::Thirty360.year_fraction_months(3);
        assert!((q.years() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn act360_year_is_longer_than_one() {
        let yf = DayCount::Act360.year_fraction_days(365);
        assert!(yf.years() > 1.0);
    }
}
