//! ULP-bounded floating-point comparison — the single comparator behind
//! every cross-engine equivalence check in the repository.
//!
//! The paper's argument is that the optimised dataflow engines produce
//! *the same spreads* as the Xilinx baseline. "The same" for re-associated
//! IEEE-754 arithmetic (Listing 1's seven partial sums, the vectorised
//! lanes) means "within a handful of representable values", which a
//! relative-epsilon check states badly: it is too loose near large
//! spreads and undefined at zero. Counting **units in the last place**
//! states it exactly — the distance between two doubles measured in
//! representable steps — and one bound serves every magnitude.
//!
//! An absolute floor (in the unit of the compared quantity, basis points
//! for spreads) complements the ULP bound for results that are
//! *mathematically* zero but reached through cancelling sums: zero-hazard
//! markets produce spreads like `3e-18`, which is astronomically many
//! ULPs from `0.0` yet financially indistinguishable from it.

/// Number of representable `f64` values between `a` and `b`
/// (saturating), i.e. the distance on the monotone integer lattice that
/// IEEE-754 doubles form when their bit patterns are read as
/// sign-magnitude integers.
///
/// `ulp_diff(x, x) == 0`, adjacent doubles differ by 1, `+0.0` and
/// `-0.0` are identified, and any comparison involving a NaN returns
/// `u64::MAX`.
#[must_use]
pub fn ulp_diff(a: f64, b: f64) -> u64 {
    if a.is_nan() || b.is_nan() {
        return u64::MAX;
    }
    // Map the double onto a monotone integer lattice: non-negative
    // values keep their bit pattern, negative values are mirrored below
    // zero, so lattice order equals numeric order and ±0 coincide.
    fn lattice(x: f64) -> i128 {
        let bits = x.to_bits();
        let magnitude = (bits & 0x7fff_ffff_ffff_ffff) as i128;
        if bits >> 63 == 0 {
            magnitude
        } else {
            -magnitude
        }
    }
    let (la, lb) = (lattice(a), lattice(b));
    let d = (la - lb).unsigned_abs();
    u64::try_from(d).unwrap_or(u64::MAX)
}

/// Why a ULP comparison failed: carries both values, their measured ULP
/// distance and the bound that was in force.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UlpMismatch {
    /// The value under test.
    pub got: f64,
    /// The reference value.
    pub want: f64,
    /// Measured distance in ULPs (`u64::MAX` when a side is NaN).
    pub ulps: u64,
    /// The bound that was exceeded.
    pub max_ulps: u64,
    /// The absolute floor that also failed to absorb the difference.
    pub abs_floor: f64,
}

impl std::fmt::Display for UlpMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} vs {} differ by {} ULPs (bound {}, abs floor {:e}, abs diff {:e})",
            self.got,
            self.want,
            self.ulps,
            self.max_ulps,
            self.abs_floor,
            (self.got - self.want).abs(),
        )
    }
}

impl std::error::Error for UlpMismatch {}

/// A reusable ULP-bounded comparator: two values agree when they are
/// within `max_ulps` representable steps of each other **or** within an
/// absolute `abs_floor` of each other (whichever admits the pair).
///
/// NaNs never agree with anything, including other NaNs — a NaN spread
/// is corruption, not a value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UlpComparator {
    /// Maximum admissible distance in ULPs.
    pub max_ulps: u64,
    /// Absolute difference always admitted (for mathematically-zero
    /// results reached through cancelling sums). In the unit of the
    /// compared quantity — basis points for spreads.
    pub abs_floor: f64,
}

impl UlpComparator {
    /// Bit-exact agreement (`±0.0` identified), no absolute floor.
    pub const EXACT: UlpComparator = UlpComparator { max_ulps: 0, abs_floor: 0.0 };

    /// Cross-engine f64 spread agreement.
    ///
    /// The FPGA variants re-associate the leg reductions (Listing-1
    /// partial sums, vectorised lanes) and the reference pricer uses
    /// Kahan summation, so results differ by a few rounding steps;
    /// measured worst-case distance across every route × market shape in
    /// the differential matrix is single-digit ULPs, so 128 leaves an
    /// order of magnitude of headroom while still rejecting any real
    /// numerical defect. The floor admits zero-hazard spreads (≲1e-12
    /// bps of accumulated rounding around 0).
    pub const ENGINE_F64: UlpComparator = UlpComparator { max_ulps: 128, abs_floor: 1e-9 };

    /// Agreement between *independent formulations* of the same quantity
    /// (e.g. the golden pricer vs the closed-form flat-curve spread, or
    /// schedule-level identities), which accumulate error differently
    /// and deserve a wider but still tight budget.
    pub const CROSS_FORMULATION: UlpComparator =
        UlpComparator { max_ulps: 1 << 20, abs_floor: 1e-6 };

    /// A comparator with an explicit budget.
    #[must_use]
    pub const fn new(max_ulps: u64, abs_floor: f64) -> Self {
        UlpComparator { max_ulps, abs_floor }
    }

    /// Do `got` and `want` agree under this comparator?
    #[must_use]
    pub fn matches(&self, got: f64, want: f64) -> bool {
        self.check(got, want).is_ok()
    }

    /// Check agreement, returning the full evidence on mismatch.
    pub fn check(&self, got: f64, want: f64) -> Result<(), UlpMismatch> {
        if got.is_nan() || want.is_nan() {
            return Err(UlpMismatch {
                got,
                want,
                ulps: u64::MAX,
                max_ulps: self.max_ulps,
                abs_floor: self.abs_floor,
            });
        }
        let ulps = ulp_diff(got, want);
        if ulps <= self.max_ulps || (got - want).abs() <= self.abs_floor {
            Ok(())
        } else {
            Err(UlpMismatch { got, want, ulps, max_ulps: self.max_ulps, abs_floor: self.abs_floor })
        }
    }

    /// Check two equal-length slices element-wise; the error names the
    /// first offending index.
    pub fn check_all(&self, got: &[f64], want: &[f64]) -> Result<(), (usize, UlpMismatch)> {
        debug_assert_eq!(got.len(), want.len(), "comparing slices of different lengths");
        for (i, (&g, &w)) in got.iter().zip(want).enumerate() {
            self.check(g, w).map_err(|m| (i, m))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_values_are_zero_ulps_apart() {
        for x in [0.0, 1.0, -1.0, 123.456, f64::MAX, f64::MIN_POSITIVE] {
            assert_eq!(ulp_diff(x, x), 0, "{x}");
        }
    }

    #[test]
    fn adjacent_doubles_are_one_ulp_apart() {
        let x = 123.456f64;
        let next = f64::from_bits(x.to_bits() + 1);
        assert_eq!(ulp_diff(x, next), 1);
        let y = -123.456f64;
        let next = f64::from_bits(y.to_bits() + 1); // more negative
        assert_eq!(ulp_diff(y, next), 1);
    }

    #[test]
    fn signed_zeros_are_identified() {
        assert_eq!(ulp_diff(0.0, -0.0), 0);
        assert!(UlpComparator::EXACT.matches(0.0, -0.0));
    }

    #[test]
    fn distance_is_symmetric_across_zero() {
        let eps = f64::MIN_POSITIVE; // smallest subnormal magnitude step
        let d = ulp_diff(-eps, eps);
        assert_eq!(d, 2 * ulp_diff(0.0, eps));
    }

    #[test]
    fn nan_never_matches() {
        assert_eq!(ulp_diff(f64::NAN, f64::NAN), u64::MAX);
        assert!(!UlpComparator::new(u64::MAX, f64::INFINITY).matches(f64::NAN, 1.0));
        assert!(!UlpComparator::new(u64::MAX, f64::INFINITY).matches(1.0, f64::NAN));
    }

    #[test]
    fn opposite_infinities_are_maximally_distant() {
        assert!(ulp_diff(f64::NEG_INFINITY, f64::INFINITY) > 1 << 63);
    }

    #[test]
    fn abs_floor_admits_tiny_differences_around_zero() {
        let cmp = UlpComparator::new(4, 1e-9);
        // 1e-18 is billions of ULPs from zero but within the floor.
        assert!(cmp.matches(1e-18, 0.0));
        assert!(!cmp.matches(1e-6, 0.0));
    }

    #[test]
    fn ulp_bound_scales_with_magnitude() {
        let cmp = UlpComparator::new(16, 0.0);
        let big = 1e8f64;
        let nudged = f64::from_bits(big.to_bits() + 10);
        assert!(cmp.matches(big, nudged));
        let far = f64::from_bits(big.to_bits() + 17);
        assert!(!cmp.matches(big, far));
    }

    #[test]
    fn mismatch_reports_evidence() {
        let e = match UlpComparator::EXACT.check(2.0, 1.0) {
            Err(e) => e,
            Ok(()) => panic!("2.0 should not equal 1.0"),
        };
        assert_eq!(e.got, 2.0);
        assert_eq!(e.want, 1.0);
        assert!(e.ulps > 1u64 << 50);
        assert!(e.to_string().contains("ULPs"));
    }

    #[test]
    fn check_all_names_the_offending_index() {
        let got = [1.0, 2.0, 3.5];
        let want = [1.0, 2.0, 3.0];
        match UlpComparator::EXACT.check_all(&got, &want) {
            Err((i, _)) => assert_eq!(i, 2),
            Ok(()) => panic!("index 2 differs"),
        }
    }
}
