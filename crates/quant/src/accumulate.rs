//! Accumulation kernels — the software realisation of the paper's
//! Listing 1.
//!
//! The hazard calculation accumulates per-segment probability contributions
//! with a double-precision add whose hardware latency is **seven cycles**.
//! A naïve loop therefore carries a loop-carried dependency and achieves an
//! initiation interval (II) of 7 — one result every seven cycles. Listing 1
//! of the paper replicates the accumulator into an array of seven partial
//! sums, processes the input cyclically in chunks of seven, and reduces the
//! partials at the end, achieving an effective II of 1.
//!
//! This module implements both kernels (including the handling of lengths
//! not divisible by seven, which the paper's listing omits "for brevity"),
//! plus a compensated (Kahan) reference. On a CPU the lane-split kernel is
//! *also* faster than the naïve loop, because it breaks the FP add
//! dependency chain and lets the out-of-order core (or the auto-vectoriser)
//! run lanes in parallel — the `listing1_accumulate` Criterion bench
//! measures that real speedup.

use crate::precision::CdsFloat;

/// Hardware latency, in cycles, of a double-precision floating-point add in
/// the Vitis HLS implementation targeted by the paper. This is both the II
/// of the naïve accumulation loop and the lane count of the optimised one.
pub const FP_ADD_LATENCY: usize = 7;

/// Naïve sequential sum: one loop-carried dependency chain, exactly the
/// code whose II the paper diagnoses as 7.
pub fn sum_sequential<F: CdsFloat>(values: &[F]) -> F {
    let mut acc = F::ZERO;
    for &v in values {
        acc += v;
    }
    acc
}

/// Listing-1 accumulation with `LANES` partial sums (the paper uses 7, one
/// per cycle of add latency). Handles lengths not divisible by `LANES` by
/// folding the remainder into the lanes before the final reduction — the
/// part the paper's listing omits for brevity.
pub fn sum_lanes<F: CdsFloat, const LANES: usize>(values: &[F]) -> F {
    assert!(LANES > 0, "need at least one lane");
    let mut lanes = [F::ZERO; LANES];
    let chunks = values.len() / LANES;
    // Outer loop: II = LANES in hardware; inner loop fully unrolled so the
    // LANES adds are independent and all complete each outer iteration.
    for i in 0..chunks {
        for (j, lane) in lanes.iter_mut().enumerate() {
            *lane += values[i * LANES + j];
        }
    }
    // Remainder: fewer than LANES trailing elements, one per lane.
    for (j, &v) in values[chunks * LANES..].iter().enumerate() {
        lanes[j] += v;
    }
    // Final reduction over LANES elements only; this short loop retains the
    // dependency chain but its impact is negligible (7 elements, not the
    // full input length).
    let mut acc = F::ZERO;
    for lane in lanes {
        acc += lane;
    }
    acc
}

/// The paper's exact configuration: seven partial sums.
pub fn sum_lanes7<F: CdsFloat>(values: &[F]) -> F {
    sum_lanes::<F, FP_ADD_LATENCY>(values)
}

/// Kahan (compensated) summation — the high-accuracy reference against
/// which both hardware-shaped kernels are validated.
pub fn sum_kahan<F: CdsFloat>(values: &[F]) -> F {
    let mut acc = F::ZERO;
    let mut comp = F::ZERO;
    for &v in values {
        let y = v - comp;
        let t = acc + y;
        comp = (t - acc) - y;
        acc = t;
    }
    acc
}

/// Streaming lane accumulator: the stateful form used inside the dataflow
/// stages, where contributions arrive one per cycle from an HLS stream
/// rather than from an indexable array.
#[derive(Debug, Clone)]
pub struct LaneAccumulator<F: CdsFloat = f64, const LANES: usize = FP_ADD_LATENCY> {
    lanes: [F; LANES],
    next: usize,
    count: usize,
}

impl<F: CdsFloat, const LANES: usize> Default for LaneAccumulator<F, LANES> {
    fn default() -> Self {
        Self::new()
    }
}

impl<F: CdsFloat, const LANES: usize> LaneAccumulator<F, LANES> {
    /// Fresh accumulator with all lanes zeroed.
    pub fn new() -> Self {
        LaneAccumulator { lanes: [F::ZERO; LANES], next: 0, count: 0 }
    }

    /// Feed one value into the cyclically-next lane.
    #[inline]
    pub fn push(&mut self, v: F) {
        self.lanes[self.next] += v;
        self.next = (self.next + 1) % LANES;
        self.count += 1;
    }

    /// Number of values accumulated so far.
    #[inline]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Reduce the lanes to the final sum (non-destructive).
    pub fn finish(&self) -> F {
        let mut acc = F::ZERO;
        for &lane in &self.lanes {
            acc += lane;
        }
        acc
    }

    /// Reset to the zero state, ready for the next option.
    pub fn reset(&mut self) {
        self.lanes = [F::ZERO; LANES];
        self.next = 0;
        self.count = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geometric(n: usize) -> Vec<f64> {
        (0..n).map(|i| 0.97f64.powi(i as i32)).collect()
    }

    #[test]
    fn empty_input_sums_to_zero() {
        assert_eq!(sum_sequential::<f64>(&[]), 0.0);
        assert_eq!(sum_lanes7::<f64>(&[]), 0.0);
        assert_eq!(sum_kahan::<f64>(&[]), 0.0);
    }

    #[test]
    fn exact_lengths_divisible_by_seven() {
        let v = geometric(7 * 13);
        let expect = sum_kahan(&v);
        assert!((sum_lanes7(&v) - expect).abs() < 1e-12);
        assert!((sum_sequential(&v) - expect).abs() < 1e-12);
    }

    #[test]
    fn tail_handling_every_residue_class() {
        // The case the paper's listing omits: length % 7 != 0.
        for n in 0..40usize {
            let v = geometric(n);
            let expect = sum_kahan(&v);
            let got = sum_lanes7(&v);
            assert!((got - expect).abs() < 1e-12, "n={n}: {got} vs {expect}");
        }
    }

    #[test]
    fn other_lane_counts() {
        let v = geometric(100);
        let expect = sum_kahan(&v);
        assert!((sum_lanes::<f64, 1>(&v) - expect).abs() < 1e-12);
        assert!((sum_lanes::<f64, 2>(&v) - expect).abs() < 1e-12);
        assert!((sum_lanes::<f64, 4>(&v) - expect).abs() < 1e-12);
        assert!((sum_lanes::<f64, 8>(&v) - expect).abs() < 1e-12);
    }

    #[test]
    fn streaming_accumulator_matches_batch() {
        let v = geometric(1024);
        let mut acc = LaneAccumulator::<f64>::new();
        for &x in &v {
            acc.push(x);
        }
        assert_eq!(acc.count(), 1024);
        assert!((acc.finish() - sum_lanes7(&v)).abs() < 1e-12);
    }

    #[test]
    fn streaming_reset_reuses_state() {
        let mut acc = LaneAccumulator::<f64>::new();
        for _ in 0..10 {
            acc.push(1.0);
        }
        acc.reset();
        assert_eq!(acc.count(), 0);
        acc.push(2.5);
        assert!((acc.finish() - 2.5).abs() < 1e-15);
    }

    #[test]
    fn kahan_beats_sequential_on_ill_conditioned_input() {
        // Large head followed by many tiny values: the naïve sum loses
        // the tail; Kahan keeps it.
        let mut v = vec![1e16f64];
        v.extend(std::iter::repeat_n(1.0, 1000));
        v.push(-1e16);
        let kahan = sum_kahan(&v);
        assert!((kahan - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn f32_lanes_track_f64_reference() {
        let v64 = geometric(500);
        let v32: Vec<f32> = v64.iter().map(|&x| x as f32).collect();
        let r = sum_lanes7(&v32) as f64;
        assert!((r - sum_kahan(&v64)).abs() < 1e-3);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn lanes_equal_kahan_within_tolerance(
            v in proptest::collection::vec(-1.0f64..1.0, 0..300)
        ) {
            let expect = sum_kahan(&v);
            let got = sum_lanes7(&v);
            // Bound scaled by input magnitude.
            let scale = 1.0 + v.iter().map(|x| x.abs()).sum::<f64>();
            prop_assert!((got - expect).abs() <= 1e-12 * scale);
        }

        #[test]
        fn streaming_equals_batch(
            v in proptest::collection::vec(-100.0f64..100.0, 0..200)
        ) {
            let mut acc = LaneAccumulator::<f64>::new();
            for &x in &v { acc.push(x); }
            prop_assert_eq!(acc.finish(), sum_lanes7(&v));
        }

        #[test]
        fn permutation_invariance_within_fp_tolerance(
            mut v in proptest::collection::vec(0.0f64..1.0, 1..100)
        ) {
            let a = sum_lanes7(&v);
            v.reverse();
            let b = sum_lanes7(&v);
            let scale = 1.0 + v.iter().sum::<f64>();
            prop_assert!((a - b).abs() <= 1e-12 * scale);
        }
    }
}
