//! Monte Carlo CDS pricer — an *independent* cross-validation of the
//! analytic pricer.
//!
//! Every engine in this repository shares the closed-form leg formulas of
//! [`crate::cds`]; agreement between them cannot catch an error in the
//! formulas themselves. This module prices the same contract by direct
//! simulation — sample the default time from the hazard curve by inverse
//! transform, realise each leg's cash flows, discount, average — sharing
//! **no leg mathematics** with the analytic path. The two prices must
//! agree within the Monte Carlo standard error, which the test suite
//! asserts at three standard deviations.

use crate::curve::Curve;
use crate::option::{CdsOption, MarketData};
use crate::schedule::PaymentSchedule;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a Monte Carlo pricing run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McSpread {
    /// Estimated fair spread in basis points.
    pub spread_bps: f64,
    /// Standard error of the estimate in basis points (delta method).
    pub std_error_bps: f64,
    /// Paths simulated.
    pub paths: u64,
    /// Fraction of paths that defaulted before maturity.
    pub default_fraction: f64,
}

/// Sample a default time from the hazard curve by inverse transform:
/// default occurs when the integrated hazard reaches `−ln(U)`.
///
/// Returns `None` when the sampled time exceeds `horizon`.
pub fn sample_default_time(hazard: &Curve<f64>, u: f64, horizon: f64) -> Option<f64> {
    debug_assert!((0.0..1.0).contains(&u) || u == 0.0);
    let target = -(1.0 - u).ln(); // Λ(τ) = target  (1−U is uniform too)
    if target <= 0.0 {
        return Some(0.0);
    }
    // Λ is continuous, strictly increasing where h>0; bisect on [0, horizon].
    if hazard.integral(horizon) < target {
        return None;
    }
    let (mut lo, mut hi) = (0.0f64, horizon);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if hazard.integral(mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(0.5 * (lo + hi))
}

/// Price a CDS by Monte Carlo with `paths` default-time samples.
///
/// ```
/// use cds_quant::montecarlo::mc_price_cds;
/// use cds_quant::prelude::*;
///
/// let market = MarketData::flat(0.02, 0.02, 32);
/// let option = CdsOption::new(5.0, PaymentFrequency::Quarterly, 0.40);
/// let mc = mc_price_cds(&market, &option, 50_000, 1);
/// let analytic = price_cds(&market, &option).spread_bps;
/// assert!((mc.spread_bps - analytic).abs() < 4.0 * mc.std_error_bps);
/// ```
pub fn mc_price_cds(
    market: &MarketData<f64>,
    option: &CdsOption,
    paths: u64,
    seed: u64,
) -> McSpread {
    let schedule =
        match PaymentSchedule::<f64>::generate(option.maturity, option.frequency.per_year()) {
            Ok(s) => s,
            Err(e) => panic!("option failed schedule generation: {e}"),
        };
    let points = schedule.points();
    let mut rng = StdRng::seed_from_u64(seed);
    let lgd = 1.0 - option.recovery_rate;

    // Per-path realised legs (per unit spread for premium+accrual).
    let mut sum_protection = 0.0f64;
    let mut sum_premium = 0.0f64;
    let mut sum_prot_sq = 0.0f64;
    let mut sum_prem_sq = 0.0f64;
    let mut sum_cross = 0.0f64;
    let mut defaults = 0u64;

    for _ in 0..paths {
        let u: f64 = rng.gen_range(0.0..1.0);
        let tau = sample_default_time(&market.hazard, u, option.maturity);
        let mut premium = 0.0f64;
        let mut protection = 0.0f64;
        let mut prev_t = 0.0f64;
        match tau {
            None => {
                // Survived: all premiums paid, no payoff.
                for &t in points {
                    premium += (t - prev_t) * market.interest.discount_factor(t);
                    prev_t = t;
                }
            }
            Some(tau) => {
                defaults += 1;
                for &t in points {
                    if tau > t {
                        premium += (t - prev_t) * market.interest.discount_factor(t);
                        prev_t = t;
                    } else {
                        // Default inside (prev_t, t]: protection pays LGD
                        // at τ; accrued premium since prev_t is owed.
                        let df_tau = market.interest.discount_factor(tau);
                        protection = lgd * df_tau;
                        premium += (tau - prev_t) * df_tau;
                        break;
                    }
                }
            }
        }
        sum_protection += protection;
        sum_premium += premium;
        sum_prot_sq += protection * protection;
        sum_prem_sq += premium * premium;
        sum_cross += protection * premium;
    }

    let n = paths as f64;
    let mean_prot = sum_protection / n;
    let mean_prem = sum_premium / n;
    let spread = mean_prot / mean_prem;

    // Delta-method standard error of the ratio estimator.
    let var_prot = (sum_prot_sq / n - mean_prot * mean_prot).max(0.0);
    let var_prem = (sum_prem_sq / n - mean_prem * mean_prem).max(0.0);
    let cov = sum_cross / n - mean_prot * mean_prem;
    let rel_var = var_prot / (mean_prot * mean_prot).max(1e-300)
        + var_prem / (mean_prem * mean_prem)
        - 2.0 * cov / (mean_prot * mean_prem).max(1e-300);
    let std_error = spread * (rel_var.max(0.0) / n).sqrt();

    McSpread {
        spread_bps: spread * 10_000.0,
        std_error_bps: std_error * 10_000.0,
        paths,
        default_fraction: defaults as f64 / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cds::price_cds;
    use crate::option::PaymentFrequency;

    /// Debug builds run ~30x slower; fewer paths keep the suite fast while
    /// the σ-scaled assertions stay valid.
    const PATHS: u64 = if cfg!(debug_assertions) { 30_000 } else { 400_000 };

    #[test]
    fn sampler_inverse_transform_is_consistent() {
        let hazard = Curve::flat(0.05, 32, 40.0);
        // u such that −ln(1−u) = 0.05·t ⇒ default exactly at t.
        for t in [1.0f64, 5.0, 20.0] {
            let u = 1.0 - (-0.05f64 * t).exp();
            let tau = sample_default_time(&hazard, u, 40.0).expect("inside horizon");
            assert!((tau - t).abs() < 1e-9, "t={t}: tau={tau}");
        }
        // u → 0: immediate default; u beyond horizon mass: survival.
        assert_eq!(sample_default_time(&hazard, 0.0, 40.0), Some(0.0));
        assert_eq!(sample_default_time(&hazard, 0.999999, 1.0), None);
    }

    #[test]
    fn default_fraction_matches_default_probability() {
        let market = MarketData::flat(0.02, 0.03, 32);
        let option = CdsOption::new(5.0, PaymentFrequency::Quarterly, 0.40);
        let mc = mc_price_cds(&market, &option, PATHS, 1);
        let pd = market.hazard.default_probability(5.0);
        let sigma = (pd * (1.0 - pd) / PATHS as f64).sqrt();
        assert!(
            (mc.default_fraction - pd).abs() < 4.0 * sigma + 1e-4,
            "MC fraction {} vs analytic PD {pd} (σ {sigma})",
            mc.default_fraction
        );
    }

    #[test]
    fn mc_agrees_with_analytic_within_three_sigma_flat() {
        let market = MarketData::flat(0.02, 0.02, 64);
        let option = CdsOption::new(5.0, PaymentFrequency::Quarterly, 0.40);
        let analytic = price_cds(&market, &option).spread_bps;
        let mc = mc_price_cds(&market, &option, PATHS, 7);
        let sigmas = (mc.spread_bps - analytic).abs() / mc.std_error_bps;
        assert!(
            sigmas < 3.0,
            "MC {} ± {} vs analytic {analytic} ({sigmas:.1}σ)",
            mc.spread_bps,
            mc.std_error_bps
        );
        // The estimate should also be tight in absolute terms.
        assert!(mc.std_error_bps < 3.5, "std error {}", mc.std_error_bps);
    }

    #[test]
    fn mc_agrees_on_realistic_sloped_curves() {
        let market = MarketData::paper_workload(42);
        let option = CdsOption::new(6.0, PaymentFrequency::Quarterly, 0.35);
        let analytic = price_cds(&market, &option).spread_bps;
        let mc = mc_price_cds(&market, &option, PATHS, 11);
        let sigmas = (mc.spread_bps - analytic).abs() / mc.std_error_bps;
        // Mid-period discounting in the analytic accrual term introduces
        // a small systematic difference versus exact-τ realisation; allow
        // 4σ plus a 0.5% bias band.
        assert!(
            sigmas < 4.0 || (mc.spread_bps - analytic).abs() / analytic < 0.005,
            "MC {} ± {} vs analytic {analytic}",
            mc.spread_bps,
            mc.std_error_bps
        );
    }

    #[test]
    fn error_shrinks_with_path_count() {
        let market = MarketData::flat(0.02, 0.02, 32);
        let option = CdsOption::new(5.0, PaymentFrequency::Quarterly, 0.40);
        let small = mc_price_cds(&market, &option, PATHS / 16, 3);
        let large = mc_price_cds(&market, &option, PATHS, 3);
        // 16x paths ⇒ ~4x smaller standard error.
        let ratio = small.std_error_bps / large.std_error_bps;
        assert!((2.5..6.0).contains(&ratio), "error ratio {ratio}");
    }

    #[test]
    fn deterministic_given_seed() {
        let market = MarketData::flat(0.02, 0.02, 32);
        let option = CdsOption::new(3.0, PaymentFrequency::Quarterly, 0.40);
        let a = mc_price_cds(&market, &option, 10_000, 9);
        let b = mc_price_cds(&market, &option, 10_000, 9);
        assert_eq!(a, b);
    }
}
