//! Standalone linear-interpolation kernels.
//!
//! The curve type in [`crate::curve`] offers interpolation as a method;
//! this module exposes the raw kernels in the three access-pattern variants
//! that matter to the FPGA engine, so the dataflow simulator and the
//! Listing-1 benchmarks can exercise them directly:
//!
//! * [`linear_scan`] — restart-from-the-front scan, the Vitis baseline's
//!   behaviour inside its pipelined loop (`O(n)` per query);
//! * [`binary_search`] — what a CPU implementation would do (`O(log n)`);
//! * [`Interpolator`] — stateful monotone cursor, amortised `O(1)` per
//!   query, modelling the optimised HLS kernel's running index.
//!
//! All variants must agree bit-for-bit on the same inputs; property tests
//! assert this.

use crate::precision::CdsFloat;

/// Interpolate `xs→ys` at `x` by scanning from the front. `xs` must be
/// strictly increasing; extrapolation is flat. Returns the value and the
/// number of elements inspected.
///
/// # Panics
/// Panics if `xs` is empty or lengths differ.
pub fn linear_scan<F: CdsFloat>(xs: &[F], ys: &[F], x: F) -> (F, usize) {
    assert_eq!(xs.len(), ys.len(), "xs/ys length mismatch");
    assert!(!xs.is_empty(), "empty interpolation table");
    if x <= xs[0] {
        return (ys[0], 1);
    }
    for i in 1..xs.len() {
        if x <= xs[i] {
            return (segment(xs[i - 1], xs[i], ys[i - 1], ys[i], x), i + 1);
        }
    }
    (ys[ys.len() - 1], xs.len())
}

/// Interpolate via binary search (the CPU-friendly variant).
///
/// # Panics
/// Panics if `xs` is empty or lengths differ.
pub fn binary_search<F: CdsFloat>(xs: &[F], ys: &[F], x: F) -> F {
    assert_eq!(xs.len(), ys.len(), "xs/ys length mismatch");
    assert!(!xs.is_empty(), "empty interpolation table");
    if x <= xs[0] {
        return ys[0];
    }
    if x >= xs[xs.len() - 1] {
        return ys[ys.len() - 1];
    }
    // Invariant: xs[lo] < x <= xs[hi].
    let (mut lo, mut hi) = (0usize, xs.len() - 1);
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if xs[mid] < x {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    segment(xs[lo], xs[hi], ys[lo], ys[hi], x)
}

#[inline]
fn segment<F: CdsFloat>(x0: F, x1: F, y0: F, y1: F, x: F) -> F {
    let w = (x - x0) / (x1 - x0);
    y0 + w * (y1 - y0)
}

/// Stateful monotone interpolator: queries must arrive in non-decreasing
/// `x` order, letting the scan resume where it left off.
#[derive(Debug, Clone)]
pub struct Interpolator<'a, F: CdsFloat = f64> {
    xs: &'a [F],
    ys: &'a [F],
    pos: usize,
    last_x: Option<F>,
}

impl<'a, F: CdsFloat> Interpolator<'a, F> {
    /// Create an interpolator over parallel slices (strictly increasing
    /// `xs`).
    ///
    /// # Panics
    /// Panics if `xs` is empty or lengths differ.
    pub fn new(xs: &'a [F], ys: &'a [F]) -> Self {
        assert_eq!(xs.len(), ys.len(), "xs/ys length mismatch");
        assert!(!xs.is_empty(), "empty interpolation table");
        Interpolator { xs, ys, pos: 0, last_x: None }
    }

    /// Interpolate at `x` (must be >= the previous query). Returns the
    /// value and how many table entries were newly advanced past.
    ///
    /// # Panics
    /// Panics in debug builds on a decreasing query.
    pub fn value_at(&mut self, x: F) -> (F, usize) {
        if let Some(prev) = self.last_x {
            debug_assert!(x >= prev, "Interpolator requires monotone queries");
        }
        self.last_x = Some(x);
        let mut advanced = 0usize;
        while self.pos < self.xs.len() && self.xs[self.pos] < x {
            self.pos += 1;
            advanced += 1;
        }
        let v = if self.pos == 0 {
            self.ys[0]
        } else if self.pos == self.xs.len() {
            self.ys[self.ys.len() - 1]
        } else {
            segment(
                self.xs[self.pos - 1],
                self.xs[self.pos],
                self.ys[self.pos - 1],
                self.ys[self.pos],
                x,
            )
        };
        (v, advanced)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const XS: [f64; 5] = [0.5, 1.0, 2.0, 4.0, 8.0];
    const YS: [f64; 5] = [0.01, 0.015, 0.02, 0.03, 0.025];

    #[test]
    fn scan_and_binary_agree() {
        for i in 0..=100 {
            let x = i as f64 * 0.1;
            let (a, _) = linear_scan(&XS, &YS, x);
            let b = binary_search(&XS, &YS, x);
            assert!((a - b).abs() < 1e-16, "x={x}: {a} vs {b}");
        }
    }

    #[test]
    fn cursor_agrees_with_scan() {
        let mut it = Interpolator::new(&XS, &YS);
        for i in 0..=100 {
            let x = i as f64 * 0.1;
            let (a, _) = linear_scan(&XS, &YS, x);
            let (c, _) = it.value_at(x);
            assert!((a - c).abs() < 1e-16, "x={x}");
        }
    }

    #[test]
    fn flat_extrapolation_both_ends() {
        assert_eq!(linear_scan(&XS, &YS, 0.0).0, 0.01);
        assert_eq!(linear_scan(&XS, &YS, 100.0).0, 0.025);
        assert_eq!(binary_search(&XS, &YS, 0.0), 0.01);
        assert_eq!(binary_search(&XS, &YS, 100.0), 0.025);
    }

    #[test]
    fn exact_at_knots() {
        for (x, y) in XS.iter().zip(YS.iter()) {
            assert_eq!(binary_search(&XS, &YS, *x), *y);
        }
    }

    #[test]
    fn midpoint_is_average() {
        let v = binary_search(&XS, &YS, 1.5);
        assert!((v - (0.015 + 0.02) / 2.0).abs() < 1e-16);
    }

    #[test]
    fn scan_cost_increases_with_x() {
        let (_, c_lo) = linear_scan(&XS, &YS, 0.6);
        let (_, c_hi) = linear_scan(&XS, &YS, 7.0);
        assert!(c_lo < c_hi);
    }

    #[test]
    fn cursor_advance_total_bounded() {
        let mut it = Interpolator::new(&XS, &YS);
        let mut total = 0;
        for i in 0..50 {
            total += it.value_at(i as f64 * 0.2).1;
        }
        assert!(total <= XS.len());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = linear_scan(&XS, &YS[..3], 1.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_table_panics() {
        let _ = binary_search::<f64>(&[], &[], 1.0);
    }

    #[test]
    fn single_point_table_is_constant() {
        let (v, _) = linear_scan(&[1.0], &[42.0], 0.5);
        assert_eq!(v, 42.0);
        assert_eq!(binary_search(&[1.0], &[42.0], 9.0), 42.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn table() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
        // Strictly increasing xs built from positive gaps; bounded ys.
        (2usize..64)
            .prop_flat_map(|n| {
                (
                    proptest::collection::vec(0.01f64..1.0, n),
                    proptest::collection::vec(-5.0f64..5.0, n),
                )
            })
            .prop_map(|(gaps, ys)| {
                let mut acc = 0.0;
                let xs = gaps
                    .iter()
                    .map(|g| {
                        acc += g;
                        acc
                    })
                    .collect::<Vec<_>>();
                (xs, ys)
            })
    }

    proptest! {
        #[test]
        fn all_variants_agree((xs, ys) in table(), q in 0.0f64..70.0) {
            let (a, _) = linear_scan(&xs, &ys, q);
            let b = binary_search(&xs, &ys, q);
            let (c, _) = Interpolator::new(&xs, &ys).value_at(q);
            prop_assert!((a - b).abs() <= 1e-12 * (1.0 + a.abs()));
            prop_assert!((a - c).abs() <= 1e-12 * (1.0 + a.abs()));
        }

        #[test]
        fn result_within_segment_bounds((xs, ys) in table(), q in 0.0f64..70.0) {
            let v = binary_search(&xs, &ys, q);
            let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
        }

        #[test]
        fn monotone_table_gives_monotone_interpolation(
            (xs, mut ys) in table(), q1 in 0.0f64..70.0, q2 in 0.0f64..70.0
        ) {
            ys.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
            let v_lo = binary_search(&xs, &ys, lo);
            let v_hi = binary_search(&xs, &ys, hi);
            prop_assert!(v_lo <= v_hi + 1e-12);
        }
    }
}
