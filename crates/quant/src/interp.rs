//! Standalone linear-interpolation kernels.
//!
//! The curve type in [`crate::curve`] offers interpolation as a method;
//! this module exposes the raw kernels in the three access-pattern variants
//! that matter to the FPGA engine, so the dataflow simulator and the
//! Listing-1 benchmarks can exercise them directly:
//!
//! * [`linear_scan`] — restart-from-the-front scan, the Vitis baseline's
//!   behaviour inside its pipelined loop (`O(n)` per query);
//! * [`binary_search`] — what a CPU implementation would do (`O(log n)`);
//! * [`Interpolator`] — stateful monotone cursor, amortised `O(1)` per
//!   query, modelling the optimised HLS kernel's running index.
//!
//! All variants must agree bit-for-bit on the same inputs; property tests
//! assert this.

use crate::precision::CdsFloat;

/// Interpolate `xs→ys` at `x` by scanning from the front. `xs` must be
/// strictly increasing; extrapolation is flat. Returns the value and the
/// number of elements inspected.
///
/// # Panics
/// Panics if `xs` is empty or lengths differ.
pub fn linear_scan<F: CdsFloat>(xs: &[F], ys: &[F], x: F) -> (F, usize) {
    assert_eq!(xs.len(), ys.len(), "xs/ys length mismatch");
    assert!(!xs.is_empty(), "empty interpolation table");
    if x <= xs[0] {
        return (ys[0], 1);
    }
    for i in 1..xs.len() {
        if x <= xs[i] {
            return (segment(xs[i - 1], xs[i], ys[i - 1], ys[i], x), i + 1);
        }
    }
    (ys[ys.len() - 1], xs.len())
}

/// Interpolate via binary search (the CPU-friendly variant).
///
/// # Panics
/// Panics if `xs` is empty or lengths differ.
pub fn binary_search<F: CdsFloat>(xs: &[F], ys: &[F], x: F) -> F {
    assert_eq!(xs.len(), ys.len(), "xs/ys length mismatch");
    assert!(!xs.is_empty(), "empty interpolation table");
    if x <= xs[0] {
        return ys[0];
    }
    if x >= xs[xs.len() - 1] {
        return ys[ys.len() - 1];
    }
    // Invariant: xs[lo] < x <= xs[hi].
    let (mut lo, mut hi) = (0usize, xs.len() - 1);
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if xs[mid] < x {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    segment(xs[lo], xs[hi], ys[lo], ys[hi], x)
}

#[inline]
fn segment<F: CdsFloat>(x0: F, x1: F, y0: F, y1: F, x: F) -> F {
    let w = (x - x0) / (x1 - x0);
    y0 + w * (y1 - y0)
}

/// Precomputed uniform-bucket segment index over a fixed `f64` knot
/// table — the CPU hot path's replacement for a per-query binary search.
///
/// A query is quantised onto one of `2(n−1)` equal-width buckets
/// spanning `[xs[0], xs[n−1]]` with a single subtract-multiply-cast;
/// the bucket's precomputed starting segment is then advanced forward
/// by at most a few knots (zero for near-uniform tables such as the
/// paper's 1024 evenly spaced tenors). There is no data-dependent
/// branch *tree*: the per-query cost is O(1) expected, independent of
/// the table size, with one perfectly predictable advance loop.
///
/// The construction stores, for each bucket `b`, the largest segment
/// index `i` whose left knot quantises strictly below `b` — using the
/// **same quantisation expression** as the lookup, so floating-point
/// rounding of bucket edges cannot make the starting point overshoot:
/// monotonicity of the quantiser alone guarantees `xs[start[b]] < x`
/// for every `x` landing in bucket `b`. The advance loop then stops at
/// the unique segment satisfying the binary search's invariant
/// `xs[lo] < x <= xs[lo+1]`, so interpolation through the index is
/// **bit-for-bit identical** to [`binary_search`] (same segment, same
/// boundary branches, same arithmetic); property tests assert exactly
/// that.
#[derive(Debug, Clone, Default)]
pub struct SegmentIndex {
    /// First knot — the bucket origin.
    x0: f64,
    /// Buckets per unit of `x`: `buckets / (xs[n−1] − xs[0])`.
    inv_width: f64,
    /// Per-bucket conservative starting segment. Empty for degenerate
    /// tables (fewer than two knots, zero/non-finite span), where
    /// lookups fall back to a forward scan from segment 0 — still
    /// correct, just unaccelerated.
    start: Vec<u32>,
}

impl SegmentIndex {
    /// Build the index for a strictly increasing knot table. The index
    /// is only meaningful for lookups against the same `xs` it was
    /// built from.
    #[must_use]
    pub fn new(xs: &[f64]) -> Self {
        let n = xs.len();
        if n < 2 || n - 1 > u32::MAX as usize {
            return SegmentIndex::default();
        }
        let x0 = xs[0];
        let span = xs[n - 1] - x0;
        if !span.is_finite() || span <= 0.0 {
            return SegmentIndex::default();
        }
        let buckets = 2 * (n - 1);
        let inv_width = buckets as f64 / span;
        let quantise = |x: f64| (((x - x0) * inv_width) as usize).min(buckets - 1);
        let mut start = vec![0u32; buckets];
        let mut seg = 0usize;
        for (b, slot) in start.iter_mut().enumerate().skip(1) {
            while seg < n - 2 && quantise(xs[seg + 1]) < b {
                seg += 1;
            }
            *slot = seg as u32;
        }
        SegmentIndex { x0, inv_width, start }
    }

    /// The segment `lo` satisfying `xs[lo] < x <= xs[lo+1]` for interior
    /// `x` (`xs[0] < x < xs[n−1]`) — the same invariant, and therefore
    /// the same segment, [`binary_search`] finds in O(log n). Callers
    /// handle the flat-extrapolation boundaries first, exactly as
    /// `binary_search` does; `xs` must be the table the index was built
    /// from.
    #[inline]
    #[must_use]
    pub fn locate(&self, xs: &[f64], x: f64) -> usize {
        debug_assert!(xs.len() >= 2, "locate needs at least one segment");
        let last = xs.len() - 2;
        let mut lo = if self.start.is_empty() {
            0
        } else {
            let b = (((x - self.x0) * self.inv_width) as usize).min(self.start.len() - 1);
            self.start[b] as usize
        };
        while lo < last && xs[lo + 1] < x {
            lo += 1;
        }
        lo
    }

    /// Interpolate `xs→ys` at `x` — bit-for-bit identical to
    /// [`binary_search`] (same boundary branches, same segment, same
    /// `segment` arithmetic), in O(1) expected time per query.
    ///
    /// # Panics
    /// Panics if `xs` is empty or lengths differ.
    #[must_use]
    pub fn interpolate(&self, xs: &[f64], ys: &[f64], x: f64) -> f64 {
        assert_eq!(xs.len(), ys.len(), "xs/ys length mismatch");
        assert!(!xs.is_empty(), "empty interpolation table");
        if xs.len() < 2 || x <= xs[0] {
            return ys[0];
        }
        if x >= xs[xs.len() - 1] {
            return ys[ys.len() - 1];
        }
        let lo = self.locate(xs, x);
        segment(xs[lo], xs[lo + 1], ys[lo], ys[lo + 1], x)
    }
}

/// Stateful monotone interpolator: queries must arrive in non-decreasing
/// `x` order, letting the scan resume where it left off.
#[derive(Debug, Clone)]
pub struct Interpolator<'a, F: CdsFloat = f64> {
    xs: &'a [F],
    ys: &'a [F],
    pos: usize,
    last_x: Option<F>,
}

impl<'a, F: CdsFloat> Interpolator<'a, F> {
    /// Create an interpolator over parallel slices (strictly increasing
    /// `xs`).
    ///
    /// # Panics
    /// Panics if `xs` is empty or lengths differ.
    pub fn new(xs: &'a [F], ys: &'a [F]) -> Self {
        assert_eq!(xs.len(), ys.len(), "xs/ys length mismatch");
        assert!(!xs.is_empty(), "empty interpolation table");
        Interpolator { xs, ys, pos: 0, last_x: None }
    }

    /// Interpolate at `x` (must be >= the previous query). Returns the
    /// value and how many table entries were newly advanced past.
    ///
    /// # Panics
    /// Panics in debug builds on a decreasing query.
    pub fn value_at(&mut self, x: F) -> (F, usize) {
        if let Some(prev) = self.last_x {
            debug_assert!(x >= prev, "Interpolator requires monotone queries");
        }
        self.last_x = Some(x);
        let mut advanced = 0usize;
        while self.pos < self.xs.len() && self.xs[self.pos] < x {
            self.pos += 1;
            advanced += 1;
        }
        let v = if self.pos == 0 {
            self.ys[0]
        } else if self.pos == self.xs.len() {
            self.ys[self.ys.len() - 1]
        } else {
            segment(
                self.xs[self.pos - 1],
                self.xs[self.pos],
                self.ys[self.pos - 1],
                self.ys[self.pos],
                x,
            )
        };
        (v, advanced)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const XS: [f64; 5] = [0.5, 1.0, 2.0, 4.0, 8.0];
    const YS: [f64; 5] = [0.01, 0.015, 0.02, 0.03, 0.025];

    #[test]
    fn scan_and_binary_agree() {
        for i in 0..=100 {
            let x = i as f64 * 0.1;
            let (a, _) = linear_scan(&XS, &YS, x);
            let b = binary_search(&XS, &YS, x);
            assert!((a - b).abs() < 1e-16, "x={x}: {a} vs {b}");
        }
    }

    #[test]
    fn cursor_agrees_with_scan() {
        let mut it = Interpolator::new(&XS, &YS);
        for i in 0..=100 {
            let x = i as f64 * 0.1;
            let (a, _) = linear_scan(&XS, &YS, x);
            let (c, _) = it.value_at(x);
            assert!((a - c).abs() < 1e-16, "x={x}");
        }
    }

    #[test]
    fn flat_extrapolation_both_ends() {
        assert_eq!(linear_scan(&XS, &YS, 0.0).0, 0.01);
        assert_eq!(linear_scan(&XS, &YS, 100.0).0, 0.025);
        assert_eq!(binary_search(&XS, &YS, 0.0), 0.01);
        assert_eq!(binary_search(&XS, &YS, 100.0), 0.025);
    }

    #[test]
    fn exact_at_knots() {
        for (x, y) in XS.iter().zip(YS.iter()) {
            assert_eq!(binary_search(&XS, &YS, *x), *y);
        }
    }

    #[test]
    fn midpoint_is_average() {
        let v = binary_search(&XS, &YS, 1.5);
        assert!((v - (0.015 + 0.02) / 2.0).abs() < 1e-16);
    }

    #[test]
    fn scan_cost_increases_with_x() {
        let (_, c_lo) = linear_scan(&XS, &YS, 0.6);
        let (_, c_hi) = linear_scan(&XS, &YS, 7.0);
        assert!(c_lo < c_hi);
    }

    #[test]
    fn cursor_advance_total_bounded() {
        let mut it = Interpolator::new(&XS, &YS);
        let mut total = 0;
        for i in 0..50 {
            total += it.value_at(i as f64 * 0.2).1;
        }
        assert!(total <= XS.len());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = linear_scan(&XS, &YS[..3], 1.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_table_panics() {
        let _ = binary_search::<f64>(&[], &[], 1.0);
    }

    #[test]
    fn single_point_table_is_constant() {
        let (v, _) = linear_scan(&[1.0], &[42.0], 0.5);
        assert_eq!(v, 42.0);
        assert_eq!(binary_search(&[1.0], &[42.0], 9.0), 42.0);
    }

    #[test]
    fn segment_index_matches_binary_search_on_fixture() {
        let idx = SegmentIndex::new(&XS);
        for i in -10..=1000 {
            let x = i as f64 * 0.01;
            let a = idx.interpolate(&XS, &YS, x);
            let b = binary_search(&XS, &YS, x);
            assert_eq!(a.to_bits(), b.to_bits(), "x={x}: {a} vs {b}");
        }
        // Exactly at every knot, too.
        for &x in &XS {
            assert_eq!(
                idx.interpolate(&XS, &YS, x).to_bits(),
                binary_search(&XS, &YS, x).to_bits()
            );
        }
    }

    #[test]
    fn segment_index_handles_clustered_knots() {
        // Heavily non-uniform table: clusters at both ends, a huge gap in
        // the middle — worst case for bucket-based starting points.
        let xs = [0.001, 0.0011, 0.0012, 0.5, 31.0, 31.0001, 64.0];
        let ys = [1.0, -2.0, 3.0, -4.0, 5.0, -6.0, 7.0];
        let idx = SegmentIndex::new(&xs);
        for i in 0..100_000 {
            let x = i as f64 * 0.00065;
            let a = idx.interpolate(&xs, &ys, x);
            let b = binary_search(&xs, &ys, x);
            assert_eq!(a.to_bits(), b.to_bits(), "x={x}");
        }
        // Just above/below every knot.
        for &k in &xs {
            for x in [f64::from_bits(k.to_bits() - 1), k, f64::from_bits(k.to_bits() + 1)] {
                assert_eq!(
                    idx.interpolate(&xs, &ys, x).to_bits(),
                    binary_search(&xs, &ys, x).to_bits()
                );
            }
        }
    }

    #[test]
    fn segment_index_degenerate_tables_fall_back() {
        // One knot: constant everywhere, like binary_search.
        let idx = SegmentIndex::new(&[1.0]);
        assert_eq!(idx.interpolate(&[1.0], &[42.0], 0.5), 42.0);
        assert_eq!(idx.interpolate(&[1.0], &[42.0], 9.0), 42.0);
        // Two knots still accelerate correctly.
        let xs = [1.0, 3.0];
        let ys = [10.0, 20.0];
        let idx = SegmentIndex::new(&xs);
        for x in [0.0, 1.0, 1.5, 2.0, 3.0, 4.0] {
            assert_eq!(
                idx.interpolate(&xs, &ys, x).to_bits(),
                binary_search(&xs, &ys, x).to_bits()
            );
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn table() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
        // Strictly increasing xs built from positive gaps; bounded ys.
        (2usize..64)
            .prop_flat_map(|n| {
                (
                    proptest::collection::vec(0.01f64..1.0, n),
                    proptest::collection::vec(-5.0f64..5.0, n),
                )
            })
            .prop_map(|(gaps, ys)| {
                let mut acc = 0.0;
                let xs = gaps
                    .iter()
                    .map(|g| {
                        acc += g;
                        acc
                    })
                    .collect::<Vec<_>>();
                (xs, ys)
            })
    }

    proptest! {
        #[test]
        fn all_variants_agree((xs, ys) in table(), q in 0.0f64..70.0) {
            let (a, _) = linear_scan(&xs, &ys, q);
            let b = binary_search(&xs, &ys, q);
            let (c, _) = Interpolator::new(&xs, &ys).value_at(q);
            prop_assert!((a - b).abs() <= 1e-12 * (1.0 + a.abs()));
            prop_assert!((a - c).abs() <= 1e-12 * (1.0 + a.abs()));
        }

        #[test]
        fn segment_index_is_bitwise_binary_search((xs, ys) in table(), q in 0.0f64..70.0) {
            let idx = SegmentIndex::new(&xs);
            let a = idx.interpolate(&xs, &ys, q);
            let b = binary_search(&xs, &ys, q);
            prop_assert_eq!(a.to_bits(), b.to_bits(), "q={}: {} vs {}", q, a, b);
        }

        #[test]
        fn result_within_segment_bounds((xs, ys) in table(), q in 0.0f64..70.0) {
            let v = binary_search(&xs, &ys, q);
            let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
        }

        #[test]
        fn monotone_table_gives_monotone_interpolation(
            (xs, mut ys) in table(), q1 in 0.0f64..70.0, q2 in 0.0f64..70.0
        ) {
            ys.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
            let v_lo = binary_search(&xs, &ys, lo);
            let v_hi = binary_search(&xs, &ys, hi);
            prop_assert!(v_lo <= v_hi + 1e-12);
        }
    }
}
