//! Risk measures and mark-to-market on top of the spread pricer.
//!
//! The paper's engine computes fair spreads; "the financial analysts then
//! use \[them\] to determine the price, or fee, of the CDS itself". This
//! module provides that downstream step — mark-to-market of a seated
//! contract — plus the bump-and-reprice sensitivities desks quote
//! alongside (CS01, IR01, recovery-rate sensitivity), so the library is
//! usable as an actual pricing service rather than a kernel demo.

use crate::cds::{price_cds, SpreadResult};
use crate::curve::{Curve, CurvePoint};
use crate::option::{CdsOption, MarketData};

/// Mark-to-market of an existing CDS position.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarkToMarket {
    /// Current fair spread, basis points.
    pub fair_spread_bps: f64,
    /// The contract's running spread, basis points.
    pub contract_spread_bps: f64,
    /// Present value per unit notional to the *protection buyer*
    /// (positive when the fair spread has risen above the contractual
    /// one: the bought protection is now worth more than it costs).
    pub value_per_notional: f64,
    /// Risky annuity (premium + accrual legs per unit spread).
    pub risky_annuity: f64,
}

/// Value an existing contract with running spread `contract_spread_bps`.
pub fn mark_to_market(
    market: &MarketData<f64>,
    option: &CdsOption,
    contract_spread_bps: f64,
) -> MarkToMarket {
    let result: SpreadResult = price_cds(market, option);
    let annuity = result.premium_annuity + result.accrual_annuity;
    let ds = (result.spread_bps - contract_spread_bps) / 10_000.0;
    MarkToMarket {
        fair_spread_bps: result.spread_bps,
        contract_spread_bps,
        value_per_notional: ds * annuity,
        risky_annuity: annuity,
    }
}

/// Bump-and-reprice sensitivities of the fair spread and of a position's
/// value, per one basis point of the bumped quantity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sensitivities {
    /// Change of position value per 1 bp parallel hazard bump (CS01-style,
    /// per unit notional, protection buyer's view).
    pub cs01: f64,
    /// Change of position value per 1 bp parallel interest-rate bump.
    pub ir01: f64,
    /// Change of position value per 1 % recovery-rate bump.
    pub rec01: f64,
}

/// Parallel-bump a curve by `bump` (absolute rate units).
fn bumped(curve: &Curve<f64>, bump: f64) -> Curve<f64> {
    let points = curve
        .points()
        .iter()
        .map(|p| CurvePoint { tenor: p.tenor, value: p.value + bump })
        .collect();
    match Curve::new(points) {
        Ok(c) => c,
        // A uniform finite bump preserves the tenor grid, so a curve that
        // was valid going in cannot come out invalid.
        Err(e) => panic!("bumped curve invalid: {e}"),
    }
}

/// Compute bump-and-reprice sensitivities for a seated contract.
pub fn sensitivities(
    market: &MarketData<f64>,
    option: &CdsOption,
    contract_spread_bps: f64,
) -> Sensitivities {
    const BP: f64 = 1e-4;
    let base = mark_to_market(market, option, contract_spread_bps).value_per_notional;

    let hazard_up =
        MarketData { interest: market.interest.clone(), hazard: bumped(&market.hazard, BP) };
    let cs01 = mark_to_market(&hazard_up, option, contract_spread_bps).value_per_notional - base;

    let rates_up =
        MarketData { interest: bumped(&market.interest, BP), hazard: market.hazard.clone() };
    let ir01 = mark_to_market(&rates_up, option, contract_spread_bps).value_per_notional - base;

    let rec_up = CdsOption { recovery_rate: (option.recovery_rate + 0.01).min(0.999), ..*option };
    let rec01 = mark_to_market(market, &rec_up, contract_spread_bps).value_per_notional - base;

    Sensitivities { cs01, ir01, rec01 }
}

/// A spread ladder: fair spreads across a maturity grid under one market
/// — the term structure of credit a desk quotes.
pub fn spread_ladder(
    market: &MarketData<f64>,
    maturities: &[f64],
    frequency: crate::option::PaymentFrequency,
    recovery: f64,
) -> Vec<(f64, f64)> {
    maturities
        .iter()
        .map(|&m| {
            let option = CdsOption::new(m, frequency, recovery);
            (m, price_cds(market, &option).spread_bps)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::option::PaymentFrequency;

    fn market() -> MarketData<f64> {
        MarketData::paper_workload(7)
    }

    fn option() -> CdsOption {
        CdsOption::new(5.0, PaymentFrequency::Quarterly, 0.40)
    }

    #[test]
    fn at_fair_spread_position_is_worthless() {
        let m = market();
        let o = option();
        let fair = price_cds(&m, &o).spread_bps;
        let mtm = mark_to_market(&m, &o, fair);
        assert!(mtm.value_per_notional.abs() < 1e-15);
        assert!(mtm.risky_annuity > 0.0);
    }

    #[test]
    fn cheap_protection_has_positive_value_to_buyer() {
        let m = market();
        let o = option();
        let fair = price_cds(&m, &o).spread_bps;
        let mtm = mark_to_market(&m, &o, fair - 50.0);
        assert!(mtm.value_per_notional > 0.0);
        let mtm_expensive = mark_to_market(&m, &o, fair + 50.0);
        assert!(mtm_expensive.value_per_notional < 0.0);
    }

    #[test]
    fn value_linear_in_contract_spread() {
        // value = (fair − contract)·annuity, so exactly linear.
        let m = market();
        let o = option();
        let v = |s: f64| mark_to_market(&m, &o, s).value_per_notional;
        let slope1 = v(100.0) - v(110.0);
        let slope2 = v(200.0) - v(210.0);
        assert!((slope1 - slope2).abs() < 1e-12);
    }

    #[test]
    fn cs01_positive_for_protection_buyer() {
        // Credit deteriorates ⇒ bought protection gains value.
        let m = market();
        let o = option();
        let s = sensitivities(&m, &o, 100.0);
        assert!(s.cs01 > 0.0, "cs01 {}", s.cs01);
    }

    #[test]
    fn cs01_roughly_lgd_times_annuity_bp() {
        // A 1 bp hazard bump moves the fair spread by ≈(1−R) bp, so the
        // value moves by ≈(1−R)·annuity·1e-4.
        let m = market();
        let o = option();
        let mtm = mark_to_market(&m, &o, 100.0);
        let s = sensitivities(&m, &o, 100.0);
        let approx = (1.0 - o.recovery_rate) * mtm.risky_annuity * 1e-4;
        assert!((s.cs01 - approx).abs() / approx < 0.12, "cs01 {} vs approx {approx}", s.cs01);
    }

    #[test]
    fn ir01_is_second_order() {
        let m = market();
        let o = option();
        let s = sensitivities(&m, &o, 100.0);
        assert!(s.ir01.abs() < s.cs01.abs() / 5.0, "ir01 {} vs cs01 {}", s.ir01, s.cs01);
    }

    #[test]
    fn higher_recovery_hurts_the_buyer() {
        let m = market();
        let o = option();
        let s = sensitivities(&m, &o, 100.0);
        assert!(s.rec01 < 0.0, "rec01 {}", s.rec01);
    }

    #[test]
    fn ladder_monotone_for_rising_hazard() {
        // The paper workload's hazard rises with tenor, so longer CDS
        // carry wider spreads.
        let ladder =
            spread_ladder(&market(), &[1.0, 3.0, 5.0, 7.0], PaymentFrequency::Quarterly, 0.4);
        for w in ladder.windows(2) {
            assert!(w[1].1 > w[0].1, "{:?}", ladder);
        }
    }

    #[test]
    fn ladder_flat_for_flat_hazard() {
        let m = MarketData::flat(0.02, 0.02, 64);
        let ladder = spread_ladder(&m, &[2.0, 5.0, 8.0], PaymentFrequency::Quarterly, 0.4);
        let first = ladder[0].1;
        for (_, s) in &ladder {
            assert!((s - first).abs() / first < 0.01);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::option::PaymentFrequency;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn mtm_sign_follows_spread_difference(
            maturity in 1.0f64..9.0,
            rec in 0.0f64..0.8,
            offset in -200.0f64..200.0,
        ) {
            let m = MarketData::paper_workload(3);
            let o = CdsOption::new(maturity, PaymentFrequency::Quarterly, rec);
            let fair = price_cds(&m, &o).spread_bps;
            let mtm = mark_to_market(&m, &o, fair + offset);
            // Buyer paid more than fair ⇒ negative value, and vice versa.
            if offset > 1e-9 {
                prop_assert!(mtm.value_per_notional < 0.0);
            } else if offset < -1e-9 {
                prop_assert!(mtm.value_per_notional > 0.0);
            }
        }

        #[test]
        fn annuity_increases_with_maturity(short in 1.0f64..4.0, extra in 1.0f64..5.0) {
            let m = MarketData::paper_workload(3);
            let a = mark_to_market(&m, &CdsOption::new(short, PaymentFrequency::Quarterly, 0.4), 100.0);
            let b = mark_to_market(&m, &CdsOption::new(short + extra, PaymentFrequency::Quarterly, 0.4), 100.0);
            prop_assert!(b.risky_annuity > a.risky_annuity);
        }
    }
}
