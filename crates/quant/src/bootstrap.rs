//! Hazard-curve bootstrapping — the inverse of the pricing problem.
//!
//! The engine prices spreads *given* a hazard curve; desks obtain that
//! curve by **bootstrapping** it from quoted par spreads: for each quoted
//! maturity in increasing order, solve for the hazard level on the newest
//! segment such that the quoted CDS reprices to par, keeping the already
//! bootstrapped segments fixed. This module implements the standard
//! piecewise-constant-hazard bootstrap with a guarded Newton/bisection
//! solver, giving the library the full round trip
//! `curve → spreads → curve`.

use crate::cds::price_cds;
use crate::curve::Curve;
use crate::option::{CdsOption, MarketData, PaymentFrequency};
use crate::QuantError;

/// One quoted CDS instrument used as bootstrap input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CdsQuote {
    /// Maturity in years.
    pub maturity: f64,
    /// Quoted par spread in basis points.
    pub spread_bps: f64,
    /// Premium payment frequency.
    pub frequency: PaymentFrequency,
    /// Assumed recovery rate.
    pub recovery: f64,
}

/// Bootstrap failures.
#[derive(Debug, Clone, PartialEq)]
pub enum BootstrapError {
    /// Quotes must be supplied with strictly increasing maturities.
    NonMonotoneMaturities {
        /// Index of the offending quote.
        index: usize,
    },
    /// The solver could not find a non-negative hazard repricing the
    /// quote (e.g. an arbitrageable downward spread step).
    NoSolution {
        /// Index of the quote that failed.
        index: usize,
        /// Best residual achieved, in basis points.
        residual_bps: f64,
    },
    /// Invalid quote parameters.
    InvalidQuote(QuantError),
}

impl std::fmt::Display for BootstrapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BootstrapError::NonMonotoneMaturities { index } => {
                write!(f, "quote maturities must strictly increase (index {index})")
            }
            BootstrapError::NoSolution { index, residual_bps } => {
                write!(f, "no hazard level reprices quote {index} (residual {residual_bps} bps)")
            }
            BootstrapError::InvalidQuote(e) => write!(f, "invalid quote: {e}"),
        }
    }
}

impl std::error::Error for BootstrapError {}

/// Result of a bootstrap: the fitted hazard curve plus diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct BootstrapResult {
    /// Piecewise-linear hazard curve through the fitted knots (flat
    /// within each quoted segment, knots at segment boundaries).
    pub hazard: Curve<f64>,
    /// Fitted hazard level per input quote segment.
    pub segment_hazards: Vec<f64>,
    /// Repricing residual per quote, in basis points.
    pub residuals_bps: Vec<f64>,
    /// Newton/bisection iterations used per quote.
    pub iterations: Vec<u32>,
}

/// Solver tolerance on the repriced spread, in basis points.
const TOL_BPS: f64 = 1e-8;
/// Iteration cap per quote.
const MAX_ITER: u32 = 80;

/// Bootstrap a hazard curve from par-spread quotes against the given
/// interest-rate curve.
///
/// ```
/// use cds_quant::bootstrap::{bootstrap_hazard, CdsQuote};
/// use cds_quant::prelude::*;
///
/// let rates = Curve::flat(0.02, 32, 30.0);
/// let quotes = [CdsQuote {
///     maturity: 5.0,
///     spread_bps: 120.0,
///     frequency: PaymentFrequency::Quarterly,
///     recovery: 0.40,
/// }];
/// let fitted = bootstrap_hazard(&rates, &quotes)?;
/// // The fitted curve reprices the quote to par.
/// let market = MarketData { interest: rates, hazard: fitted.hazard };
/// let spread = price_cds(&market, &CdsOption::new(5.0, PaymentFrequency::Quarterly, 0.40));
/// assert!((spread.spread_bps - 120.0).abs() < 1e-6);
/// # Ok::<(), cds_quant::bootstrap::BootstrapError>(())
/// ```
pub fn bootstrap_hazard(
    interest: &Curve<f64>,
    quotes: &[CdsQuote],
) -> Result<BootstrapResult, BootstrapError> {
    for (i, w) in quotes.windows(2).enumerate() {
        if w[1].maturity <= w[0].maturity {
            return Err(BootstrapError::NonMonotoneMaturities { index: i + 1 });
        }
    }
    let mut knot_tenors: Vec<f64> = Vec::new();
    let mut knot_values: Vec<f64> = Vec::new();
    let mut segment_hazards = Vec::with_capacity(quotes.len());
    let mut residuals = Vec::with_capacity(quotes.len());
    let mut iterations = Vec::with_capacity(quotes.len());

    for (index, quote) in quotes.iter().enumerate() {
        let option = CdsOption::validated(quote.maturity, quote.frequency, quote.recovery)
            .map_err(BootstrapError::InvalidQuote)?;

        // Reprice the quote with the candidate hazard on this segment.
        let reprice = |h: f64| -> f64 {
            let market = MarketData {
                interest: interest.clone(),
                hazard: curve_with_segment(&knot_tenors, &knot_values, quote.maturity, h),
            };
            price_cds(&market, &option).spread_bps - quote.spread_bps
        };

        // Initial guess from the credit triangle; bracket then refine.
        let lgd = (1.0 - quote.recovery).max(1e-6);
        let mut h = (quote.spread_bps / 10_000.0 / lgd).max(1e-6);
        let (mut lo, mut hi) = (0.0f64, 4.0f64.max(h * 4.0));
        if reprice(hi) < 0.0 {
            return Err(BootstrapError::NoSolution { index, residual_bps: reprice(hi).abs() });
        }
        let mut f_h = reprice(h);
        let mut iters = 0u32;
        while f_h.abs() > TOL_BPS && iters < MAX_ITER {
            iters += 1;
            // Maintain the bracket.
            if f_h > 0.0 {
                hi = h;
            } else {
                lo = h;
            }
            // Newton step via secant derivative, guarded by bisection.
            let dh = (h * 1e-6).max(1e-10);
            let slope = (reprice(h + dh) - f_h) / dh;
            let newton = if slope.abs() > 1e-12 { h - f_h / slope } else { f64::NAN };
            h = if newton.is_finite() && newton > lo && newton < hi {
                newton
            } else {
                0.5 * (lo + hi)
            };
            f_h = reprice(h);
        }
        if f_h.abs() > 1e-4 {
            return Err(BootstrapError::NoSolution { index, residual_bps: f_h.abs() });
        }

        // Commit this segment: flat hazard h on (prev_maturity, maturity].
        let seg_start = knot_tenors.last().copied().unwrap_or(0.0);
        // Knot just after the previous boundary keeps the curve piecewise
        // near-flat under linear interpolation.
        if knot_tenors.is_empty() {
            knot_tenors.push((quote.maturity * 1e-6).max(1e-9));
            knot_values.push(h);
        } else {
            knot_tenors.push(seg_start + 1e-9);
            knot_values.push(h);
        }
        knot_tenors.push(quote.maturity);
        knot_values.push(h);
        segment_hazards.push(h);
        residuals.push(f_h);
        iterations.push(iters);
    }

    Ok(BootstrapResult {
        hazard: Curve::from_slices(&knot_tenors, &knot_values)
            .unwrap_or_else(|e| unreachable!("bootstrap knots are strictly increasing: {e}")),
        segment_hazards,
        residuals_bps: residuals,
        iterations,
    })
}

/// Build the candidate hazard curve: committed knots plus a flat segment
/// at level `h` out to `maturity`.
fn curve_with_segment(tenors: &[f64], values: &[f64], maturity: f64, h: f64) -> Curve<f64> {
    let mut ts = tenors.to_vec();
    let mut vs = values.to_vec();
    let seg_start = ts.last().copied().unwrap_or(0.0);
    if ts.is_empty() {
        ts.push((maturity * 1e-6).max(1e-9));
        vs.push(h);
    } else {
        ts.push(seg_start + 1e-9);
        vs.push(h);
    }
    ts.push(maturity);
    vs.push(h);
    Curve::from_slices(&ts, &vs)
        .unwrap_or_else(|e| unreachable!("candidate knots strictly increasing: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok<T, E: std::fmt::Display>(r: Result<T, E>) -> T {
        match r {
            Ok(v) => v,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }

    fn flat_rates() -> Curve<f64> {
        Curve::flat(0.02, 64, 30.0)
    }

    fn quote(maturity: f64, spread_bps: f64) -> CdsQuote {
        CdsQuote { maturity, spread_bps, frequency: PaymentFrequency::Quarterly, recovery: 0.40 }
    }

    #[test]
    fn single_quote_recovers_flat_hazard() {
        // Price a CDS off a known flat hazard, then bootstrap it back.
        let h_true = 0.0175;
        let market = MarketData { interest: flat_rates(), hazard: Curve::flat(h_true, 64, 30.0) };
        let option = CdsOption::new(5.0, PaymentFrequency::Quarterly, 0.40);
        let par = price_cds(&market, &option).spread_bps;

        let result = ok(bootstrap_hazard(&flat_rates(), &[quote(5.0, par)]));
        assert_eq!(result.segment_hazards.len(), 1);
        let h_fit = result.segment_hazards[0];
        assert!((h_fit - h_true).abs() < 1e-6, "fitted {h_fit} vs true {h_true}");
        assert!(result.residuals_bps[0].abs() < 1e-7);
    }

    #[test]
    fn multi_quote_round_trip_reprices_exactly() {
        let rates = flat_rates();
        let quotes = vec![quote(1.0, 60.0), quote(3.0, 95.0), quote(5.0, 130.0), quote(7.0, 150.0)];
        let result = ok(bootstrap_hazard(&rates, &quotes));
        // Every input quote must reprice to par off the fitted curve.
        let market = MarketData { interest: rates, hazard: result.hazard.clone() };
        for q in &quotes {
            let option = CdsOption::new(q.maturity, q.frequency, q.recovery);
            let repriced = price_cds(&market, &option).spread_bps;
            assert!(
                (repriced - q.spread_bps).abs() < 1e-6,
                "maturity {}: {repriced} vs {}",
                q.maturity,
                q.spread_bps
            );
        }
        // Rising spreads ⇒ rising forward hazards.
        for w in result.segment_hazards.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn steeply_inverted_curve_yields_falling_hazards() {
        let quotes = vec![quote(1.0, 300.0), quote(5.0, 150.0)];
        let result = ok(bootstrap_hazard(&flat_rates(), &quotes));
        assert!(result.segment_hazards[1] < result.segment_hazards[0]);
    }

    #[test]
    fn arbitrageable_inversion_rejected() {
        // 5y spread so far below 1y that the 1-5y forward hazard would
        // have to be negative.
        let quotes = vec![quote(1.0, 500.0), quote(5.0, 10.0)];
        match bootstrap_hazard(&flat_rates(), &quotes) {
            Err(BootstrapError::NoSolution { index: 1, .. }) => {}
            other => panic!("expected NoSolution, got {other:?}"),
        }
    }

    #[test]
    fn non_monotone_maturities_rejected() {
        let quotes = vec![quote(5.0, 100.0), quote(3.0, 90.0)];
        assert!(matches!(
            bootstrap_hazard(&flat_rates(), &quotes),
            Err(BootstrapError::NonMonotoneMaturities { index: 1 })
        ));
    }

    #[test]
    fn solver_converges_quickly() {
        let quotes = vec![quote(1.0, 60.0), quote(5.0, 130.0), quote(10.0, 180.0)];
        let result = ok(bootstrap_hazard(&flat_rates(), &quotes));
        for (i, iters) in result.iterations.iter().enumerate() {
            assert!(*iters <= 20, "quote {i} took {iters} iterations");
        }
    }

    #[test]
    fn credit_triangle_is_a_good_first_guess() {
        // The fitted hazard should be near spread/(1−R).
        let quotes = vec![quote(5.0, 120.0)];
        let result = ok(bootstrap_hazard(&flat_rates(), &quotes));
        let triangle = 120.0 / 10_000.0 / 0.6;
        assert!((result.segment_hazards[0] - triangle).abs() / triangle < 0.05);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn round_trip_from_random_flat_hazard(
            h in 0.002f64..0.08,
            r in 0.0f64..0.05,
            maturity in 1.0f64..9.0,
        ) {
            let rates = Curve::flat(r, 32, 30.0);
            let market = MarketData { interest: rates.clone(), hazard: Curve::flat(h, 32, 30.0) };
            let option = CdsOption::new(maturity, PaymentFrequency::Quarterly, 0.40);
            let par = price_cds(&market, &option).spread_bps;
            let fitted = bootstrap_hazard(
                &rates,
                &[CdsQuote { maturity, spread_bps: par, frequency: PaymentFrequency::Quarterly, recovery: 0.40 }],
            );
            prop_assert!(fitted.is_ok());
            let result = match fitted {
                Ok(r) => r,
                Err(_) => unreachable!(),
            };
            prop_assert!((result.segment_hazards[0] - h).abs() < 1e-5,
                "fitted {} vs true {}", result.segment_hazards[0], h);
        }

        #[test]
        fn bootstrap_reprices_random_upward_ladders(
            base in 40.0f64..150.0,
            step1 in 1.0f64..60.0,
            step2 in 1.0f64..60.0,
        ) {
            let rates = Curve::flat(0.02, 32, 30.0);
            let quotes = vec![
                CdsQuote { maturity: 2.0, spread_bps: base, frequency: PaymentFrequency::Quarterly, recovery: 0.4 },
                CdsQuote { maturity: 5.0, spread_bps: base + step1, frequency: PaymentFrequency::Quarterly, recovery: 0.4 },
                CdsQuote { maturity: 8.0, spread_bps: base + step1 + step2, frequency: PaymentFrequency::Quarterly, recovery: 0.4 },
            ];
            let fitted = bootstrap_hazard(&rates, &quotes);
            prop_assert!(fitted.is_ok());
            let result = match fitted {
                Ok(r) => r,
                Err(_) => unreachable!(),
            };
            let market = MarketData { interest: rates, hazard: result.hazard };
            for q in &quotes {
                let option = CdsOption::new(q.maturity, q.frequency, q.recovery);
                let repriced = price_cds(&market, &option).spread_bps;
                prop_assert!((repriced - q.spread_bps).abs() < 1e-5);
            }
        }
    }
}
