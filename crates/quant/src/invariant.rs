//! Per-option result-integrity invariants — the guards behind the
//! engine layer's spread scrubber.
//!
//! A fair CDS spread computed against validated market data must be
//! finite, non-negative, and bounded above by a recovery-adjusted
//! hazard envelope (the credit triangle `s ≈ h·(1−R)` tightened with
//! the exact per-period discount/survival ratio bound); a full
//! [`SpreadResult`] must additionally have internally consistent legs
//! (the quoted spread reproduces `LGD·protection/(premium+accrual)`).
//! Anything that fails these checks is *not* a plausible pricing
//! output — it is corruption, and the engine quarantines and reprices
//! it.

use crate::cds::{SpreadResult, DEGENERATE_ANNUITY_EPS};
use crate::option::{CdsOption, MarketData};

/// Multiplicative headroom applied on top of the analytic envelope
/// bound, absorbing schedule-discretisation and floating-point error.
pub const ENVELOPE_HEADROOM: f64 = 1.01;

/// Absolute slack in basis points added to every envelope, so that
/// zero-hazard markets (envelope exactly 0) still admit the exactly-zero
/// spreads they produce through floating-point summation.
pub const ENVELOPE_SLACK_BPS: f64 = 1e-6;

/// Relative tolerance for the leg-consistency identity
/// `spread = LGD·protection/(premium+accrual)·10⁴`.
pub const LEG_CONSISTENCY_REL_TOL: f64 = 1e-9;

/// One violated spread invariant. Carries enough context for a
/// quarantine report to say *why* the value was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum SpreadViolation {
    /// The spread is NaN or infinite.
    NonFinite {
        /// The offending value.
        spread_bps: f64,
    },
    /// The spread is below zero — impossible for a protection premium.
    Negative {
        /// The offending value.
        spread_bps: f64,
    },
    /// The spread exceeds the recovery-adjusted hazard envelope.
    EnvelopeExceeded {
        /// The offending value.
        spread_bps: f64,
        /// The envelope it violated.
        envelope_bps: f64,
    },
    /// The quoted spread does not reproduce its own legs.
    LegInconsistent {
        /// The quoted spread.
        spread_bps: f64,
        /// The spread implied by `LGD·protection/(premium+accrual)`.
        implied_bps: f64,
    },
    /// A leg value is non-finite or outside its admissible domain.
    LegOutOfDomain {
        /// Which leg violated its domain.
        leg: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The payment-leg PV is degenerate, so no finite spread exists.
    DegenerateAnnuity {
        /// The offending premium + accrual annuity.
        annuity: f64,
    },
}

impl std::fmt::Display for SpreadViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpreadViolation::NonFinite { spread_bps } => {
                write!(f, "spread {spread_bps} bps is not finite")
            }
            SpreadViolation::Negative { spread_bps } => {
                write!(f, "spread {spread_bps} bps is negative")
            }
            SpreadViolation::EnvelopeExceeded { spread_bps, envelope_bps } => {
                write!(f, "spread {spread_bps} bps exceeds hazard envelope {envelope_bps} bps")
            }
            SpreadViolation::LegInconsistent { spread_bps, implied_bps } => {
                write!(f, "spread {spread_bps} bps inconsistent with legs (imply {implied_bps})")
            }
            SpreadViolation::LegOutOfDomain { leg, value } => {
                write!(f, "{leg} = {value} outside admissible domain")
            }
            SpreadViolation::DegenerateAnnuity { annuity } => {
                write!(f, "payment-leg annuity {annuity} is degenerate")
            }
        }
    }
}

impl std::error::Error for SpreadViolation {}

/// Upper bound, in basis points, on the fair spread of `option` under
/// `market`.
///
/// Per period `i` the protection increment satisfies
/// `S(tᵢ₋₁)−S(tᵢ) ≤ S(tᵢ₋₁)·h_max·Δᵢ`, so the spread quotient is
/// bounded by `h_max·LGD·10⁴` times the worst per-period ratio
/// `DF(mᵢ)S(tᵢ₋₁) / DF(tᵢ)S(tᵢ) ≤ exp((h_max + r_max/2)·Δ)` — with
/// `Δ = 1/payments_per_year` the longest period the schedule can
/// produce. [`ENVELOPE_HEADROOM`] and [`ENVELOPE_SLACK_BPS`] are added
/// on top. Zero-hazard markets yield an envelope of just the slack, so
/// their exactly-zero spreads pass.
#[must_use]
pub fn spread_envelope_bps(market: &MarketData<f64>, option: &CdsOption) -> f64 {
    let h_max = market.hazard.points().iter().map(|p| p.value).fold(0.0_f64, f64::max).max(0.0);
    let r_max = market.interest.points().iter().map(|p| p.value).fold(0.0_f64, f64::max).max(0.0);
    let dt = 1.0 / f64::from(option.frequency.per_year());
    let period_ratio = ((h_max + 0.5 * r_max) * dt).exp();
    let lgd = 1.0 - option.recovery_rate;
    h_max * lgd * 10_000.0 * period_ratio * ENVELOPE_HEADROOM + ENVELOPE_SLACK_BPS
}

/// Guard a bare spread value (all the engine's output streams carry):
/// finite, non-negative, and within the hazard envelope.
pub fn check_spread_bps(spread_bps: f64, envelope_bps: f64) -> Result<(), SpreadViolation> {
    if !spread_bps.is_finite() {
        return Err(SpreadViolation::NonFinite { spread_bps });
    }
    if spread_bps < 0.0 {
        return Err(SpreadViolation::Negative { spread_bps });
    }
    if spread_bps > envelope_bps {
        return Err(SpreadViolation::EnvelopeExceeded { spread_bps, envelope_bps });
    }
    Ok(())
}

/// Guard a full [`SpreadResult`]: every leg finite and in domain, the
/// annuity non-degenerate, and the quoted spread reproducing
/// `LGD·protection/(premium+accrual)·10⁴` to [`LEG_CONSISTENCY_REL_TOL`].
pub fn check_result(result: &SpreadResult, recovery_rate: f64) -> Result<(), SpreadViolation> {
    let legs = [
        ("premium_annuity", result.premium_annuity, 0.0, f64::INFINITY),
        ("protection_unit", result.protection_unit, 0.0, 1.0 + 1e-12),
        ("accrual_annuity", result.accrual_annuity, 0.0, f64::INFINITY),
        ("default_prob_at_maturity", result.default_prob_at_maturity, 0.0, 1.0 + 1e-12),
    ];
    for (leg, value, lo, hi) in legs {
        if !value.is_finite() || value < lo || value > hi {
            return Err(SpreadViolation::LegOutOfDomain { leg, value });
        }
    }
    let annuity = result.premium_annuity + result.accrual_annuity;
    if annuity <= DEGENERATE_ANNUITY_EPS {
        return Err(SpreadViolation::DegenerateAnnuity { annuity });
    }
    if !result.spread_bps.is_finite() {
        return Err(SpreadViolation::NonFinite { spread_bps: result.spread_bps });
    }
    let implied_bps = (1.0 - recovery_rate) * result.protection_unit / annuity * 10_000.0;
    let tol = LEG_CONSISTENCY_REL_TOL * result.spread_bps.abs().max(1.0);
    if (implied_bps - result.spread_bps).abs() > tol {
        return Err(SpreadViolation::LegInconsistent {
            spread_bps: result.spread_bps,
            implied_bps,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cds::try_price_cds;
    use crate::option::{CdsOption, MarketData, PaymentFrequency, PortfolioGenerator};

    fn ok<T, E: std::fmt::Display>(r: Result<T, E>) -> T {
        match r {
            Ok(v) => v,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }

    #[test]
    fn reference_spreads_pass_all_guards() {
        let market = MarketData::paper_workload(42);
        for option in PortfolioGenerator::uniform(32, 5.5, PaymentFrequency::Quarterly, 0.40) {
            let result = ok(try_price_cds(&market, &option));
            let envelope = spread_envelope_bps(&market, &option);
            ok(check_spread_bps(result.spread_bps, envelope));
            ok(check_result(&result, option.recovery_rate));
        }
    }

    #[test]
    fn envelope_scales_with_recovery() {
        let market = MarketData::flat(0.02, 0.015, 64);
        let low = CdsOption::new(5.0, PaymentFrequency::Quarterly, 0.10);
        let high = CdsOption::new(5.0, PaymentFrequency::Quarterly, 0.80);
        assert!(spread_envelope_bps(&market, &low) > spread_envelope_bps(&market, &high));
    }

    #[test]
    fn guards_reject_each_violation_kind() {
        assert!(matches!(
            check_spread_bps(f64::NAN, 100.0),
            Err(SpreadViolation::NonFinite { .. })
        ));
        assert!(matches!(check_spread_bps(-1.0, 100.0), Err(SpreadViolation::Negative { .. })));
        assert!(matches!(
            check_spread_bps(101.0, 100.0),
            Err(SpreadViolation::EnvelopeExceeded { .. })
        ));
        assert!(check_spread_bps(0.0, 0.0 + ENVELOPE_SLACK_BPS).is_ok());
    }

    #[test]
    fn leg_consistency_detects_tampered_spread() {
        let market = MarketData::flat(0.02, 0.015, 64);
        let option = CdsOption::new(5.0, PaymentFrequency::Quarterly, 0.40);
        let mut result = ok(try_price_cds(&market, &option));
        ok(check_result(&result, option.recovery_rate));
        result.spread_bps += 0.5;
        assert!(matches!(
            check_result(&result, option.recovery_rate),
            Err(SpreadViolation::LegInconsistent { .. })
        ));
    }
}
