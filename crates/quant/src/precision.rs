//! Floating-point abstraction enabling the paper's "reduced precision"
//! further-work exploration.
//!
//! The CLUSTER 2021 paper performs all calculations in double precision and
//! names reduced precision (single precision / fixed point on Versal ACAPs)
//! as future work. Making the pricer generic over [`CdsFloat`] lets the
//! harness run the identical algorithm in `f32` and quantify the accuracy /
//! resource trade-off without a second code path.

/// Minimal floating-point trait covering exactly the operations the CDS
/// mathematics needs. Implemented for `f64` (paper-faithful) and `f32`
/// (reduced-precision ablation).
///
/// A bespoke trait is used instead of an external numerics crate to stay
/// within the offline dependency set; only genuinely required operations
/// are included.
pub trait CdsFloat:
    Copy
    + PartialOrd
    + std::fmt::Debug
    + std::fmt::Display
    + std::ops::Add<Output = Self>
    + std::ops::Sub<Output = Self>
    + std::ops::Mul<Output = Self>
    + std::ops::Div<Output = Self>
    + std::ops::Neg<Output = Self>
    + std::ops::AddAssign
    + Send
    + Sync
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// One half, used by trapezoidal integration and accrual mid-points.
    const HALF: Self;
    /// Basis-point scale factor (10⁴).
    const BPS: Self;

    /// Natural exponential.
    fn exp(self) -> Self;
    /// Natural logarithm.
    fn ln(self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Largest of two values.
    fn max(self, other: Self) -> Self;
    /// Smallest of two values.
    fn min(self, other: Self) -> Self;
    /// True when the value is neither NaN nor infinite.
    fn is_finite(self) -> bool;
    /// Lossless-as-possible conversion from `f64` (lossy for `f32`).
    fn from_f64(v: f64) -> Self;
    /// Widening conversion to `f64` for reporting and error measurement.
    fn to_f64(self) -> f64;
    /// Conversion from a small non-negative integer (loop indices, counts).
    fn from_usize(v: usize) -> Self;
}

impl CdsFloat for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const HALF: Self = 0.5;
    const BPS: Self = 10_000.0;

    #[inline]
    fn exp(self) -> Self {
        f64::exp(self)
    }
    #[inline]
    fn ln(self) -> Self {
        f64::ln(self)
    }
    #[inline]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline]
    fn max(self, other: Self) -> Self {
        f64::max(self, other)
    }
    #[inline]
    fn min(self, other: Self) -> Self {
        f64::min(self, other)
    }
    #[inline]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
    #[inline]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn from_usize(v: usize) -> Self {
        v as f64
    }
}

impl CdsFloat for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const HALF: Self = 0.5;
    const BPS: Self = 10_000.0;

    #[inline]
    fn exp(self) -> Self {
        f32::exp(self)
    }
    #[inline]
    fn ln(self) -> Self {
        f32::ln(self)
    }
    #[inline]
    fn abs(self) -> Self {
        f32::abs(self)
    }
    #[inline]
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }
    #[inline]
    fn max(self, other: Self) -> Self {
        f32::max(self, other)
    }
    #[inline]
    fn min(self, other: Self) -> Self {
        f32::min(self, other)
    }
    #[inline]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
    #[inline]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn from_usize(v: usize) -> Self {
        v as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<F: CdsFloat>() {
        assert_eq!(F::ZERO.to_f64(), 0.0);
        assert_eq!(F::ONE.to_f64(), 1.0);
        assert_eq!(F::HALF.to_f64(), 0.5);
        assert_eq!(F::BPS.to_f64(), 10_000.0);
        assert!((F::from_f64(2.0).sqrt().to_f64() - std::f64::consts::SQRT_2).abs() < 1e-6);
        assert!((F::ONE.exp().to_f64() - std::f64::consts::E).abs() < 1e-6);
        assert!((F::from_f64(std::f64::consts::E).ln().to_f64() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn f64_ops() {
        roundtrip::<f64>();
    }

    #[test]
    fn f32_ops() {
        roundtrip::<f32>();
    }

    #[test]
    fn min_max_abs() {
        assert_eq!(CdsFloat::max(1.0f64, 2.0), 2.0);
        assert_eq!(CdsFloat::min(1.0f32, 2.0), 1.0);
        assert_eq!(CdsFloat::abs(-3.5f64), 3.5);
    }

    #[test]
    fn from_usize_exact_for_small_integers() {
        for v in [0usize, 1, 7, 1024] {
            assert_eq!(<f64 as CdsFloat>::from_usize(v), v as f64);
            assert_eq!(<f32 as CdsFloat>::from_usize(v), v as f32);
        }
    }

    #[test]
    fn finiteness() {
        assert!(1.0f64.is_finite());
        assert!(!<f64 as CdsFloat>::from_f64(f64::NAN).is_finite());
        assert!(!<f32 as CdsFloat>::from_f64(f64::INFINITY).is_finite());
    }
}
