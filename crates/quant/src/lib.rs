//! # cds-quant — Credit Default Swap mathematics
//!
//! The quantitative-finance substrate underpinning the FPGA CDS engine
//! reproduction. It implements, from scratch, the mathematics the Xilinx
//! Vitis CDS engine evaluates (following Hull, *Options, Futures and Other
//! Derivatives*):
//!
//! * piecewise-linear **term structures** for interest rates and hazard
//!   rates ([`curve::Curve`]),
//! * **discount factors** and **survival probabilities** derived from them,
//! * payment **schedules** — the "distinct time points" of the paper's
//!   Figure 1 ([`schedule`]),
//! * the **reference CDS pricer** computing the fair spread of an option
//!   from default probability, premium-leg, protection-leg and accrual
//!   terms ([`cds`]),
//! * the **Listing 1 accumulator**: the 7-lane partial-sum reduction that
//!   breaks the double-precision add dependency chain ([`accumulate`]),
//! * seeded **workload generators** reproducing the paper's experimental
//!   setup of 1024-entry curves ([`option`]).
//!
//! Everything numeric is generic over [`precision::CdsFloat`] (`f64` and
//! `f32`) so the paper's "reduced precision" further-work item can be
//! explored; the `f64` instantiation is the primary, paper-faithful API.
//!
//! ## Quick example
//!
//! ```
//! use cds_quant::prelude::*;
//!
//! // Flat 2% interest, flat 1.5% hazard, 40% recovery, 5y quarterly CDS.
//! let market = MarketData::flat(0.02, 0.015, 256);
//! let option = CdsOption::new(5.0, PaymentFrequency::Quarterly, 0.40);
//! let spread = price_cds(&market, &option);
//! // Credit triangle: spread ≈ hazard × (1 − recovery) = 90 bps.
//! assert!((spread.spread_bps - 90.0).abs() < 1.5);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod accumulate;
pub mod bootstrap;
pub mod calendar;
pub mod cds;
pub mod curve;
pub mod daycount;
pub mod interp;
pub mod invariant;
pub mod montecarlo;
pub mod option;
pub mod precision;
pub mod risk;
pub mod schedule;
pub mod ulp;

/// Convenient glob import for downstream crates and examples.
pub mod prelude {
    pub use crate::bootstrap::{bootstrap_hazard, BootstrapResult, CdsQuote};
    pub use crate::calendar::{imm_schedule, Date};
    pub use crate::cds::{
        price_cds, price_cds_generic, price_cds_with_schedule, try_price_cds, CdsPricer,
        SpreadResult,
    };
    pub use crate::curve::{Curve, CurvePoint};
    pub use crate::daycount::YearFraction;
    pub use crate::invariant::{
        check_result, check_spread_bps, spread_envelope_bps, SpreadViolation,
    };
    pub use crate::option::{CdsOption, MarketData, PaymentFrequency, PortfolioGenerator};
    pub use crate::precision::CdsFloat;
    pub use crate::risk::{
        mark_to_market, sensitivities, spread_ladder, MarkToMarket, Sensitivities,
    };
    pub use crate::schedule::PaymentSchedule;
    pub use crate::ulp::{ulp_diff, UlpComparator, UlpMismatch};
    pub use crate::QuantError;
}

/// Errors produced when constructing or evaluating quant objects.
#[derive(Debug, Clone, PartialEq)]
pub enum QuantError {
    /// A curve was constructed with fewer than two points.
    CurveTooShort {
        /// Number of points supplied.
        got: usize,
    },
    /// Curve tenors must be strictly increasing and non-negative.
    NonMonotoneTenors {
        /// Index of the offending point.
        index: usize,
    },
    /// A curve value was not finite.
    NonFiniteValue {
        /// Index of the offending point.
        index: usize,
    },
    /// An option parameter was out of its admissible domain.
    InvalidOption {
        /// Human-readable description of the violated constraint.
        reason: &'static str,
    },
    /// The contract's payment-leg PV is zero or near zero, so the fair
    /// spread quotient diverges (e.g. survival collapses before the first
    /// payment date).
    DegenerateOption {
        /// The offending premium + accrual annuity.
        annuity: f64,
    },
}

impl std::fmt::Display for QuantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuantError::CurveTooShort { got } => {
                write!(f, "curve needs at least 2 points, got {got}")
            }
            QuantError::NonMonotoneTenors { index } => {
                write!(f, "curve tenors must be strictly increasing (violated at index {index})")
            }
            QuantError::NonFiniteValue { index } => {
                write!(f, "curve value at index {index} is not finite")
            }
            QuantError::InvalidOption { reason } => write!(f, "invalid CDS option: {reason}"),
            QuantError::DegenerateOption { annuity } => {
                write!(f, "degenerate CDS option: payment-leg PV {annuity:e} is near zero")
            }
        }
    }
}

impl std::error::Error for QuantError {}

#[cfg(test)]
mod error_tests {
    use super::QuantError;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(QuantError, &str)> = vec![
            (QuantError::CurveTooShort { got: 1 }, "at least 2"),
            (QuantError::NonMonotoneTenors { index: 3 }, "index 3"),
            (QuantError::NonFiniteValue { index: 7 }, "index 7"),
            (QuantError::InvalidOption { reason: "bad recovery" }, "bad recovery"),
            (QuantError::DegenerateOption { annuity: 0.0 }, "payment-leg"),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg} should mention {needle}");
        }
    }
}
