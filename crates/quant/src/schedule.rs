//! Payment schedule generation — the "determine a set of distinct time
//! points" step at the top of the paper's Figure 1.
//!
//! For an option with maturity `T` and payment frequency `f` (payments per
//! year), the engine generates payment dates `Δ, 2Δ, …` with `Δ = 1/f`,
//! extending "to the maturity date (the end of the CDS)"; a short final
//! stub period ends exactly at `T`. Every subsequent engine stage loops
//! over these time points.

use crate::precision::CdsFloat;
use crate::QuantError;

/// The ordered time points of a CDS premium schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct PaymentSchedule<F: CdsFloat = f64> {
    points: Vec<F>,
}

impl<F: CdsFloat> PaymentSchedule<F> {
    /// Generate the schedule for `maturity` years with `payments_per_year`
    /// premium payments per year.
    ///
    /// The final period is a stub ending exactly at `maturity` when the
    /// maturity is not a whole number of periods.
    pub fn generate(maturity: F, payments_per_year: u32) -> Result<Self, QuantError> {
        if maturity <= F::ZERO || !maturity.is_finite() {
            return Err(QuantError::InvalidOption {
                reason: "maturity must be positive and finite",
            });
        }
        if payments_per_year == 0 {
            return Err(QuantError::InvalidOption { reason: "payment frequency must be positive" });
        }
        let delta = F::ONE / F::from_usize(payments_per_year as usize);
        let mut points = Vec::new();
        let mut i = 1usize;
        loop {
            let t = delta * F::from_usize(i);
            if t < maturity {
                points.push(t);
            } else {
                points.push(maturity);
                break;
            }
            i += 1;
            // Guard against pathological tiny deltas from f32 rounding.
            if i > 4_000_000 {
                return Err(QuantError::InvalidOption { reason: "schedule too long" });
            }
        }
        Ok(PaymentSchedule { points })
    }

    /// Build a schedule from explicit time points (strictly increasing,
    /// positive) — used when payment dates come from a calendar (e.g. the
    /// IMM grid) rather than from an even division of the maturity.
    pub fn from_points(points: Vec<F>) -> Result<Self, QuantError> {
        if points.is_empty() {
            return Err(QuantError::InvalidOption { reason: "schedule needs at least one point" });
        }
        let mut prev = F::ZERO;
        for &p in &points {
            if p <= prev || !p.is_finite() {
                return Err(QuantError::InvalidOption {
                    reason: "schedule points must be finite and strictly increasing",
                });
            }
            prev = p;
        }
        Ok(PaymentSchedule { points })
    }

    /// The ordered payment time points (strictly increasing, last equals
    /// maturity).
    #[inline]
    pub fn points(&self) -> &[F] {
        &self.points
    }

    /// Number of time points — the trip count of every per-time-point
    /// engine loop.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Never true: a valid schedule has at least one point (the maturity).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Iterate over periods as `(start, end)` pairs, starting at the
    /// valuation date.
    pub fn periods(&self) -> impl Iterator<Item = (F, F)> + '_ {
        std::iter::once(F::ZERO).chain(self.points.iter().copied()).zip(self.points.iter().copied())
    }

    /// Accrual period lengths `Δᵢ = tᵢ − tᵢ₋₁`.
    pub fn period_lengths(&self) -> Vec<F> {
        self.periods().map(|(a, b)| b - a).collect()
    }

    /// Mid-points of each period, used to discount default payoffs and
    /// accrued premium ("premiums are paid ahead of time", so on default
    /// mid-period half the period's premium has accrued on average).
    pub fn midpoints(&self) -> Vec<F> {
        self.periods().map(|(a, b)| F::HALF * (a + b)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok<T>(r: Result<T, crate::QuantError>) -> T {
        match r {
            Ok(v) => v,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }

    #[test]
    fn quarterly_five_years_has_twenty_points() {
        let s = ok(PaymentSchedule::<f64>::generate(5.0, 4));
        assert_eq!(s.len(), 20);
        assert_eq!(s.points()[s.len() - 1], 5.0);
        assert!((s.points()[0] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn stub_period_ends_at_maturity() {
        let s = ok(PaymentSchedule::<f64>::generate(1.1, 2));
        // 0.5, 1.0, then stub to 1.1.
        assert_eq!(s.len(), 3);
        assert!((s.points()[2] - 1.1).abs() < 1e-12);
        let lens = s.period_lengths();
        assert!((lens[2] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn short_maturity_single_stub() {
        let s = ok(PaymentSchedule::<f64>::generate(0.1, 4));
        assert_eq!(s.len(), 1);
        assert_eq!(s.points()[0], 0.1);
    }

    #[test]
    fn maturity_on_period_boundary_has_no_stub() {
        let s = ok(PaymentSchedule::<f64>::generate(2.0, 2));
        assert_eq!(s.len(), 4);
        let lens = s.period_lengths();
        for l in lens {
            assert!((l - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn points_strictly_increasing() {
        let s = ok(PaymentSchedule::<f64>::generate(7.3, 12));
        for w in s.points().windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn periods_tile_the_horizon() {
        let s = ok(PaymentSchedule::<f64>::generate(3.7, 4));
        let total: f64 = s.period_lengths().iter().sum();
        assert!((total - 3.7).abs() < 1e-12);
    }

    #[test]
    fn midpoints_inside_periods() {
        let s = ok(PaymentSchedule::<f64>::generate(4.0, 4));
        for ((a, b), m) in s.periods().zip(s.midpoints()) {
            assert!(a < m && m < b);
        }
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(PaymentSchedule::<f64>::generate(0.0, 4).is_err());
        assert!(PaymentSchedule::<f64>::generate(-1.0, 4).is_err());
        assert!(PaymentSchedule::<f64>::generate(f64::NAN, 4).is_err());
        assert!(PaymentSchedule::<f64>::generate(5.0, 0).is_err());
    }

    #[test]
    fn from_points_validates() {
        assert!(PaymentSchedule::from_points(vec![0.25, 0.5, 1.1]).is_ok());
        assert!(PaymentSchedule::<f64>::from_points(vec![]).is_err());
        assert!(PaymentSchedule::from_points(vec![0.5, 0.5]).is_err());
        assert!(PaymentSchedule::from_points(vec![0.5, 0.2]).is_err());
        assert!(PaymentSchedule::from_points(vec![0.0, 0.5]).is_err());
        assert!(PaymentSchedule::from_points(vec![0.5, f64::NAN]).is_err());
    }

    #[test]
    fn annual_payments() {
        let s = ok(PaymentSchedule::<f64>::generate(10.0, 1));
        assert_eq!(s.len(), 10);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn schedule_invariants(maturity in 0.05f64..30.0, freq in 1u32..=12) {
            let generated = PaymentSchedule::<f64>::generate(maturity, freq);
            prop_assert!(generated.is_ok());
            let s = match generated {
                Ok(s) => s,
                Err(_) => unreachable!(),
            };
            // Last point is the maturity.
            prop_assert!((s.points()[s.len() - 1] - maturity).abs() < 1e-9);
            // Strictly increasing.
            for w in s.points().windows(2) {
                prop_assert!(w[0] < w[1]);
            }
            // Period lengths positive and at most one period long.
            for l in s.period_lengths() {
                prop_assert!(l > 0.0 && l <= 1.0 / freq as f64 + 1e-9);
            }
            // Count matches ceil(maturity * freq).
            let expect = (maturity * freq as f64).ceil() as usize;
            prop_assert!((s.len() as i64 - expect as i64).abs() <= 1);
        }
    }
}
