//! The reference ("golden") CDS spread pricer.
//!
//! Implements the Figure-1 pipeline of the paper as straight-line code:
//! for each time point of the option's schedule compute
//!
//! 1. the **defaulting probability** — accumulate the hazard-rate constant
//!    data up to the time point (cumulative hazard → survival),
//! 2. the **present value of expected payments** (premium leg per unit
//!    spread): `Δᵢ · DF(tᵢ) · S(tᵢ)`,
//! 3. the **present value of the expected payoff** (protection leg): the
//!    default-probability increment over the period discounted at the
//!    period mid-point, scaled by `1 − recovery`,
//! 4. the **accrued protection** — half a period's premium owed on
//!    mid-period default ("premiums are paid ahead of time"),
//!
//! then combine the accumulated terms into the fair **spread**, quoted in
//! basis points ("dividing this basis points number by 100 results in a
//! percentage of the overall loan").
//!
//! Every optimised engine variant must reproduce this module's numbers;
//! integration tests enforce it.

use crate::accumulate::sum_kahan;
use crate::option::{CdsOption, MarketData};
use crate::precision::CdsFloat;
use crate::schedule::PaymentSchedule;
use crate::QuantError;

/// Payment-leg PV (premium + accrual annuity) below this threshold makes
/// the spread quotient meaningless: the fair spread diverges. Such
/// contracts surface as [`QuantError::DegenerateOption`].
pub const DEGENERATE_ANNUITY_EPS: f64 = 1e-12;

/// Result of pricing one CDS option.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpreadResult {
    /// Fair spread in basis points per annum.
    pub spread_bps: f64,
    /// Premium-leg annuity per unit spread: `Σ Δᵢ·DF(tᵢ)·S(tᵢ)`.
    pub premium_annuity: f64,
    /// Protection leg per unit loss-given-default: `Σ DF(mᵢ)·(S(tᵢ₋₁)−S(tᵢ))`.
    pub protection_unit: f64,
    /// Accrual annuity per unit spread: `Σ (Δᵢ/2)·DF(mᵢ)·(S(tᵢ₋₁)−S(tᵢ))`.
    pub accrual_annuity: f64,
    /// Probability the reference entity has defaulted by maturity.
    pub default_prob_at_maturity: f64,
    /// Number of schedule time points processed.
    pub time_points: usize,
}

/// Per-time-point intermediate terms, exposed so the dataflow engine
/// stages can be validated term-by-term against the reference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimePointTerms<F: CdsFloat = f64> {
    /// The time point itself.
    pub t: F,
    /// Survival probability `S(t)`.
    pub survival: F,
    /// Defaulting probability `1 − S(t)`.
    pub default_prob: F,
    /// Premium payment term `Δ·DF(t)·S(t)`.
    pub payment: F,
    /// Protection payoff term `DF(m)·(S(t₋)−S(t))` (unit LGD).
    pub payoff: F,
    /// Accrual term `(Δ/2)·DF(m)·(S(t₋)−S(t))`.
    pub accrual: F,
}

/// Compute the per-time-point terms of an option under the given market
/// data. This is the numerically exact decomposition the dataflow stages
/// stream between each other.
pub fn time_point_terms<F: CdsFloat>(
    market: &MarketData<F>,
    maturity: F,
    payments_per_year: u32,
    schedule: &PaymentSchedule<F>,
) -> Vec<TimePointTerms<F>> {
    let _ = (maturity, payments_per_year); // schedule already encodes both
    let mut prev_t = F::ZERO;
    let mut prev_survival = F::ONE;
    let mut out = Vec::with_capacity(schedule.len());
    for &t in schedule.points() {
        let survival = market.hazard.survival(t);
        let default_prob = F::ONE - survival;
        let delta = t - prev_t;
        let df_t = market.interest.discount_factor(t);
        let payment = delta * df_t * survival;
        let mid = F::HALF * (prev_t + t);
        let df_mid = market.interest.discount_factor(mid);
        let d_pd = prev_survival - survival;
        let payoff = df_mid * d_pd;
        let accrual = F::HALF * delta * df_mid * d_pd;
        out.push(TimePointTerms { t, survival, default_prob, payment, payoff, accrual });
        prev_t = t;
        prev_survival = survival;
    }
    out
}

/// Price one CDS option against `f64` market data — the primary,
/// paper-faithful entry point. Panics on degenerate inputs; service
/// ingestion paths should use [`try_price_cds`].
pub fn price_cds(market: &MarketData<f64>, option: &CdsOption) -> SpreadResult {
    match try_price_cds(market, option) {
        Ok(result) => result,
        Err(e) => panic!("reference pricing failed: {e}"),
    }
}

/// Fallible pricer: returns a typed error instead of panicking when the
/// schedule cannot be generated or the contract's payment-leg PV is
/// degenerate (near zero, so the spread quotient diverges).
pub fn try_price_cds(
    market: &MarketData<f64>,
    option: &CdsOption,
) -> Result<SpreadResult, QuantError> {
    let schedule = PaymentSchedule::generate(option.maturity, option.frequency.per_year())?;
    let terms = time_point_terms(market, option.maturity, option.frequency.per_year(), &schedule);
    try_combine_terms(&terms, option.recovery_rate)
}

/// Price a contract whose payment schedule is given explicitly (e.g. an
/// IMM-dated standard contract from [`crate::calendar::imm_schedule`])
/// rather than derived from maturity × frequency.
pub fn price_cds_with_schedule(
    market: &MarketData<f64>,
    schedule: &PaymentSchedule<f64>,
    recovery_rate: f64,
) -> SpreadResult {
    let terms = time_point_terms(market, 0.0, 0, schedule);
    combine_terms(&terms, recovery_rate)
}

/// Combine per-time-point terms into the spread, using compensated
/// summation for the reference accumulations. Panics on a degenerate
/// payment leg; see [`try_combine_terms`] for the fallible form.
pub fn combine_terms(terms: &[TimePointTerms<f64>], recovery_rate: f64) -> SpreadResult {
    match try_combine_terms(terms, recovery_rate) {
        Ok(result) => result,
        Err(e) => panic!("degenerate CDS terms: {e}"),
    }
}

/// Combine per-time-point terms into the spread, returning
/// [`QuantError::DegenerateOption`] when the payment-leg PV is near zero
/// (previously this yielded an unbounded or zero spread silently).
pub fn try_combine_terms(
    terms: &[TimePointTerms<f64>],
    recovery_rate: f64,
) -> Result<SpreadResult, QuantError> {
    let payments: Vec<f64> = terms.iter().map(|t| t.payment).collect();
    let payoffs: Vec<f64> = terms.iter().map(|t| t.payoff).collect();
    let accruals: Vec<f64> = terms.iter().map(|t| t.accrual).collect();
    let premium_annuity = sum_kahan(&payments);
    let protection_unit = sum_kahan(&payoffs);
    let accrual_annuity = sum_kahan(&accruals);
    let lgd = 1.0 - recovery_rate;
    let denom = premium_annuity + accrual_annuity;
    // NaN falls through the first comparison but is caught by the second.
    if denom <= DEGENERATE_ANNUITY_EPS || !denom.is_finite() {
        return Err(QuantError::DegenerateOption { annuity: denom });
    }
    let spread = lgd * protection_unit / denom;
    Ok(SpreadResult {
        spread_bps: spread * 10_000.0,
        premium_annuity,
        protection_unit,
        accrual_annuity,
        default_prob_at_maturity: terms.last().map(|t| t.default_prob).unwrap_or(0.0),
        time_points: terms.len(),
    })
}

/// Generic-precision pricer returning only the spread in basis points,
/// used by the reduced-precision ablation (paper §V further work).
pub fn price_cds_generic<F: CdsFloat>(
    market: &MarketData<F>,
    maturity: F,
    payments_per_year: u32,
    recovery_rate: F,
) -> F {
    let schedule = match PaymentSchedule::generate(maturity, payments_per_year) {
        Ok(s) => s,
        Err(e) => panic!("valid parameters yield a schedule: {e}"),
    };
    let terms = time_point_terms(market, maturity, payments_per_year, &schedule);
    let mut premium = F::ZERO;
    let mut protection = F::ZERO;
    let mut accrual = F::ZERO;
    for t in &terms {
        premium += t.payment;
        protection += t.payoff;
        accrual += t.accrual;
    }
    let lgd = F::ONE - recovery_rate;
    let denom = premium + accrual;
    if denom > F::ZERO {
        lgd * protection / denom * F::BPS
    } else {
        F::ZERO
    }
}

/// Convenience wrapper owning market data, pricing many options.
#[derive(Debug, Clone)]
pub struct CdsPricer {
    market: MarketData<f64>,
}

impl CdsPricer {
    /// Create a pricer over the given market data.
    pub fn new(market: MarketData<f64>) -> Self {
        CdsPricer { market }
    }

    /// Access the underlying market data.
    pub fn market(&self) -> &MarketData<f64> {
        &self.market
    }

    /// Price a single option.
    pub fn price(&self, option: &CdsOption) -> SpreadResult {
        price_cds(&self.market, option)
    }

    /// Fallible single-option pricing for ingestion boundaries.
    pub fn try_price(&self, option: &CdsOption) -> Result<SpreadResult, QuantError> {
        try_price_cds(&self.market, option)
    }

    /// Price a batch, in order.
    pub fn price_batch(&self, options: &[CdsOption]) -> Vec<SpreadResult> {
        options.iter().map(|o| self.price(o)).collect()
    }

    /// Fallible batch pricing: stops at the first degenerate or invalid
    /// contract, reporting its typed error.
    pub fn try_price_batch(&self, options: &[CdsOption]) -> Result<Vec<SpreadResult>, QuantError> {
        options.iter().map(|o| self.try_price(o)).collect()
    }
}

/// Independent closed-form evaluation of the flat-curve discrete spread,
/// used to cross-check the pricer: with flat hazard `h` and flat rate `r`,
/// every quantity has an explicit exponential form.
pub fn flat_curve_spread_bps(
    hazard: f64,
    rate: f64,
    recovery: f64,
    maturity: f64,
    payments_per_year: u32,
) -> f64 {
    let n = (maturity * payments_per_year as f64).ceil() as usize;
    let mut premium = 0.0;
    let mut protection = 0.0;
    let mut accrual = 0.0;
    let mut prev_t = 0.0f64;
    for i in 1..=n {
        let t = if i == n { maturity } else { i as f64 / payments_per_year as f64 };
        let delta = t - prev_t;
        let mid = 0.5 * (prev_t + t);
        let s_prev = (-hazard * prev_t).exp();
        let s = (-hazard * t).exp();
        premium += delta * (-rate * t).exp() * s;
        protection += (-rate * mid).exp() * (s_prev - s);
        accrual += 0.5 * delta * (-rate * mid).exp() * (s_prev - s);
        prev_t = t;
    }
    (1.0 - recovery) * protection / (premium + accrual) * 10_000.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::option::PaymentFrequency;

    fn flat_market(r: f64, h: f64) -> MarketData<f64> {
        MarketData::flat(r, h, 128)
    }

    #[test]
    fn credit_triangle_flat_curves() {
        // s ≈ h(1−R); exact in the continuous limit, close for quarterly.
        let market = flat_market(0.02, 0.02);
        let option = CdsOption::new(5.0, PaymentFrequency::Quarterly, 0.40);
        let res = price_cds(&market, &option);
        let triangle = 0.02 * (1.0 - 0.40) * 10_000.0; // 120 bps
        assert!(
            (res.spread_bps - triangle).abs() < 0.02 * triangle,
            "{} vs {}",
            res.spread_bps,
            triangle
        );
    }

    #[test]
    fn matches_independent_closed_form() {
        let (r, h, rec, mat) = (0.03, 0.015, 0.35, 7.0);
        let market = flat_market(r, h);
        let option = CdsOption::new(mat, PaymentFrequency::Quarterly, rec);
        let res = price_cds(&market, &option);
        let cf = flat_curve_spread_bps(h, r, rec, mat, 4);
        assert!((res.spread_bps - cf).abs() < 1e-6, "{} vs {}", res.spread_bps, cf);
    }

    #[test]
    fn spread_increases_with_hazard() {
        let option = CdsOption::new(5.0, PaymentFrequency::Quarterly, 0.40);
        let lo = price_cds(&flat_market(0.02, 0.01), &option).spread_bps;
        let hi = price_cds(&flat_market(0.02, 0.03), &option).spread_bps;
        assert!(hi > lo * 2.5, "lo={lo} hi={hi}");
    }

    #[test]
    fn spread_decreases_with_recovery() {
        let market = flat_market(0.02, 0.02);
        let lo_rec = CdsOption::new(5.0, PaymentFrequency::Quarterly, 0.20);
        let hi_rec = CdsOption::new(5.0, PaymentFrequency::Quarterly, 0.60);
        assert!(price_cds(&market, &lo_rec).spread_bps > price_cds(&market, &hi_rec).spread_bps);
    }

    #[test]
    fn spread_nearly_rate_independent_for_flat_curves() {
        // The credit triangle has no r; discretisation induces only a weak
        // rate dependence.
        let option = CdsOption::new(5.0, PaymentFrequency::Quarterly, 0.40);
        let a = price_cds(&flat_market(0.00, 0.02), &option).spread_bps;
        let b = price_cds(&flat_market(0.08, 0.02), &option).spread_bps;
        assert!((a - b).abs() / a < 0.025, "a={a} b={b}");
    }

    #[test]
    fn finer_frequency_approaches_continuous_triangle() {
        let market = flat_market(0.02, 0.02);
        let triangle = 0.02 * 0.6 * 10_000.0;
        let err = |f: PaymentFrequency| {
            (price_cds(&market, &CdsOption::new(5.0, f, 0.40)).spread_bps - triangle).abs()
        };
        assert!(err(PaymentFrequency::Monthly) < err(PaymentFrequency::Annual));
    }

    #[test]
    fn default_probability_reported() {
        let market = flat_market(0.02, 0.02);
        let option = CdsOption::new(5.0, PaymentFrequency::Quarterly, 0.40);
        let res = price_cds(&market, &option);
        let expect = 1.0 - (-0.02f64 * 5.0).exp();
        assert!((res.default_prob_at_maturity - expect).abs() < 1e-12);
        assert_eq!(res.time_points, 20);
    }

    #[test]
    fn terms_decomposition_consistent() {
        let market = MarketData::paper_workload(11);
        let option = CdsOption::new(6.0, PaymentFrequency::Quarterly, 0.40);
        let schedule = match PaymentSchedule::generate(6.0, 4) {
            Ok(s) => s,
            Err(e) => panic!("schedule parameters are valid: {e}"),
        };
        let terms = time_point_terms(&market, 6.0, 4, &schedule);
        assert_eq!(terms.len(), 24);
        // Survival decreasing, default prob increasing, all terms finite
        // and non-negative.
        for w in terms.windows(2) {
            assert!(w[1].survival <= w[0].survival);
            assert!(w[1].default_prob >= w[0].default_prob);
        }
        for t in &terms {
            assert!(t.payment >= 0.0 && t.payoff >= 0.0 && t.accrual >= 0.0);
            assert!((t.survival + t.default_prob - 1.0).abs() < 1e-12);
        }
        let combined = combine_terms(&terms, 0.40);
        let direct = price_cds(&market, &option);
        assert!((combined.spread_bps - direct.spread_bps).abs() < 1e-12);
    }

    #[test]
    fn explicit_schedule_path_matches_generated_one() {
        let market = MarketData::paper_workload(11);
        let generated = match PaymentSchedule::generate(6.0, 4) {
            Ok(s) => s,
            Err(e) => panic!("schedule parameters are valid: {e}"),
        };
        let explicit = match PaymentSchedule::from_points(generated.points().to_vec()) {
            Ok(s) => s,
            Err(e) => panic!("generated points are valid: {e}"),
        };
        let a = price_cds(&market, &CdsOption::new(6.0, PaymentFrequency::Quarterly, 0.4));
        let b = price_cds_with_schedule(&market, &explicit, 0.4);
        assert_eq!(a.spread_bps, b.spread_bps);
    }

    #[test]
    fn imm_dated_contract_prices_end_to_end() {
        use crate::calendar::{imm_schedule, Date};
        use crate::daycount::DayCount;
        let market = MarketData::paper_workload(11);
        let trade = match Date::new(2026, 7, 5) {
            Ok(d) => d,
            Err(e) => panic!("trade date is valid: {e}"),
        };
        let (_maturity, schedule) = match imm_schedule(&trade, 5, DayCount::Act365Fixed) {
            Ok(pair) => pair,
            Err(e) => panic!("IMM schedule is valid: {e}"),
        };
        let dated = price_cds_with_schedule(&market, &schedule, 0.40);
        // Close to the synthetic 5.2y quarterly contract (the IMM grid
        // extends to the roll after trade+5y).
        let synthetic = price_cds(
            &market,
            &CdsOption::new(
                schedule.points()[schedule.len() - 1],
                PaymentFrequency::Quarterly,
                0.40,
            ),
        );
        let rel = (dated.spread_bps - synthetic.spread_bps).abs() / synthetic.spread_bps;
        assert!(rel < 0.01, "dated {} vs synthetic {}", dated.spread_bps, synthetic.spread_bps);
        assert_eq!(dated.time_points, 21);
    }

    #[test]
    fn zero_hazard_curve_prices_to_zero_spread_not_nan() {
        // Regression: with no default risk the protection leg is zero and
        // the premium annuity is large — the spread must be exactly 0,
        // finite, and NOT degenerate.
        let market = flat_market(0.02, 0.0);
        let option = CdsOption::new(5.0, PaymentFrequency::Quarterly, 0.40);
        let res = match try_price_cds(&market, &option) {
            Ok(r) => r,
            Err(e) => panic!("zero hazard is benign: {e}"),
        };
        assert_eq!(res.spread_bps, 0.0);
        assert!(res.premium_annuity > 1.0);
        assert_eq!(res.default_prob_at_maturity, 0.0);
    }

    #[test]
    fn vanishing_payment_leg_is_typed_degenerate_error() {
        // A maturity so tiny that the single accrual period has near-zero
        // year fraction: premium + accrual PV ≈ 0 and the spread quotient
        // diverges. Previously this silently produced a huge or zero
        // spread; now it is a typed error.
        let market = flat_market(0.02, 0.02);
        let option = CdsOption::new(1e-13, PaymentFrequency::Quarterly, 0.40);
        match try_price_cds(&market, &option) {
            Err(QuantError::DegenerateOption { annuity }) => {
                assert!(annuity.abs() <= DEGENERATE_ANNUITY_EPS)
            }
            other => panic!("expected DegenerateOption, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "degenerate CDS terms")]
    fn infallible_combine_panics_loudly_on_degenerate_terms() {
        combine_terms(&[], 0.40);
    }

    #[test]
    fn try_batch_surfaces_first_degenerate_contract() {
        let pricer = CdsPricer::new(flat_market(0.02, 0.02));
        let degenerate = vec![CdsOption::new(1e-13, PaymentFrequency::Quarterly, 0.40)];
        assert!(matches!(
            pricer.try_price_batch(&degenerate),
            Err(QuantError::DegenerateOption { .. })
        ));
        let sane = vec![CdsOption::new(5.0, PaymentFrequency::Quarterly, 0.40)];
        assert_eq!(pricer.try_price_batch(&sane).map(|v| v.len()), Ok(1));
    }

    #[test]
    fn batch_pricing_matches_individual() {
        let pricer = CdsPricer::new(MarketData::paper_workload(5));
        let opts = crate::option::PortfolioGenerator::new(5).portfolio(32);
        let batch = pricer.price_batch(&opts);
        for (o, r) in opts.iter().zip(&batch) {
            assert_eq!(pricer.price(o).spread_bps, r.spread_bps);
        }
    }

    #[test]
    fn generic_f64_matches_primary_path() {
        let market = MarketData::paper_workload(3);
        let option = CdsOption::new(5.5, PaymentFrequency::Quarterly, 0.45);
        let a = price_cds(&market, &option).spread_bps;
        let b = price_cds_generic(&market, 5.5, 4, 0.45);
        // Only accumulation strategy differs (Kahan vs plain).
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn f32_pricing_close_to_f64() {
        let market = MarketData::paper_workload(3);
        let m32 = market.to_f32();
        let a = price_cds_generic(&market, 5.0f64, 4, 0.40);
        let b = price_cds_generic(&m32, 5.0f32, 4, 0.40) as f64;
        assert!((a - b).abs() / a < 5e-3, "{a} vs {b}");
    }

    #[test]
    fn realistic_spreads_in_sane_band() {
        let pricer = CdsPricer::new(MarketData::paper_workload(1));
        for o in crate::option::PortfolioGenerator::new(2).portfolio(200) {
            let s = pricer.price(&o).spread_bps;
            assert!(s > 10.0 && s < 600.0, "spread {s} bps for {o:?}");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::option::PaymentFrequency;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn spread_positive_and_bounded(
            h in 0.001f64..0.10,
            r in 0.0f64..0.08,
            rec in 0.0f64..0.9,
            mat in 0.5f64..15.0,
        ) {
            let market = MarketData::flat(r, h, 64);
            let option = CdsOption::new(mat, PaymentFrequency::Quarterly, rec);
            let s = price_cds(&market, &option).spread_bps;
            // Spread below the zero-recovery hazard ceiling (generous bound).
            prop_assert!(s > 0.0);
            prop_assert!(s < h * 10_000.0 * 1.1 + 1.0, "s={s} h={h}");
        }

        #[test]
        fn monotone_in_hazard(
            h in 0.002f64..0.05,
            bump in 0.001f64..0.02,
            mat in 1.0f64..10.0,
        ) {
            let option = CdsOption::new(mat, PaymentFrequency::Quarterly, 0.4);
            let lo = price_cds(&MarketData::flat(0.02, h, 64), &option).spread_bps;
            let hi = price_cds(&MarketData::flat(0.02, h + bump, 64), &option).spread_bps;
            prop_assert!(hi > lo);
        }

        #[test]
        fn monotone_in_recovery(
            rec in 0.0f64..0.8,
            bump in 0.01f64..0.15,
            mat in 1.0f64..10.0,
        ) {
            let market = MarketData::flat(0.02, 0.02, 64);
            let lo = price_cds(&market, &CdsOption::new(mat, PaymentFrequency::Quarterly, (rec + bump).min(0.95))).spread_bps;
            let hi = price_cds(&market, &CdsOption::new(mat, PaymentFrequency::Quarterly, rec)).spread_bps;
            prop_assert!(hi > lo);
        }

        #[test]
        fn matches_closed_form_on_flat_curves(
            h in 0.002f64..0.08,
            r in 0.0f64..0.06,
            rec in 0.0f64..0.9,
            mat in 0.5f64..12.0,
        ) {
            let market = MarketData::flat(r, h, 64);
            let option = CdsOption::new(mat, PaymentFrequency::Quarterly, rec);
            let a = price_cds(&market, &option).spread_bps;
            let b = flat_curve_spread_bps(h, r, rec, mat, 4);
            prop_assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()), "{} vs {}", a, b);
        }
    }
}
