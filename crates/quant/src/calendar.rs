//! Civil dates and the CDS IMM roll convention.
//!
//! The engine works in year fractions, but real CDS contracts are
//! specified by **dates**: standard contracts mature on IMM dates (the
//! 20th of March, June, September and December) and pay premiums
//! quarterly on the same grid. This module provides a minimal validated
//! civil-date type (Hinnant's days-from-civil algorithm), the IMM roll
//! logic, and the bridge from a dated contract to the year-fraction
//! [`crate::schedule::PaymentSchedule`] the engines consume.

use crate::daycount::DayCount;
use crate::schedule::PaymentSchedule;
use crate::QuantError;

/// A validated Gregorian calendar date.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date {
    year: i32,
    month: u8,
    day: u8,
}

impl Date {
    /// Construct a date, validating the calendar.
    pub fn new(year: i32, month: u8, day: u8) -> Result<Self, QuantError> {
        if !(1..=12).contains(&month) || day == 0 || day > days_in_month(year, month) {
            return Err(QuantError::InvalidOption { reason: "invalid calendar date" });
        }
        Ok(Date { year, month, day })
    }

    /// Year component.
    pub fn year(&self) -> i32 {
        self.year
    }

    /// Month component (1–12).
    pub fn month(&self) -> u8 {
        self.month
    }

    /// Day component (1–31).
    pub fn day(&self) -> u8 {
        self.day
    }

    /// Days since the civil epoch 1970-01-01 (negative before it) —
    /// Howard Hinnant's `days_from_civil`.
    pub fn days_from_epoch(&self) -> i64 {
        let y = if self.month <= 2 { self.year - 1 } else { self.year } as i64;
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400; // [0, 399]
        let mp = (self.month as i64 + 9) % 12; // March = 0
        let doy = (153 * mp + 2) / 5 + self.day as i64 - 1; // [0, 365]
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
        era * 146_097 + doe - 719_468
    }

    /// Construct from days since 1970-01-01 (Hinnant's `civil_from_days`).
    pub fn from_days_from_epoch(days: i64) -> Self {
        let z = days + 719_468;
        let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
        let doe = z - era * 146_097; // [0, 146096]
        let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
        let mp = (5 * doy + 2) / 153; // [0, 11]
        let d = (doy - (153 * mp + 2) / 5 + 1) as u8; // [1, 31]
        let m = if mp < 10 { mp + 3 } else { mp - 9 } as u8;
        let year = if m <= 2 { y + 1 } else { y } as i32;
        Date { year, month: m, day: d }
    }

    /// Calendar days from `self` to `other` (positive when `other` is
    /// later).
    pub fn days_until(&self, other: &Date) -> i64 {
        other.days_from_epoch() - self.days_from_epoch()
    }

    /// Year fraction from `self` to `other` under a day count.
    ///
    /// # Panics
    /// Panics if `other` precedes `self`.
    pub fn year_fraction_until(&self, other: &Date, daycount: DayCount) -> f64 {
        let days = self.days_until(other);
        assert!(days >= 0, "year fractions require a later end date");
        daycount.year_fraction_days(days as u32).years()
    }
}

impl std::fmt::Display for Date {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

fn is_leap(year: i32) -> bool {
    year % 4 == 0 && (year % 100 != 0 || year % 400 == 0)
}

fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap(year) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// The IMM months on whose 20th standard CDS contracts roll.
pub const IMM_MONTHS: [u8; 4] = [3, 6, 9, 12];

/// True when `date` is a CDS IMM date (the 20th of Mar/Jun/Sep/Dec).
pub fn is_imm_date(date: &Date) -> bool {
    date.day == 20 && IMM_MONTHS.contains(&date.month)
}

/// The first IMM date strictly after `date`.
pub fn next_imm_date(date: &Date) -> Date {
    for &m in &IMM_MONTHS {
        if date.month < m || (date.month == m && date.day < 20) {
            return Date::new(date.year, m, 20)
                .unwrap_or_else(|e| unreachable!("IMM dates are valid: {e}"));
        }
    }
    Date::new(date.year + 1, 3, 20).unwrap_or_else(|e| unreachable!("IMM dates are valid: {e}"))
}

/// Standard CDS maturity for a trade date and a tenor in whole years: the
/// IMM date `tenor` years after the next roll.
///
/// ```
/// use cds_quant::calendar::{imm_maturity, Date};
/// let trade = Date::new(2026, 7, 5)?;
/// let maturity = imm_maturity(&trade, 5);
/// assert_eq!(maturity.to_string(), "2031-09-20");
/// # Ok::<(), cds_quant::QuantError>(())
/// ```
pub fn imm_maturity(trade: &Date, tenor_years: u32) -> Date {
    let roll = next_imm_date(trade);
    Date::new(roll.year + tenor_years as i32, roll.month, 20)
        .unwrap_or_else(|e| unreachable!("IMM dates are valid: {e}"))
}

/// All quarterly IMM payment dates in `(trade, maturity]`.
pub fn imm_payment_dates(trade: &Date, maturity: &Date) -> Vec<Date> {
    let mut out = Vec::new();
    let mut d = next_imm_date(trade);
    while d <= *maturity {
        out.push(d);
        d = next_imm_date(&d);
    }
    out
}

/// Build a year-fraction [`PaymentSchedule`] from a dated standard
/// contract, under the given day count — the bridge from market
/// conventions to the engine's inputs.
pub fn imm_schedule(
    trade: &Date,
    tenor_years: u32,
    daycount: DayCount,
) -> Result<(Date, PaymentSchedule<f64>), QuantError> {
    let maturity = imm_maturity(trade, tenor_years);
    let dates = imm_payment_dates(trade, &maturity);
    let points: Vec<f64> = dates.iter().map(|d| trade.year_fraction_until(d, daycount)).collect();
    let schedule = PaymentSchedule::from_points(points)?;
    Ok((maturity, schedule))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(y: i32, m: u8, day: u8) -> Date {
        match Date::new(y, m, day) {
            Ok(date) => date,
            Err(e) => panic!("test date invalid: {e}"),
        }
    }

    #[test]
    fn validation() {
        assert!(Date::new(2026, 2, 29).is_err()); // not a leap year
        assert!(Date::new(2024, 2, 29).is_ok()); // leap year
        assert!(Date::new(2026, 13, 1).is_err());
        assert!(Date::new(2026, 4, 31).is_err());
        assert!(Date::new(2026, 0, 1).is_err());
    }

    #[test]
    fn epoch_reference_points() {
        assert_eq!(d(1970, 1, 1).days_from_epoch(), 0);
        assert_eq!(d(1970, 1, 2).days_from_epoch(), 1);
        assert_eq!(d(1969, 12, 31).days_from_epoch(), -1);
        assert_eq!(d(2000, 3, 1).days_from_epoch(), 11_017);
    }

    #[test]
    fn roundtrip_across_leap_boundaries() {
        for date in [
            d(2024, 2, 28),
            d(2024, 2, 29),
            d(2024, 3, 1),
            d(2100, 2, 28), // century non-leap
            d(2000, 2, 29), // 400-year leap
            d(1999, 12, 31),
        ] {
            let back = Date::from_days_from_epoch(date.days_from_epoch());
            assert_eq!(date, back, "{date}");
        }
    }

    #[test]
    fn day_differences() {
        assert_eq!(d(2026, 7, 5).days_until(&d(2026, 7, 6)), 1);
        assert_eq!(d(2026, 7, 5).days_until(&d(2027, 7, 5)), 365);
        assert_eq!(d(2023, 7, 5).days_until(&d(2024, 7, 5)), 366); // spans 29 Feb 2024
    }

    #[test]
    fn imm_rolls() {
        assert!(is_imm_date(&d(2026, 3, 20)));
        assert!(!is_imm_date(&d(2026, 3, 21)));
        assert!(!is_imm_date(&d(2026, 4, 20)));
        assert_eq!(next_imm_date(&d(2026, 7, 5)), d(2026, 9, 20));
        assert_eq!(next_imm_date(&d(2026, 9, 19)), d(2026, 9, 20));
        // Strictly after: an IMM date rolls to the next one.
        assert_eq!(next_imm_date(&d(2026, 9, 20)), d(2026, 12, 20));
        assert_eq!(next_imm_date(&d(2026, 12, 25)), d(2027, 3, 20));
    }

    #[test]
    fn standard_maturities() {
        // Trade 2026-07-05, 5y: next roll 2026-09-20 ⇒ maturity 2031-09-20.
        assert_eq!(imm_maturity(&d(2026, 7, 5), 5), d(2031, 9, 20));
        assert_eq!(imm_maturity(&d(2026, 1, 2), 1), d(2027, 3, 20));
    }

    #[test]
    fn payment_dates_quarterly_on_grid() {
        let dates = imm_payment_dates(&d(2026, 7, 5), &d(2027, 9, 20));
        assert_eq!(
            dates,
            vec![d(2026, 9, 20), d(2026, 12, 20), d(2027, 3, 20), d(2027, 6, 20), d(2027, 9, 20)]
        );
    }

    #[test]
    fn dated_schedule_bridges_to_engine_inputs() {
        let (maturity, schedule) = match imm_schedule(&d(2026, 7, 5), 5, DayCount::Act365Fixed) {
            Ok(pair) => pair,
            Err(e) => panic!("IMM schedule is valid: {e}"),
        };
        assert_eq!(maturity, d(2031, 9, 20));
        // 21 quarterly payments from Sep-2026 to Sep-2031.
        assert_eq!(schedule.len(), 21);
        // First stub ≈ 77/365 years; later periods ≈ 0.25y.
        assert!((schedule.points()[0] - 77.0 / 365.0).abs() < 1e-12);
        let lens = schedule.period_lengths();
        for l in &lens[1..] {
            assert!((0.22..0.28).contains(l), "period {l}");
        }
        // The engines accept it directly: strictly increasing points.
        for w in schedule.points().windows(2) {
            assert!(w[0] < w[1]);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn epoch_roundtrip(days in -1_000_000i64..1_000_000) {
            let date = Date::from_days_from_epoch(days);
            prop_assert_eq!(date.days_from_epoch(), days);
        }

        #[test]
        fn next_imm_is_imm_and_strictly_later(y in 1990i32..2100, m in 1u8..=12, day in 1u8..=28) {
            let built = Date::new(y, m, day);
            prop_assert!(built.is_ok());
            let date = match built {
                Ok(d) => d,
                Err(_) => unreachable!(),
            };
            let imm = next_imm_date(&date);
            prop_assert!(is_imm_date(&imm));
            prop_assert!(imm > date);
            // And it is the first one: no IMM date strictly between.
            let gap = date.days_until(&imm);
            prop_assert!(gap <= 92, "gap {} days", gap);
        }
    }
}
