//! CDS option and market-data types, plus seeded workload generators
//! reproducing the paper's experimental setup.
//!
//! "Each option comprises three elements of data, the maturity date …, the
//! frequency of payment, and the recovery rate"; the constant inputs are
//! the interest and hazard term structures, of which "1024 interest and
//! hazard rates are used" for every experiment.

use crate::curve::{Curve, CurvePoint};
use crate::precision::CdsFloat;
use crate::QuantError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Premium payment frequency of a CDS contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaymentFrequency {
    /// One payment per year.
    Annual,
    /// Two payments per year.
    SemiAnnual,
    /// Four payments per year (the market-standard CDS frequency).
    Quarterly,
    /// Twelve payments per year.
    Monthly,
}

impl PaymentFrequency {
    /// Payments per year.
    #[inline]
    pub fn per_year(self) -> u32 {
        match self {
            PaymentFrequency::Annual => 1,
            PaymentFrequency::SemiAnnual => 2,
            PaymentFrequency::Quarterly => 4,
            PaymentFrequency::Monthly => 12,
        }
    }

    /// All supported frequencies, for sweep-style workloads.
    pub const ALL: [PaymentFrequency; 4] = [
        PaymentFrequency::Annual,
        PaymentFrequency::SemiAnnual,
        PaymentFrequency::Quarterly,
        PaymentFrequency::Monthly,
    ];
}

/// One CDS option: the per-contract inputs streamed into the engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CdsOption {
    /// Maturity of the contract in years ("when the loan is expected to be
    /// repaid, effectively the end of the CDS").
    pub maturity: f64,
    /// Premium payment frequency.
    pub frequency: PaymentFrequency,
    /// Recovery rate in `[0, 1)` — "the percentage of the loan not repaid
    /// by the CDS".
    pub recovery_rate: f64,
}

impl CdsOption {
    /// Infallible constructor for tests and trusted internal call sites
    /// whose parameters are known-valid; panics on out-of-domain
    /// parameters. Every ingestion boundary (harness workloads, the
    /// streaming service, multi-engine batch entry) goes through
    /// [`CdsOption::validated`] instead, so malformed quotes surface as
    /// typed errors rather than aborts.
    #[doc(hidden)]
    pub fn new(maturity: f64, frequency: PaymentFrequency, recovery_rate: f64) -> Self {
        match Self::validated(maturity, frequency, recovery_rate) {
            Ok(option) => option,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible construction with domain validation.
    pub fn validated(
        maturity: f64,
        frequency: PaymentFrequency,
        recovery_rate: f64,
    ) -> Result<Self, QuantError> {
        if maturity <= 0.0 || !maturity.is_finite() {
            return Err(QuantError::InvalidOption {
                reason: "maturity must be positive and finite",
            });
        }
        if !(0.0..1.0).contains(&recovery_rate) {
            return Err(QuantError::InvalidOption { reason: "recovery rate must lie in [0, 1)" });
        }
        Ok(CdsOption { maturity, frequency, recovery_rate })
    }
}

/// The constant model inputs: interest-rate and hazard-rate term
/// structures, "loaded once" and shared by every option in a run.
#[derive(Debug, Clone, PartialEq)]
pub struct MarketData<F: CdsFloat = f64> {
    /// Zero-rate interest term structure.
    pub interest: Curve<F>,
    /// Hazard-rate term structure.
    pub hazard: Curve<F>,
}

/// Internal invariant: generator-produced curve points are valid by
/// construction.
fn built_curve<F: CdsFloat>(points: Vec<CurvePoint<F>>, what: &str) -> Curve<F> {
    match Curve::new(points) {
        Ok(curve) => curve,
        Err(e) => panic!("generated {what} curve must be valid: {e}"),
    }
}

impl MarketData<f64> {
    /// Flat curves at the given levels with `n` knots each, spanning 30
    /// years (comfortably beyond any generated maturity).
    pub fn flat(interest_rate: f64, hazard_rate: f64, n: usize) -> Self {
        MarketData {
            interest: Curve::flat(interest_rate, n, 30.0),
            hazard: Curve::flat(hazard_rate, n, 30.0),
        }
    }

    /// The paper's experimental configuration: 1024 interest and 1024
    /// hazard rates. The shapes are realistic: a gently upward-sloping
    /// zero curve and a humped hazard curve, generated deterministically
    /// from `seed`.
    pub fn paper_workload(seed: u64) -> Self {
        Self::paper_workload_sized(seed, 1024)
    }

    /// As [`MarketData::paper_workload`] with a configurable knot count,
    /// for sweeps over the constant-data size.
    pub fn paper_workload_sized(seed: u64, n: usize) -> Self {
        assert!(n >= 2);
        let mut rng = StdRng::seed_from_u64(seed);
        // The curves span just beyond the liquid CDS maturities, as the
        // Vitis engine's term structures do; longer-dated queries
        // extrapolate flat. The horizon also sets the prefix-scan
        // fraction of the baseline engine (DESIGN.md §5).
        let horizon = 7.5f64;
        let mut interest = Vec::with_capacity(n);
        let mut hazard = Vec::with_capacity(n);
        for i in 1..=n {
            let t = horizon * i as f64 / n as f64;
            // Upward-sloping zeros from 1% to ~3.5% with small noise.
            let r = 0.01 + 0.025 * (t / horizon) + rng.gen_range(-0.0005..0.0005);
            // Hazard rising towards ~3% at the horizon.
            let h = 0.008 + 0.022 * (t / horizon) + rng.gen_range(-0.0004..0.0004);
            interest.push(CurvePoint { tenor: t, value: r });
            hazard.push(CurvePoint { tenor: t, value: h.max(1e-4) });
        }
        MarketData {
            interest: built_curve(interest, "interest"),
            hazard: built_curve(hazard, "hazard"),
        }
    }

    /// A stressed (crisis) market: inverted, elevated hazard — short-term
    /// default risk dominates — with rates cut towards zero. Used to
    /// check the engines on a regime far from the calibration workload.
    pub fn stressed_workload(seed: u64) -> Self {
        let n = 1024;
        let mut rng = StdRng::seed_from_u64(seed);
        let horizon = 7.5f64;
        let mut interest = Vec::with_capacity(n);
        let mut hazard = Vec::with_capacity(n);
        for i in 1..=n {
            let t = horizon * i as f64 / n as f64;
            // Near-zero front end, mild steepening.
            let r = 0.001 + 0.009 * (t / horizon) + rng.gen_range(-0.0002..0.0002);
            // Inverted hazard: ~9% short-term easing to ~4%.
            let h = 0.09 - 0.05 * (t / horizon) + rng.gen_range(-0.001..0.001);
            interest.push(CurvePoint { tenor: t, value: r.max(1e-5) });
            hazard.push(CurvePoint { tenor: t, value: h.max(1e-4) });
        }
        MarketData {
            interest: built_curve(interest, "interest"),
            hazard: built_curve(hazard, "hazard"),
        }
    }

    /// Convert to reduced precision for the paper's further-work ablation.
    pub fn to_f32(&self) -> MarketData<f32> {
        let cvt = |c: &Curve<f64>| {
            built_curve(
                c.points()
                    .iter()
                    .map(|p| CurvePoint { tenor: p.tenor as f32, value: p.value as f32 })
                    .collect(),
                "reduced-precision",
            )
        };
        MarketData { interest: cvt(&self.interest), hazard: cvt(&self.hazard) }
    }
}

/// Seeded generator of realistic CDS option portfolios.
///
/// Maturities are drawn from 1–10 years (peaking at the liquid 5y point),
/// frequencies are predominantly quarterly, recoveries cluster around the
/// conventional 40%.
#[derive(Debug, Clone)]
pub struct PortfolioGenerator {
    rng: StdRng,
}

impl PortfolioGenerator {
    /// Create a generator with a fixed seed (runs are reproducible).
    pub fn new(seed: u64) -> Self {
        PortfolioGenerator { rng: StdRng::seed_from_u64(seed) }
    }

    /// Draw one option.
    pub fn option(&mut self) -> CdsOption {
        let maturity = match self.rng.gen_range(0..10) {
            0 => self.rng.gen_range(1.0..3.0),
            1..=6 => self.rng.gen_range(4.0..7.0), // liquid belly
            _ => self.rng.gen_range(7.0..10.0),
        };
        let frequency = match self.rng.gen_range(0..10) {
            0 => PaymentFrequency::Annual,
            1 => PaymentFrequency::SemiAnnual,
            2 => PaymentFrequency::Monthly,
            _ => PaymentFrequency::Quarterly,
        };
        let recovery = (0.40 + self.rng.gen_range(-0.15..0.15f64)).clamp(0.05, 0.8);
        match CdsOption::validated(maturity, frequency, recovery) {
            Ok(option) => option,
            Err(e) => unreachable!("generator draws from the valid domain: {e}"),
        }
    }

    /// Draw a portfolio of `n` options.
    pub fn portfolio(&mut self, n: usize) -> Vec<CdsOption> {
        (0..n).map(|_| self.option()).collect()
    }

    /// The fixed-shape portfolio used when calibrating against the paper:
    /// all options share maturity and frequency so per-option work is
    /// uniform (6y quarterly, the configuration whose time-point count
    /// reproduces the paper's baseline throughput).
    pub fn uniform(
        n: usize,
        maturity: f64,
        frequency: PaymentFrequency,
        recovery: f64,
    ) -> Vec<CdsOption> {
        match Self::try_uniform(n, maturity, frequency, recovery) {
            Ok(portfolio) => portfolio,
            Err(e) => panic!("uniform portfolio parameters: {e}"),
        }
    }

    /// Fallible [`PortfolioGenerator::uniform`]: validates the shared
    /// contract parameters once and reports a typed error, for ingestion
    /// boundaries fed by external configuration.
    pub fn try_uniform(
        n: usize,
        maturity: f64,
        frequency: PaymentFrequency,
        recovery: f64,
    ) -> Result<Vec<CdsOption>, QuantError> {
        let prototype = CdsOption::validated(maturity, frequency, recovery)?;
        Ok(vec![prototype; n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequency_per_year() {
        assert_eq!(PaymentFrequency::Annual.per_year(), 1);
        assert_eq!(PaymentFrequency::SemiAnnual.per_year(), 2);
        assert_eq!(PaymentFrequency::Quarterly.per_year(), 4);
        assert_eq!(PaymentFrequency::Monthly.per_year(), 12);
    }

    #[test]
    fn option_validation() {
        assert!(CdsOption::validated(5.0, PaymentFrequency::Quarterly, 0.4).is_ok());
        assert!(CdsOption::validated(0.0, PaymentFrequency::Quarterly, 0.4).is_err());
        assert!(CdsOption::validated(5.0, PaymentFrequency::Quarterly, 1.0).is_err());
        assert!(CdsOption::validated(5.0, PaymentFrequency::Quarterly, -0.1).is_err());
        assert!(CdsOption::validated(f64::INFINITY, PaymentFrequency::Quarterly, 0.4).is_err());
    }

    #[test]
    #[should_panic(expected = "invalid CDS option")]
    fn new_panics_on_bad_input() {
        let _ = CdsOption::new(-1.0, PaymentFrequency::Quarterly, 0.4);
    }

    #[test]
    fn paper_workload_has_1024_knots() {
        let m = MarketData::paper_workload(42);
        assert_eq!(m.interest.len(), 1024);
        assert_eq!(m.hazard.len(), 1024);
    }

    #[test]
    fn paper_workload_is_deterministic() {
        let a = MarketData::paper_workload(7);
        let b = MarketData::paper_workload(7);
        assert_eq!(a, b);
        let c = MarketData::paper_workload(8);
        assert_ne!(a, c);
    }

    #[test]
    fn paper_workload_rates_in_plausible_band() {
        let m = MarketData::paper_workload(1);
        for p in m.interest.points() {
            assert!(p.value > 0.0 && p.value < 0.05, "interest {}", p.value);
        }
        for p in m.hazard.points() {
            assert!(p.value > 0.0 && p.value < 0.05, "hazard {}", p.value);
        }
    }

    #[test]
    fn stressed_workload_is_inverted_and_elevated() {
        let m = MarketData::stressed_workload(1);
        let short = m.hazard.value_at(0.5);
        let long = m.hazard.value_at(7.0);
        assert!(short > long, "stressed hazard must be inverted");
        assert!(short > 0.07, "short hazard {short}");
        let calm = MarketData::paper_workload(1);
        assert!(m.hazard.value_at(1.0) > 3.0 * calm.hazard.value_at(1.0));
    }

    #[test]
    fn portfolio_generator_deterministic_and_valid() {
        let a = PortfolioGenerator::new(3).portfolio(100);
        let b = PortfolioGenerator::new(3).portfolio(100);
        assert_eq!(a, b);
        for o in &a {
            assert!(o.maturity >= 1.0 && o.maturity <= 10.0);
            assert!((0.05..=0.8).contains(&o.recovery_rate));
        }
    }

    #[test]
    fn uniform_portfolio_shape() {
        let p = PortfolioGenerator::uniform(16, 6.0, PaymentFrequency::Quarterly, 0.4);
        assert_eq!(p.len(), 16);
        assert!(p.iter().all(|o| o.maturity == 6.0));
    }

    #[test]
    fn f32_conversion_preserves_structure() {
        let m = MarketData::paper_workload(9);
        let m32 = m.to_f32();
        assert_eq!(m32.interest.len(), m.interest.len());
        let t = 5.0;
        assert!((m.interest.value_at(t) - m32.interest.value_at(t as f32) as f64).abs() < 1e-4);
    }
}
