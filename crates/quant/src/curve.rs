//! Piecewise-linear term structures for interest and hazard rates.
//!
//! The paper's engine takes two constant inputs: "the interest rate, or
//! term structure, expressed as a list of percentages of interest payable
//! on the loan in a given time frame" and "the hazard rate \[expressing\] the
//! likelihood that the loan will default by a specific point in time",
//! each a list of `(time, value)` pairs — 1024 of each in all experiments.
//!
//! [`Curve`] stores such a list with validated, strictly-increasing tenors
//! and provides the two derived quantities the pricer needs:
//!
//! * **linear interpolation** of the rate at an arbitrary time (flat
//!   extrapolation outside the tenor range, matching the Vitis library),
//! * the **integrated hazard** `∫₀ᵗ h(u) du` via trapezoidal accumulation
//!   over every stored point up to `t` — the exact "accumulating the hazard
//!   rate constant data up until this time" computation whose
//!   dependency-chained double add is the bottleneck the paper fixes.

use crate::precision::CdsFloat;
use crate::QuantError;

/// One `(tenor, value)` knot of a term structure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint<F: CdsFloat = f64> {
    /// Time of the knot, in years from the valuation date.
    pub tenor: F,
    /// Rate value at the knot (e.g. 0.02 for 2%).
    pub value: F,
}

/// A validated piecewise-linear term structure.
///
/// Invariants (enforced at construction):
/// * at least two knots,
/// * strictly increasing, non-negative, finite tenors,
/// * finite values.
///
/// ```
/// use cds_quant::curve::Curve;
/// let hazard = Curve::from_slices(&[1.0, 5.0], &[0.01, 0.03])?;
/// // Survival falls as the integrated hazard grows.
/// assert!(hazard.survival(1.0) > hazard.survival(5.0));
/// // Flat extrapolation beyond the last knot.
/// assert_eq!(hazard.value_at(10.0), 0.03);
/// # Ok::<(), cds_quant::QuantError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Curve<F: CdsFloat = f64> {
    points: Vec<CurvePoint<F>>,
}

impl<F: CdsFloat> Curve<F> {
    /// Build a curve from knots, validating the invariants.
    pub fn new(points: Vec<CurvePoint<F>>) -> Result<Self, QuantError> {
        if points.len() < 2 {
            return Err(QuantError::CurveTooShort { got: points.len() });
        }
        for (i, p) in points.iter().enumerate() {
            if !p.tenor.is_finite() || p.tenor < F::ZERO {
                return Err(QuantError::NonMonotoneTenors { index: i });
            }
            if !p.value.is_finite() {
                return Err(QuantError::NonFiniteValue { index: i });
            }
            if i > 0 && points[i - 1].tenor >= p.tenor {
                return Err(QuantError::NonMonotoneTenors { index: i });
            }
        }
        Ok(Curve { points })
    }

    /// Build a curve from parallel `(tenor, value)` slices.
    pub fn from_slices(tenors: &[F], values: &[F]) -> Result<Self, QuantError> {
        if tenors.len() != values.len() {
            return Err(QuantError::CurveTooShort { got: tenors.len().min(values.len()) });
        }
        Curve::new(
            tenors
                .iter()
                .zip(values.iter())
                .map(|(&tenor, &value)| CurvePoint { tenor, value })
                .collect(),
        )
    }

    /// A flat curve at `value` sampled on `n` evenly spaced tenors spanning
    /// `[horizon/n, horizon]`. Used for analytic validation (credit
    /// triangle) and as a building block for workload generation.
    pub fn flat(value: F, n: usize, horizon: F) -> Self {
        assert!(n >= 2, "flat curve needs at least 2 points");
        let points = (1..=n)
            .map(|i| CurvePoint { tenor: horizon * F::from_usize(i) / F::from_usize(n), value })
            .collect();
        Curve::new(points)
            .unwrap_or_else(|e| unreachable!("flat curve construction is always valid: {e}"))
    }

    /// Number of knots (the paper uses 1024 for both curves).
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the curve holds no knots (never, by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Read-only view of the knots.
    #[inline]
    pub fn points(&self) -> &[CurvePoint<F>] {
        &self.points
    }

    /// Last tenor of the curve (the curve's horizon).
    #[inline]
    pub fn horizon(&self) -> F {
        self.points[self.points.len() - 1].tenor
    }

    /// Linearly interpolate the rate at time `t`.
    ///
    /// Outside the knot range the value is extrapolated flat, matching the
    /// Vitis quantitative-finance library's `linearInterpolation` usage.
    /// The implementation scans linearly from the front — precisely the
    /// access pattern the HLS kernel has when streaming the constant data —
    /// so its cost is `O(position of t)`.
    pub fn value_at(&self, t: F) -> F {
        self.scan_value_at(t).0
    }

    /// As [`Curve::value_at`] but also reports how many knots were scanned,
    /// which the dataflow simulator uses as the cycle cost of the
    /// interpolation stage.
    pub fn scan_value_at(&self, t: F) -> (F, usize) {
        let pts = &self.points;
        if t <= pts[0].tenor {
            return (pts[0].value, 1);
        }
        for i in 1..pts.len() {
            if t <= pts[i].tenor {
                let lo = pts[i - 1];
                let hi = pts[i];
                let w = (t - lo.tenor) / (hi.tenor - lo.tenor);
                return (lo.value + w * (hi.value - lo.value), i + 1);
            }
        }
        (pts[pts.len() - 1].value, pts.len())
    }

    /// Integrated rate `∫₀ᵗ v(u) du` by trapezoidal accumulation over every
    /// knot up to `t` (rectangle at the flat-extrapolated level before the
    /// first knot and after the last).
    ///
    /// For a hazard curve this is the cumulative hazard, so the survival
    /// probability is `exp(-integral(t))` and the defaulting probability of
    /// the paper's Figure 1 is `1 − exp(-integral(t))`.
    pub fn integral(&self, t: F) -> F {
        self.scan_integral(t).0
    }

    /// As [`Curve::integral`] but reporting the number of knots
    /// accumulated, i.e. the trip count of the dependency-chained loop the
    /// paper's Listing 1 optimises.
    pub fn scan_integral(&self, t: F) -> (F, usize) {
        let pts = &self.points;
        if t <= F::ZERO {
            return (F::ZERO, 0);
        }
        // Region before the first knot: flat at the first value.
        let first = pts[0];
        if t <= first.tenor {
            return (first.value * t, 1);
        }
        let mut acc = first.value * first.tenor;
        let mut scanned = 1usize;
        for i in 1..pts.len() {
            let lo = pts[i - 1];
            let hi = pts[i];
            scanned += 1;
            if t >= hi.tenor {
                // Full trapezoid over [lo, hi].
                acc += F::HALF * (lo.value + hi.value) * (hi.tenor - lo.tenor);
            } else {
                // Partial segment ending inside [lo, hi].
                let w = (t - lo.tenor) / (hi.tenor - lo.tenor);
                let v_t = lo.value + w * (hi.value - lo.value);
                acc += F::HALF * (lo.value + v_t) * (t - lo.tenor);
                return (acc, scanned);
            }
        }
        // Beyond the final knot: flat at the last value.
        let last = pts[pts.len() - 1];
        acc += last.value * (t - last.tenor);
        (acc, scanned)
    }

    /// Discount factor `exp(-r(t)·t)` treating this curve as a zero-rate
    /// (interest) term structure.
    pub fn discount_factor(&self, t: F) -> F {
        (-self.value_at(t) * t).exp()
    }

    /// Survival probability `exp(-∫₀ᵗ h(u) du)` treating this curve as a
    /// hazard-rate term structure.
    pub fn survival(&self, t: F) -> F {
        (-self.integral(t)).exp()
    }

    /// Defaulting probability by time `t` — the first per-time-point
    /// quantity of the paper's Figure 1.
    pub fn default_probability(&self, t: F) -> F {
        F::ONE - self.survival(t)
    }
}

/// Monotone-query cursor over a [`Curve`].
///
/// When time points are visited in increasing order (as every engine stage
/// does), the linear scan can resume from the previous position instead of
/// restarting at the front. This mirrors how an optimised HLS kernel keeps
/// a running index into URAM-resident constant data, and gives an amortised
/// `O(1)` interpolation per time point.
#[derive(Debug, Clone)]
pub struct CurveCursor<'c, F: CdsFloat = f64> {
    curve: &'c Curve<F>,
    /// Index of the first knot with tenor >= the last queried time.
    pos: usize,
    last_t: F,
}

impl<'c, F: CdsFloat> CurveCursor<'c, F> {
    /// Create a cursor positioned at the valuation date.
    pub fn new(curve: &'c Curve<F>) -> Self {
        CurveCursor { curve, pos: 0, last_t: F::ZERO }
    }

    /// Interpolate at `t`, which must be `>=` every previously queried
    /// time. Returns `(value, knots_advanced)`.
    ///
    /// # Panics
    /// Panics in debug builds when queried with a decreasing `t`.
    pub fn value_at(&mut self, t: F) -> (F, usize) {
        debug_assert!(t >= self.last_t, "CurveCursor requires monotone queries");
        self.last_t = t;
        let pts = self.curve.points();
        let mut advanced = 0usize;
        while self.pos < pts.len() && pts[self.pos].tenor < t {
            self.pos += 1;
            advanced += 1;
        }
        let v = if self.pos == 0 {
            pts[0].value
        } else if self.pos == pts.len() {
            pts[pts.len() - 1].value
        } else {
            let lo = pts[self.pos - 1];
            let hi = pts[self.pos];
            let w = (t - lo.tenor) / (hi.tenor - lo.tenor);
            lo.value + w * (hi.value - lo.value)
        };
        (v, advanced)
    }

    /// Number of knots consumed so far.
    #[inline]
    pub fn position(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> Curve {
        // value(t) = t over tenors 1..=4
        match Curve::from_slices(&[1.0, 2.0, 3.0, 4.0], &[1.0, 2.0, 3.0, 4.0]) {
            Ok(c) => c,
            Err(e) => panic!("ramp curve is valid: {e}"),
        }
    }

    #[test]
    fn construction_validates() {
        assert!(matches!(
            Curve::<f64>::new(vec![CurvePoint { tenor: 1.0, value: 0.1 }]),
            Err(QuantError::CurveTooShort { got: 1 })
        ));
        assert!(matches!(
            Curve::from_slices(&[1.0, 1.0], &[0.1, 0.2]),
            Err(QuantError::NonMonotoneTenors { index: 1 })
        ));
        assert!(matches!(
            Curve::from_slices(&[2.0, 1.0], &[0.1, 0.2]),
            Err(QuantError::NonMonotoneTenors { index: 1 })
        ));
        assert!(matches!(
            Curve::from_slices(&[1.0, 2.0], &[0.1, f64::NAN]),
            Err(QuantError::NonFiniteValue { index: 1 })
        ));
        assert!(matches!(
            Curve::from_slices(&[-1.0, 2.0], &[0.1, 0.2]),
            Err(QuantError::NonMonotoneTenors { index: 0 })
        ));
        assert!(matches!(
            Curve::from_slices(&[1.0], &[0.1, 0.2]),
            Err(QuantError::CurveTooShort { got: 1 })
        ));
    }

    #[test]
    fn interpolation_hits_knots_exactly() {
        let c = ramp();
        for t in [1.0, 2.0, 3.0, 4.0] {
            assert!((c.value_at(t) - t).abs() < 1e-15);
        }
    }

    #[test]
    fn interpolation_between_knots_is_linear() {
        let c = ramp();
        assert!((c.value_at(1.5) - 1.5).abs() < 1e-15);
        assert!((c.value_at(3.25) - 3.25).abs() < 1e-15);
    }

    #[test]
    fn extrapolation_is_flat() {
        let c = ramp();
        assert_eq!(c.value_at(0.5), 1.0);
        assert_eq!(c.value_at(10.0), 4.0);
    }

    #[test]
    fn integral_of_flat_curve_is_linear_in_t() {
        let c = Curve::flat(0.03, 16, 10.0);
        for t in [0.1, 1.0, 5.0, 9.9, 12.0] {
            assert!(
                (c.integral(t) - 0.03 * t).abs() < 1e-12,
                "t={t}: {} vs {}",
                c.integral(t),
                0.03 * t
            );
        }
    }

    #[test]
    fn integral_of_ramp_matches_quadrature() {
        let c = ramp();
        // ∫₀¹ 1 du = 1 (flat before first knot), ∫₁ᵗ u du = (t²−1)/2.
        let t = 3.0;
        let expect = 1.0 + (t * t - 1.0) / 2.0;
        assert!((c.integral(t) - expect).abs() < 1e-12);
    }

    #[test]
    fn integral_beyond_horizon_extends_flat() {
        let c = ramp();
        let at4 = c.integral(4.0);
        assert!((c.integral(6.0) - (at4 + 4.0 * 2.0)).abs() < 1e-12);
    }

    #[test]
    fn integral_at_zero_is_zero() {
        assert_eq!(ramp().integral(0.0), 0.0);
    }

    #[test]
    fn scan_counts_grow_with_t() {
        let c = Curve::flat(0.02, 1024, 10.0);
        let (_, early) = c.scan_integral(1.0);
        let (_, late) = c.scan_integral(9.0);
        assert!(early < late);
        assert!(late <= 1024);
    }

    #[test]
    fn survival_and_default_probability_are_complementary() {
        let c = Curve::flat(0.05, 8, 10.0);
        for t in [0.5, 2.0, 7.5] {
            let s = c.survival(t);
            let p = c.default_probability(t);
            assert!((s + p - 1.0).abs() < 1e-15);
            assert!(s > 0.0 && s <= 1.0);
        }
    }

    #[test]
    fn discount_factor_flat_curve() {
        let c = Curve::flat(0.02, 8, 10.0);
        let t = 3.0;
        assert!((c.discount_factor(t) - (-0.02f64 * t).exp()).abs() < 1e-15);
    }

    #[test]
    fn cursor_matches_scan_on_monotone_queries() {
        let c = ramp();
        let mut cur = CurveCursor::new(&c);
        for t in [0.2, 0.9, 1.0, 1.5, 2.7, 3.0, 3.9, 4.0, 5.5] {
            let (v, _) = cur.value_at(t);
            assert!((v - c.value_at(t)).abs() < 1e-15, "t={t}");
        }
    }

    #[test]
    fn cursor_total_advance_bounded_by_len() {
        let c = Curve::flat(0.02, 1024, 10.0);
        let mut cur = CurveCursor::new(&c);
        let mut total = 0;
        for i in 0..50 {
            let (_, adv) = cur.value_at(i as f64 * 0.2);
            total += adv;
        }
        assert!(total <= c.len());
    }

    #[test]
    fn f32_instantiation_agrees_with_f64_loosely() {
        let c64 = Curve::<f64>::flat(0.03, 64, 10.0);
        let c32 = Curve::<f32>::flat(0.03, 64, 10.0);
        let t = 6.4;
        assert!((c64.integral(t) - c32.integral(t as f32) as f64).abs() < 1e-5);
    }
}
