//! Property-style edge-case tests over the quant layer's public API: on
//! extreme-but-finite inputs every entry point must return `Ok`/`Err`,
//! never panic, and never smuggle NaN into an `Ok` result.

use cds_quant::bootstrap::{bootstrap_hazard, CdsQuote};
use cds_quant::cds::try_price_cds;
use cds_quant::curve::Curve;
use cds_quant::daycount::{DayCount, YearFraction};
use cds_quant::interp::binary_search;
use cds_quant::invariant::{
    check_result, check_spread_bps, spread_envelope_bps, SpreadViolation, ENVELOPE_SLACK_BPS,
};
use cds_quant::option::{CdsOption, MarketData, PaymentFrequency, PortfolioGenerator};
use cds_quant::schedule::PaymentSchedule;
use cds_quant::QuantError;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

fn freq(idx: u8) -> PaymentFrequency {
    match idx % 4 {
        0 => PaymentFrequency::Annual,
        1 => PaymentFrequency::SemiAnnual,
        2 => PaymentFrequency::Quarterly,
        _ => PaymentFrequency::Monthly,
    }
}

proptest! {
    /// Pricing any finite-parameter option — including tiny maturities
    /// that collapse the premium annuity — returns Ok or a typed Err.
    #[test]
    fn try_price_never_panics_on_extreme_options(
        maturity in prop_oneof![
            Just(1e-13), Just(1e-9), Just(1e-3), 0.01f64..40.0, Just(100.0)
        ],
        f in 0u8..4,
        recovery in 0.0f64..0.999,
        hazard in prop_oneof![Just(1e-12), Just(5.0), 1e-4f64..1.0],
    ) {
        let market = MarketData {
            interest: Curve::flat(0.02, 16, 50.0),
            hazard: Curve::flat(hazard, 16, 50.0),
        };
        match CdsOption::validated(maturity, freq(f), recovery) {
            Err(_) => {}
            Ok(option) => match try_price_cds(&market, &option) {
                Ok(res) => {
                    prop_assert!(res.spread_bps.is_finite());
                    prop_assert!(res.premium_annuity.is_finite());
                }
                Err(QuantError::DegenerateOption { .. }) => {}
                Err(e) => prop_assert!(false, "unexpected error: {e}"),
            },
        }
    }

    /// Near-zero and single-segment schedules: generate rejects
    /// non-positive maturities and handles micro-stubs without panicking.
    #[test]
    fn schedule_generation_handles_tiny_maturities(
        maturity in prop_oneof![Just(1e-13), Just(1e-9), 1e-6f64..0.3],
        payments in 1u32..=12,
    ) {
        match PaymentSchedule::<f64>::generate(maturity, payments) {
            Err(_) => {}
            Ok(s) => {
                prop_assert!(!s.points().is_empty());
                prop_assert!(s.points().iter().all(|p| p.is_finite() && *p > 0.0));
            }
        }
    }

    /// Single-point curves are rejected at construction, never later.
    #[test]
    fn single_point_and_degenerate_curves_are_rejected(t in 0.1f64..30.0, v in -1.0f64..5.0) {
        prop_assert!(Curve::from_slices(&[t], &[v]).is_err());
        prop_assert!(Curve::<f64>::from_slices(&[], &[]).is_err());
        // Duplicate tenor (zero-width step) is rejected too.
        prop_assert!(Curve::from_slices(&[t, t], &[v, v]).is_err());
    }

    /// Interpolation over a step (piecewise-constant-ish) hazard curve:
    /// queries anywhere on the extended axis stay finite and bounded by
    /// the knot values.
    #[test]
    fn step_curve_interpolation_is_bounded(
        lo in 0.001f64..0.5,
        hi in 0.5f64..5.0,
        x in 0.0f64..50.0,
    ) {
        // A steep step via two near-coincident knots, as the bootstrap
        // emits for piecewise-flat hazards.
        let xs = [1.0, 1.0 + 1e-9, 30.0];
        let ys = [lo, hi, hi];
        let y = binary_search(&xs, &ys, x);
        prop_assert!(y.is_finite());
        prop_assert!(y >= lo.min(hi) - 1e-12 && y <= lo.max(hi) + 1e-12);
    }

    /// Day-count fractions stay finite and non-negative for any day/month
    /// span a CDS schedule can produce, under every convention.
    #[test]
    fn daycount_fractions_are_finite(days in 0u32..200_000, months in 0u32..1_200, c in 0u8..3) {
        let convention = match c {
            0 => DayCount::Act365Fixed,
            1 => DayCount::Act360,
            _ => DayCount::Thirty360,
        };
        let by_days = convention.year_fraction_days(days).years();
        let by_months = convention.year_fraction_months(months).years();
        prop_assert!(by_days.is_finite() && by_days >= 0.0);
        prop_assert!(by_months.is_finite() && by_months >= 0.0);
    }

    /// YearFraction validates: negative/NaN rejected, finite accepted.
    #[test]
    fn year_fraction_validation(years in -10.0f64..10.0) {
        match YearFraction::new(years) {
            Ok(y) => prop_assert!(y.years() >= 0.0),
            Err(_) => prop_assert!(years < 0.0 || !years.is_finite()),
        }
    }

    /// Bootstrap on a steeply stepped quote ladder either fits or reports
    /// `NoSolution`/`NonMonotoneMaturities` — it must not panic or hang.
    #[test]
    fn bootstrap_survives_extreme_quote_ladders(
        s1 in 1.0f64..2_000.0,
        s2 in 1.0f64..2_000.0,
        m1 in 0.25f64..3.0,
        gap in prop_oneof![Just(0.0), 0.25f64..5.0],
    ) {
        let rates = Curve::flat(0.02, 16, 40.0);
        let quotes = [
            CdsQuote { maturity: m1, spread_bps: s1, frequency: PaymentFrequency::Quarterly, recovery: 0.4 },
            CdsQuote { maturity: m1 + gap, spread_bps: s2, frequency: PaymentFrequency::Quarterly, recovery: 0.4 },
        ];
        // A typed rejection is acceptable; panicking is not.
        if let Ok(result) = bootstrap_hazard(&rates, &quotes) {
            prop_assert!(result.segment_hazards.iter().all(|h| h.is_finite() && *h >= 0.0));
        }
    }

    /// The validated portfolio generator refuses out-of-domain parameters
    /// instead of producing unpriceable options.
    #[test]
    fn try_uniform_rejects_invalid_parameters(
        maturity in prop_oneof![Just(-1.0), Just(0.0), Just(f64::NAN), 0.5f64..10.0],
        recovery in prop_oneof![Just(-0.1), Just(1.0), Just(1.5), 0.0f64..0.99],
    ) {
        match PortfolioGenerator::try_uniform(4, maturity, PaymentFrequency::Quarterly, recovery) {
            Ok(opts) => {
                prop_assert!(maturity > 0.0 && maturity.is_finite());
                prop_assert!((0.0..1.0).contains(&recovery));
                prop_assert_eq!(opts.len(), 4);
            }
            Err(_) => {
                prop_assert!(
                    maturity <= 0.0 || !maturity.is_finite() || !(0.0..1.0).contains(&recovery)
                );
            }
        }
    }

    /// The scrubber's envelope guard never rejects an honestly priced
    /// spread: for any finite market and option that prices, the spread
    /// sits inside the recovery-adjusted hazard envelope and the full
    /// result passes the leg-consistency guard.
    #[test]
    fn envelope_admits_every_true_spread(
        hazard in prop_oneof![Just(0.0), Just(1e-10), 1e-4f64..2.0],
        rate in 0.0f64..0.15,
        maturity in 0.25f64..30.0,
        f in 0u8..4,
        recovery in 0.0f64..0.99,
    ) {
        let market = MarketData {
            interest: Curve::flat(rate, 16, 50.0),
            hazard: Curve::flat(hazard, 16, 50.0),
        };
        if let Ok(option) = CdsOption::validated(maturity, freq(f), recovery) {
            if let Ok(result) = try_price_cds(&market, &option) {
                let envelope = spread_envelope_bps(&market, &option);
                prop_assert!(
                    check_spread_bps(result.spread_bps, envelope).is_ok(),
                    "true spread {} bps rejected by envelope {} bps",
                    result.spread_bps,
                    envelope
                );
                prop_assert!(check_result(&result, option.recovery_rate).is_ok());
            }
        }
    }

    /// Zero-hazard markets price to exactly zero spread; the envelope
    /// degenerates to its absolute slack, which still admits that zero
    /// but rejects anything visibly positive.
    #[test]
    fn zero_hazard_envelope_admits_only_zero(
        maturity in 0.5f64..20.0,
        rate in 0.0f64..0.10,
        spurious in 0.01f64..5_000.0,
    ) {
        let market = MarketData {
            interest: Curve::flat(rate, 16, 50.0),
            hazard: Curve::flat(0.0, 16, 50.0),
        };
        let option = CdsOption::new(maturity, PaymentFrequency::Quarterly, 0.40);
        let result = match try_price_cds(&market, &option) {
            Ok(r) => r,
            Err(e) => return Err(TestCaseError::fail(format!("zero-hazard pricing failed: {e}"))),
        };
        prop_assert_eq!(result.spread_bps, 0.0);
        let envelope = spread_envelope_bps(&market, &option);
        prop_assert!(envelope >= ENVELOPE_SLACK_BPS);
        prop_assert!(check_spread_bps(result.spread_bps, envelope).is_ok());
        // A corrupted positive spread cannot hide under a zero envelope.
        prop_assert!(matches!(
            check_spread_bps(spurious, envelope),
            Err(SpreadViolation::EnvelopeExceeded { .. })
        ));
    }
}

/// Degenerate options (maturities too short to seat a payment) either
/// fail validation/pricing with a typed error, or — if they do price —
/// still satisfy every scrubber guard. A hand-degenerated result is
/// rejected by the leg checks rather than trusted.
#[test]
fn degenerate_options_never_slip_past_the_guards() {
    let market =
        MarketData { interest: Curve::flat(0.02, 16, 50.0), hazard: Curve::flat(0.02, 16, 50.0) };
    for maturity in [1e-13, 1e-9, 1e-6, 1e-3] {
        match CdsOption::validated(maturity, PaymentFrequency::Monthly, 0.40) {
            Err(_) => {}
            Ok(option) => match try_price_cds(&market, &option) {
                Err(QuantError::DegenerateOption { .. }) => {}
                Err(e) => panic!("unexpected pricing error at maturity {maturity}: {e}"),
                Ok(result) => {
                    let envelope = spread_envelope_bps(&market, &option);
                    assert!(check_spread_bps(result.spread_bps, envelope).is_ok());
                    assert!(check_result(&result, option.recovery_rate).is_ok());
                }
            },
        }
    }
    // A result whose annuity has been wiped out is corruption, not a
    // price: the guard must flag the degenerate annuity, never divide
    // through it.
    let option = CdsOption::new(5.0, PaymentFrequency::Quarterly, 0.40);
    let mut result = match try_price_cds(&market, &option) {
        Ok(r) => r,
        Err(e) => panic!("5y option must price: {e}"),
    };
    result.premium_annuity = 0.0;
    result.accrual_annuity = 0.0;
    assert!(matches!(
        check_result(&result, option.recovery_rate),
        Err(SpreadViolation::DegenerateAnnuity { .. })
    ));
}
