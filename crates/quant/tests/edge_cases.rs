//! Property-style edge-case tests over the quant layer's public API: on
//! extreme-but-finite inputs every entry point must return `Ok`/`Err`,
//! never panic, and never smuggle NaN into an `Ok` result.

use cds_quant::bootstrap::{bootstrap_hazard, CdsQuote};
use cds_quant::cds::try_price_cds;
use cds_quant::curve::Curve;
use cds_quant::daycount::{DayCount, YearFraction};
use cds_quant::interp::binary_search;
use cds_quant::option::{CdsOption, MarketData, PaymentFrequency, PortfolioGenerator};
use cds_quant::schedule::PaymentSchedule;
use cds_quant::QuantError;
use proptest::prelude::*;

fn freq(idx: u8) -> PaymentFrequency {
    match idx % 4 {
        0 => PaymentFrequency::Annual,
        1 => PaymentFrequency::SemiAnnual,
        2 => PaymentFrequency::Quarterly,
        _ => PaymentFrequency::Monthly,
    }
}

proptest! {
    /// Pricing any finite-parameter option — including tiny maturities
    /// that collapse the premium annuity — returns Ok or a typed Err.
    #[test]
    fn try_price_never_panics_on_extreme_options(
        maturity in prop_oneof![
            Just(1e-13), Just(1e-9), Just(1e-3), 0.01f64..40.0, Just(100.0)
        ],
        f in 0u8..4,
        recovery in 0.0f64..0.999,
        hazard in prop_oneof![Just(1e-12), Just(5.0), 1e-4f64..1.0],
    ) {
        let market = MarketData {
            interest: Curve::flat(0.02, 16, 50.0),
            hazard: Curve::flat(hazard, 16, 50.0),
        };
        match CdsOption::validated(maturity, freq(f), recovery) {
            Err(_) => {}
            Ok(option) => match try_price_cds(&market, &option) {
                Ok(res) => {
                    prop_assert!(res.spread_bps.is_finite());
                    prop_assert!(res.premium_annuity.is_finite());
                }
                Err(QuantError::DegenerateOption { .. }) => {}
                Err(e) => prop_assert!(false, "unexpected error: {e}"),
            },
        }
    }

    /// Near-zero and single-segment schedules: generate rejects
    /// non-positive maturities and handles micro-stubs without panicking.
    #[test]
    fn schedule_generation_handles_tiny_maturities(
        maturity in prop_oneof![Just(1e-13), Just(1e-9), 1e-6f64..0.3],
        payments in 1u32..=12,
    ) {
        match PaymentSchedule::<f64>::generate(maturity, payments) {
            Err(_) => {}
            Ok(s) => {
                prop_assert!(!s.points().is_empty());
                prop_assert!(s.points().iter().all(|p| p.is_finite() && *p > 0.0));
            }
        }
    }

    /// Single-point curves are rejected at construction, never later.
    #[test]
    fn single_point_and_degenerate_curves_are_rejected(t in 0.1f64..30.0, v in -1.0f64..5.0) {
        prop_assert!(Curve::from_slices(&[t], &[v]).is_err());
        prop_assert!(Curve::<f64>::from_slices(&[], &[]).is_err());
        // Duplicate tenor (zero-width step) is rejected too.
        prop_assert!(Curve::from_slices(&[t, t], &[v, v]).is_err());
    }

    /// Interpolation over a step (piecewise-constant-ish) hazard curve:
    /// queries anywhere on the extended axis stay finite and bounded by
    /// the knot values.
    #[test]
    fn step_curve_interpolation_is_bounded(
        lo in 0.001f64..0.5,
        hi in 0.5f64..5.0,
        x in 0.0f64..50.0,
    ) {
        // A steep step via two near-coincident knots, as the bootstrap
        // emits for piecewise-flat hazards.
        let xs = [1.0, 1.0 + 1e-9, 30.0];
        let ys = [lo, hi, hi];
        let y = binary_search(&xs, &ys, x);
        prop_assert!(y.is_finite());
        prop_assert!(y >= lo.min(hi) - 1e-12 && y <= lo.max(hi) + 1e-12);
    }

    /// Day-count fractions stay finite and non-negative for any day/month
    /// span a CDS schedule can produce, under every convention.
    #[test]
    fn daycount_fractions_are_finite(days in 0u32..200_000, months in 0u32..1_200, c in 0u8..3) {
        let convention = match c {
            0 => DayCount::Act365Fixed,
            1 => DayCount::Act360,
            _ => DayCount::Thirty360,
        };
        let by_days = convention.year_fraction_days(days).years();
        let by_months = convention.year_fraction_months(months).years();
        prop_assert!(by_days.is_finite() && by_days >= 0.0);
        prop_assert!(by_months.is_finite() && by_months >= 0.0);
    }

    /// YearFraction validates: negative/NaN rejected, finite accepted.
    #[test]
    fn year_fraction_validation(years in -10.0f64..10.0) {
        match YearFraction::new(years) {
            Ok(y) => prop_assert!(y.years() >= 0.0),
            Err(_) => prop_assert!(years < 0.0 || !years.is_finite()),
        }
    }

    /// Bootstrap on a steeply stepped quote ladder either fits or reports
    /// `NoSolution`/`NonMonotoneMaturities` — it must not panic or hang.
    #[test]
    fn bootstrap_survives_extreme_quote_ladders(
        s1 in 1.0f64..2_000.0,
        s2 in 1.0f64..2_000.0,
        m1 in 0.25f64..3.0,
        gap in prop_oneof![Just(0.0), 0.25f64..5.0],
    ) {
        let rates = Curve::flat(0.02, 16, 40.0);
        let quotes = [
            CdsQuote { maturity: m1, spread_bps: s1, frequency: PaymentFrequency::Quarterly, recovery: 0.4 },
            CdsQuote { maturity: m1 + gap, spread_bps: s2, frequency: PaymentFrequency::Quarterly, recovery: 0.4 },
        ];
        // A typed rejection is acceptable; panicking is not.
        if let Ok(result) = bootstrap_hazard(&rates, &quotes) {
            prop_assert!(result.segment_hazards.iter().all(|h| h.is_finite() && *h >= 0.0));
        }
    }

    /// The validated portfolio generator refuses out-of-domain parameters
    /// instead of producing unpriceable options.
    #[test]
    fn try_uniform_rejects_invalid_parameters(
        maturity in prop_oneof![Just(-1.0), Just(0.0), Just(f64::NAN), 0.5f64..10.0],
        recovery in prop_oneof![Just(-0.1), Just(1.0), Just(1.5), 0.0f64..0.99],
    ) {
        match PortfolioGenerator::try_uniform(4, maturity, PaymentFrequency::Quarterly, recovery) {
            Ok(opts) => {
                prop_assert!(maturity > 0.0 && maturity.is_finite());
                prop_assert!((0.0..1.0).contains(&recovery));
                prop_assert_eq!(opts.len(), 4);
            }
            Err(_) => {
                prop_assert!(
                    maturity <= 0.0 || !maturity.is_finite() || !(0.0..1.0).contains(&recovery)
                );
            }
        }
    }
}
