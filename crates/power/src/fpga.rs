//! FPGA card power model.

/// Affine per-engine power model of an accelerator card.
///
/// Fitted to the paper's Table II: 35.86 W at one engine, 35.79 W at two
/// (measurement noise — adding an engine is nearly free) and 37.38 W at
/// five: a least-squares line gives ≈35.4 W static and ≈0.38 W per
/// engine. "The additional power overhead of adding extra FPGA engines is
/// fairly minimal."
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpgaPowerModel {
    /// Shell, HBM and static power in Watts.
    pub static_watts: f64,
    /// Additional Watts per instantiated engine.
    pub watts_per_engine: f64,
}

impl FpgaPowerModel {
    /// The paper's Alveo U280 running the vectorised CDS engines.
    pub fn alveo_u280_cds() -> Self {
        FpgaPowerModel { static_watts: 35.40, watts_per_engine: 0.38 }
    }

    /// Power draw with `engines` engines instantiated.
    pub fn watts(&self, engines: u32) -> f64 {
        self.static_watts + engines as f64 * self.watts_per_engine
    }

    /// Energy in Joules for a run of `seconds` with `engines` engines.
    pub fn joules(&self, engines: u32, seconds: f64) -> f64 {
        self.watts(engines) * seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_measurements_within_noise() {
        let m = FpgaPowerModel::alveo_u280_cds();
        // Table II rows: 35.86, 35.79, 37.38 W for 1, 2, 5 engines.
        assert!((m.watts(1) - 35.86).abs() < 0.4, "{}", m.watts(1));
        assert!((m.watts(2) - 35.79).abs() < 0.5, "{}", m.watts(2));
        assert!((m.watts(5) - 37.38).abs() < 0.2, "{}", m.watts(5));
    }

    #[test]
    fn extra_engines_are_cheap() {
        // Paper: "the additional power overhead of adding extra FPGA
        // engines is fairly minimal" — under 2% of card power each.
        let m = FpgaPowerModel::alveo_u280_cds();
        assert!(m.watts_per_engine / m.watts(1) < 0.02);
    }

    #[test]
    fn fpga_draws_much_less_than_cpu() {
        // Paper: "the FPGA running with five engines draws around 4.7
        // times less power than the CPU".
        let fpga = FpgaPowerModel::alveo_u280_cds().watts(5);
        let cpu = crate::cpu::CpuPowerModel::xeon_8260m().watts(24);
        let ratio = cpu / fpga;
        assert!((4.2..5.2).contains(&ratio), "power ratio {ratio}");
    }

    #[test]
    fn energy_accumulates() {
        let m = FpgaPowerModel::alveo_u280_cds();
        assert!((m.joules(5, 10.0) - 10.0 * m.watts(5)).abs() < 1e-9);
    }
}
