//! # cds-power — power and energy models for the CDS study
//!
//! The paper's Table II reports power draw and options/Watt for the
//! 24-core Cascade Lake Xeon and for one, two and five FPGA engines on
//! the Alveo U280. No power instrumentation exists in this environment,
//! so this crate provides affine models **fitted to the paper's four
//! measured points** (DESIGN.md substitution ledger):
//!
//! * CPU: `P(n) = P_idle + n · p_core` — each active core costs power;
//! * FPGA: `P(N) = P_static + N · p_engine` — "the additional power
//!   overhead of adding extra FPGA engines is fairly minimal".
//!
//! [`efficiency`] combines these with throughput figures into the
//! options/Watt metric and the paper's headline ≈4.7× power and ≈7×
//! efficiency advantages.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod cpu;
pub mod efficiency;
pub mod fpga;

pub use cpu::CpuPowerModel;
pub use efficiency::{options_per_watt, EfficiencyComparison};
pub use fpga::FpgaPowerModel;
