//! CPU socket power model.

/// Affine per-core power model of a CPU socket.
///
/// Calibrated to the paper's Xeon Platinum 8260M measurement: 175.39 W
/// with all 24 cores active. Cascade Lake server idle/uncore draw is
/// around 60 W, leaving ≈4.81 W per active core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuPowerModel {
    /// Socket idle + uncore power in Watts.
    pub idle_watts: f64,
    /// Additional Watts per active core.
    pub watts_per_core: f64,
    /// Physical cores available.
    pub cores: u32,
}

impl CpuPowerModel {
    /// The paper's 24-core Xeon Platinum (Cascade Lake) 8260M.
    pub fn xeon_8260m() -> Self {
        CpuPowerModel { idle_watts: 60.0, watts_per_core: 4.808, cores: 24 }
    }

    /// Power draw with `active_cores` cores busy.
    ///
    /// # Panics
    /// Panics if more cores are requested than the socket has.
    pub fn watts(&self, active_cores: u32) -> f64 {
        assert!(active_cores <= self.cores, "socket has only {} cores", self.cores);
        self.idle_watts + active_cores as f64 * self.watts_per_core
    }

    /// Energy in Joules to run `active_cores` for `seconds`.
    pub fn joules(&self, active_cores: u32, seconds: f64) -> f64 {
        self.watts(active_cores) * seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_socket_matches_paper_measurement() {
        let m = CpuPowerModel::xeon_8260m();
        let p = m.watts(24);
        assert!((p - 175.39).abs() < 0.5, "24-core power {p} vs paper 175.39");
    }

    #[test]
    fn idle_power_positive_and_less_than_loaded() {
        let m = CpuPowerModel::xeon_8260m();
        assert!(m.watts(0) > 0.0);
        assert!(m.watts(0) < m.watts(1));
        assert!(m.watts(1) < m.watts(24));
    }

    #[test]
    fn power_linear_in_cores() {
        let m = CpuPowerModel::xeon_8260m();
        let d1 = m.watts(2) - m.watts(1);
        let d2 = m.watts(20) - m.watts(19);
        assert!((d1 - d2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "only 24 cores")]
    fn too_many_cores_panics() {
        let _ = CpuPowerModel::xeon_8260m().watts(25);
    }

    #[test]
    fn energy_accumulates() {
        let m = CpuPowerModel::xeon_8260m();
        assert!((m.joules(24, 2.0) - 2.0 * m.watts(24)).abs() < 1e-9);
    }
}
