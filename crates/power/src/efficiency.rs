//! Power-efficiency metrics: the options/Watt comparison of Table II.

use crate::cpu::CpuPowerModel;
use crate::fpga::FpgaPowerModel;

/// Options per Watt — the paper's power-efficiency metric.
pub fn options_per_watt(options_per_second: f64, watts: f64) -> f64 {
    assert!(watts > 0.0, "power must be positive");
    options_per_second / watts
}

/// Joules consumed per option priced.
pub fn joules_per_option(options_per_second: f64, watts: f64) -> f64 {
    assert!(options_per_second > 0.0, "throughput must be positive");
    watts / options_per_second
}

/// Side-by-side CPU vs FPGA comparison (the paper's §IV summary).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EfficiencyComparison {
    /// CPU throughput in options/second.
    pub cpu_rate: f64,
    /// CPU power in Watts.
    pub cpu_watts: f64,
    /// FPGA throughput in options/second.
    pub fpga_rate: f64,
    /// FPGA power in Watts.
    pub fpga_watts: f64,
}

impl EfficiencyComparison {
    /// Build from the two power models and measured rates.
    pub fn new(
        cpu_rate: f64,
        cpu_cores: u32,
        fpga_rate: f64,
        fpga_engines: u32,
        cpu_model: &CpuPowerModel,
        fpga_model: &FpgaPowerModel,
    ) -> Self {
        EfficiencyComparison {
            cpu_rate,
            cpu_watts: cpu_model.watts(cpu_cores),
            fpga_rate,
            fpga_watts: fpga_model.watts(fpga_engines),
        }
    }

    /// FPGA performance relative to the CPU (paper: ≈1.55× at 5 engines).
    pub fn performance_ratio(&self) -> f64 {
        self.fpga_rate / self.cpu_rate
    }

    /// How many times less power the FPGA draws (paper: ≈4.7×).
    pub fn power_ratio(&self) -> f64 {
        self.cpu_watts / self.fpga_watts
    }

    /// FPGA power-efficiency advantage in options/Watt (paper: ≈7×).
    pub fn efficiency_ratio(&self) -> f64 {
        options_per_watt(self.fpga_rate, self.fpga_watts)
            / options_per_watt(self.cpu_rate, self.cpu_watts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_efficiency_reproduced_from_paper_numbers() {
        // Using the paper's own measured rates, our fitted power models
        // must reproduce its options/Watt column.
        let cases = [(27675.67, 1u32, 771.77), (53763.86, 2, 1502.20), (114115.92, 5, 3052.86)];
        let fpga = FpgaPowerModel::alveo_u280_cds();
        for (rate, engines, expect) in cases {
            let got = options_per_watt(rate, fpga.watts(engines));
            let err = (got - expect).abs() / expect;
            assert!(err < 0.02, "{engines} engines: {got} vs paper {expect}");
        }
        let cpu = CpuPowerModel::xeon_8260m();
        let got = options_per_watt(75823.77, cpu.watts(24));
        assert!((got - 432.31).abs() / 432.31 < 0.01, "CPU opts/W {got}");
    }

    #[test]
    fn headline_ratios() {
        let cmp = EfficiencyComparison::new(
            75823.77,
            24,
            114115.92,
            5,
            &CpuPowerModel::xeon_8260m(),
            &FpgaPowerModel::alveo_u280_cds(),
        );
        assert!((cmp.performance_ratio() - 1.505).abs() < 0.08, "{}", cmp.performance_ratio());
        assert!((4.2..5.2).contains(&cmp.power_ratio()), "{}", cmp.power_ratio());
        assert!((6.3..7.8).contains(&cmp.efficiency_ratio()), "{}", cmp.efficiency_ratio());
    }

    #[test]
    fn joules_per_option_is_reciprocal_metric() {
        let j = joules_per_option(10_000.0, 40.0);
        assert!((j - 0.004).abs() < 1e-12);
        assert!((options_per_watt(10_000.0, 40.0) * j - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power must be positive")]
    fn zero_power_rejected() {
        let _ = options_per_watt(1.0, 0.0);
    }
}
